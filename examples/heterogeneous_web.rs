//! Heterogeneous web-style data: the YAGO-like and BTC-like workloads.
//!
//! The paper's point with these two datasets (Tables 4 and 5) is that the
//! graph-exploration approach keeps winning even when the data is *not*
//! schema-regular: entities carry varying predicates, a third of the crawled
//! FOAF profiles are untyped, and queries mix typed and untyped vertices.
//! This example runs both query sets, prints the per-query winner, and shows
//! how the matcher statistics differ between an ID-anchored query and an
//! unanchored one.
//!
//! ```bash
//! cargo run --release --example heterogeneous_web
//! ```

use turbohom::datasets::{btc, yago};
use turbohom::engine::{EngineKind, Store, StoreOptions};

fn run_workload(
    name: &str,
    store: &Store,
    queries: &[turbohom::datasets::BenchmarkQuery],
) -> Result<(), Box<dyn std::error::Error>> {
    println!("\n=== {name} ({} triples) ===", store.triple_count());
    println!(
        "{:<4} {:>9} {:>14} {:>14} {:>14}   winner",
        "id", "solutions", "TurboHOM++", "MergeJoin", "HashJoin"
    );
    for q in queries {
        let turbo = store.execute(&q.sparql, EngineKind::TurboHomPlusPlus)?;
        let merge = store.execute(&q.sparql, EngineKind::MergeJoin)?;
        let hash = store.execute(&q.sparql, EngineKind::HashJoin)?;
        assert_eq!(turbo.len(), merge.len(), "count mismatch on {}", q.id);
        assert_eq!(turbo.len(), hash.len(), "count mismatch on {}", q.id);
        let timings = [
            ("TurboHOM++", turbo.elapsed),
            ("MergeJoin", merge.elapsed),
            ("HashJoin", hash.elapsed),
        ];
        let winner = timings.iter().min_by_key(|(_, t)| *t).unwrap().0;
        println!(
            "{:<4} {:>9} {:>12.3?} {:>12.3?} {:>12.3?}   {winner}",
            q.id,
            turbo.len(),
            turbo.elapsed,
            merge.elapsed,
            hash.elapsed
        );
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // YAGO-like: Wikipedia/WordNet-flavoured facts; loaded with RDFS
    // inference so the small class hierarchy is folded into the label sets.
    let yago_store = Store::from_dataset_with(
        yago::YagoGenerator::new(yago::YagoConfig::scale(2)).generate(),
        StoreOptions {
            inference: true,
            threads: 1,
        },
    );
    run_workload("YAGO-like", &yago_store, &yago::queries())?;

    // BTC-like: a crawl mixture with irregular typing, loaded *without*
    // inference, exactly as the paper treats BTC2012.
    let btc_store =
        Store::from_dataset(btc::BtcGenerator::new(btc::BtcConfig::scale(2)).generate());
    run_workload("BTC-like", &btc_store, &btc::queries())?;

    // Show the difference between an entity-anchored query (one candidate
    // region) and an unanchored one (many regions) on the crawl data.
    let anchored = &btc::queries()[1]; // Q2: neighborhood of person1
    let unanchored = &btc::queries()[7]; // Q8: authors and their contacts
    for q in [anchored, unanchored] {
        let r = btc_store.execute(&q.sparql, EngineKind::TurboHomPlusPlus)?;
        println!(
            "\n{}: {} solutions in {:?} — {}",
            q.id,
            r.len(),
            r.elapsed,
            q.description
        );
    }
    Ok(())
}
