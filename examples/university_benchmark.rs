//! Run the 14 LUBM benchmark queries against every engine and compare.
//!
//! This is a miniature version of the paper's Table 3 experiment: the same
//! queries, the same engines, a laptop-sized scale factor.
//!
//! ```bash
//! cargo run --release --example university_benchmark [scale]
//! ```

use std::time::Instant;
use turbohom::datasets::lubm::{self, LubmConfig, LubmGenerator};
use turbohom::engine::{EngineKind, Store, StoreOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    println!("generating LUBM-like data at scale factor {scale} ...");
    let started = Instant::now();
    let dataset = LubmGenerator::new(LubmConfig::scale(scale)).generate();
    println!(
        "  {} triples generated in {:?}",
        dataset.len(),
        started.elapsed()
    );

    let started = Instant::now();
    // The generator already materializes the RDFS closure, so the store does
    // not need to run inference again.
    let store = Store::from_dataset_with(dataset, StoreOptions::default());
    println!("  store built in {:?}", started.elapsed());
    let aware = store.type_aware_graph().graph.stats();
    let direct = store.direct_graph().graph.stats();
    println!(
        "  type-aware graph: {} vertices / {} edges   direct graph: {} vertices / {} edges",
        aware.vertices, aware.edges, direct.vertices, direct.edges
    );

    let engines = [
        EngineKind::TurboHomPlusPlus,
        EngineKind::TurboHom,
        EngineKind::MergeJoin,
        EngineKind::HashJoin,
    ];
    println!(
        "\n{:<5} {:>10} {:>14} {:>14} {:>14} {:>14}",
        "query", "solutions", "TurboHOM++", "TurboHOM", "MergeJoin", "HashJoin"
    );
    for query in lubm::queries() {
        let mut cells = Vec::new();
        let mut solutions = None;
        for kind in engines {
            let result = store.execute(&query.sparql, kind)?;
            match solutions {
                None => solutions = Some(result.len()),
                Some(expected) => assert_eq!(
                    expected,
                    result.len(),
                    "{} disagrees on {}",
                    kind.label(),
                    query.id
                ),
            }
            cells.push(format!("{:>12.3?}", result.elapsed));
        }
        println!(
            "{:<5} {:>10} {}",
            query.id,
            solutions.unwrap_or(0),
            cells.join("  ")
        );
    }
    println!("\nall engines agreed on every solution count");
    Ok(())
}
