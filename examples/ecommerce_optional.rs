//! General SPARQL features on the BSBM-like e-commerce dataset.
//!
//! Demonstrates the OPTIONAL / FILTER / UNION support of Section 5.1: the
//! twelve explore-use-case queries run through TurboHOM++ and the hash-join
//! baseline, and a few result bindings are printed.
//!
//! ```bash
//! cargo run --release --example ecommerce_optional
//! ```

use turbohom::datasets::bsbm::{self, BsbmConfig, BsbmGenerator};
use turbohom::engine::{EngineKind, Store, StoreOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = BsbmGenerator::new(BsbmConfig::scale(1)).generate();
    println!("generated {} triples of e-commerce data", dataset.len());
    let store = Store::from_dataset_with(dataset, StoreOptions::default());

    println!(
        "\n{:<4} {:>9} {:>14} {:>14}   description",
        "id", "solutions", "TurboHOM++", "HashJoin"
    );
    for query in bsbm::queries() {
        let graph = store.execute(&query.sparql, EngineKind::TurboHomPlusPlus)?;
        let join = store.execute(&query.sparql, EngineKind::HashJoin)?;
        assert_eq!(
            graph.len(),
            join.len(),
            "engines disagree on {}: {} vs {}",
            query.id,
            graph.len(),
            join.len()
        );
        println!(
            "{:<4} {:>9} {:>12.3?} {:>12.3?}   {}",
            query.id,
            graph.len(),
            graph.elapsed,
            join.elapsed,
            query.description
        );
    }

    // Show what OPTIONAL answers look like: offers and (possibly missing)
    // ratings for one product.
    let q7 = &bsbm::queries()[6];
    let results = store.execute(&q7.sparql, EngineKind::TurboHomPlusPlus)?;
    println!("\nsample bindings for {} ({}):", q7.id, q7.description);
    for binding in results.iter_bindings().take(5) {
        let rating = binding
            .get("rating")
            .map(|t| t.to_string())
            .unwrap_or_else(|| "(no rating)".to_string());
        println!(
            "  offer={} price={} review={} rating={rating}",
            binding
                .get("offer")
                .map(|t| t.to_string())
                .unwrap_or_default(),
            binding
                .get("price")
                .map(|t| t.to_string())
                .unwrap_or_default(),
            binding
                .get("review")
                .map(|t| t.to_string())
                .unwrap_or_default(),
        );
    }
    Ok(())
}
