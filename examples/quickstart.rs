//! Quickstart: load a few triples, ask a SPARQL query, print the answers.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use turbohom::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny slice of the paper's running example (Figure 3): a graduate
    // student, their department and university.
    let ntriples = r#"
<http://ex.org/student1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/GraduateStudent> .
<http://ex.org/GraduateStudent> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex.org/Student> .
<http://ex.org/univ1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/University> .
<http://ex.org/dept1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/Department> .
<http://ex.org/student1> <http://ex.org/undergraduateDegreeFrom> <http://ex.org/univ1> .
<http://ex.org/student1> <http://ex.org/memberOf> <http://ex.org/dept1> .
<http://ex.org/dept1> <http://ex.org/subOrganizationOf> <http://ex.org/univ1> .
<http://ex.org/student1> <http://ex.org/emailAddress> "john@dept1.univ1.edu" .
"#;

    // `inference: true` folds the subClassOf hierarchy into rdf:type triples,
    // so asking for `ex:Student` also finds the graduate student.
    let store = turbohom::engine::Store::from_ntriples_with(
        ntriples,
        turbohom::engine::StoreOptions {
            inference: true,
            threads: 1,
        },
    )?;
    println!(
        "loaded {} triples ({} vertices / {} edges after the type-aware transformation)",
        store.triple_count(),
        store.type_aware_graph().graph.vertex_count(),
        store.type_aware_graph().graph.edge_count(),
    );

    // The triangle query of Figure 5a: students, the university they got
    // their degree from, and the department they are a member of.
    let query = r#"
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        PREFIX ex: <http://ex.org/>
        SELECT ?student ?univ ?dept WHERE {
            ?student rdf:type ex:Student .
            ?univ rdf:type ex:University .
            ?dept rdf:type ex:Department .
            ?student ex:undergraduateDegreeFrom ?univ .
            ?student ex:memberOf ?dept .
            ?dept ex:subOrganizationOf ?univ .
        }"#;

    // Run the same query with the paper's engine and with the RDF-3X-style
    // baseline; both must agree.
    for kind in [EngineKind::TurboHomPlusPlus, EngineKind::MergeJoin] {
        let results = store.execute(query, kind)?;
        println!(
            "\n{:<24} {} solution(s) in {:?}",
            kind.label(),
            results.len(),
            results.elapsed
        );
        for binding in results.iter_bindings() {
            let row: Vec<String> = results
                .variables
                .iter()
                .map(|v| {
                    format!(
                        "?{v} = {}",
                        binding
                            .get(v.as_str())
                            .map(|t| t.to_string())
                            .unwrap_or_else(|| "UNBOUND".into())
                    )
                })
                .collect();
            println!("  {}", row.join("  "));
        }
    }
    Ok(())
}
