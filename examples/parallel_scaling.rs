//! Parallel speed-up of TurboHOM++ (the Figure 16 experiment in miniature).
//!
//! The two most expensive LUBM queries (Q2 and Q9) are executed with an
//! increasing number of threads, once per scheduler: the default
//! **morsel-driven work-stealing** scheduler and the legacy **chunked**
//! scheduler (static distribution of candidate regions, Section 5.2).
//! The morsel columns also report how many morsels ran and how many were
//! obtained by stealing — the observable evidence of rebalancing even on
//! hosts with few cores.
//!
//! ```bash
//! cargo run --release --example parallel_scaling [scale]
//! ```

use turbohom::core::{Scheduler, TurboHomConfig};
use turbohom::datasets::lubm::{self, LubmConfig, LubmGenerator};
use turbohom::engine::{Store, StoreOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let dataset = LubmGenerator::new(LubmConfig::scale(scale)).generate();
    println!("LUBM scale {scale}: {} triples", dataset.len());
    let store = Store::from_dataset_with(dataset, StoreOptions::default());

    let queries: Vec<_> = lubm::queries()
        .into_iter()
        .filter(|q| q.id == "Q2" || q.id == "Q9")
        .collect();
    let thread_counts = [1usize, 2, 4, 8];

    for query in &queries {
        println!("\n{} — {}", query.id, query.description);
        for &scheduler in &[Scheduler::Morsel, Scheduler::Chunked] {
            println!("  scheduler: {}", scheduler.label());
            let mut baseline = None;
            for &threads in &thread_counts {
                let config = TurboHomConfig::turbohom_plus_plus()
                    .with_threads(threads)
                    .with_scheduler(scheduler);
                let result = store.execute_turbohom(&query.sparql, config, false)?;
                let elapsed = result.elapsed;
                let speedup = match baseline {
                    None => {
                        baseline = Some(elapsed);
                        1.0
                    }
                    Some(base) => base.as_secs_f64() / elapsed.as_secs_f64().max(1e-9),
                };
                let stats = &result.stats;
                println!(
                    "    {threads:>2} thread(s): {:>12.3?}  ({} solutions, speed-up ×{speedup:.2}, {} morsels, {} stolen)",
                    elapsed,
                    result.len(),
                    stats.morsels,
                    stats.morsels_stolen
                );
            }
        }
    }
    Ok(())
}
