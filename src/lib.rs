//! # TurboHOM++ — taming subgraph isomorphism for RDF query processing
//!
//! This is the facade crate of a full reproduction of the VLDB 2015 paper
//! *"Taming Subgraph Isomorphism for RDF Query Processing"* (Kim, Shin, Han,
//! Hong, Chafi). It re-exports the public API of every workspace crate so an
//! application only needs a single dependency.
//!
//! ## Quick start
//!
//! ```
//! use turbohom::prelude::*;
//!
//! // Build a tiny RDF dataset in memory.
//! let nt = r#"
//! <http://ex.org/alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/Student> .
//! <http://ex.org/alice> <http://ex.org/memberOf> <http://ex.org/dept1> .
//! <http://ex.org/dept1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/Department> .
//! "#;
//!
//! let store = Store::from_ntriples(nt).unwrap();
//! let query = r#"
//! PREFIX ex: <http://ex.org/>
//! PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
//! SELECT ?x WHERE { ?x rdf:type ex:Student . ?x ex:memberOf ?d . ?d rdf:type ex:Department . }
//! "#;
//! let results = store.execute(query, EngineKind::TurboHomPlusPlus).unwrap();
//! assert_eq!(results.len(), 1);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`rdf`] | RDF terms, dictionary, N-Triples parsing, RDFS inference |
//! | [`graph`] | CSR labeled graph, inverse label index, predicate index |
//! | [`sparql`] | SPARQL subset parser and algebra |
//! | [`transform`] | Direct and type-aware transformations |
//! | [`core`] | The TurboHOM / TurboHOM++ matching engine |
//! | [`baseline`] | RDF-3X-style merge-join and hash-join baseline engines |
//! | [`datasets`] | LUBM / BSBM / YAGO-like / BTC-like generators and query sets |
//! | [`engine`] | High-level [`Store`](engine::Store) API and prepared [`QueryPlan`](engine::QueryPlan)s |
//! | [`service`] | Concurrent query service: plan cache, HTTP endpoint, metrics, `turbohom-server` |

pub use turbohom_baseline as baseline;
pub use turbohom_core as core;
pub use turbohom_datasets as datasets;
pub use turbohom_engine as engine;
pub use turbohom_graph as graph;
pub use turbohom_rdf as rdf;
pub use turbohom_service as service;
pub use turbohom_sparql as sparql;
pub use turbohom_transform as transform;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::core::{MatchSemantics, Optimizations, TurboHomConfig};
    pub use crate::datasets::lubm::{LubmConfig, LubmGenerator};
    pub use crate::engine::{EngineKind, PreparedQuery, QueryPlan, QueryResults, Store};
    pub use crate::graph::{LabeledGraph, QueryGraph};
    pub use crate::rdf::{Dictionary, Term, Triple, TripleStore};
    pub use crate::service::{HttpServer, QueryOptions, QueryService, ServiceConfig};
    pub use crate::sparql::{fingerprint, parse_query};
}
