//! A brute-force reference implementation of SPARQL basic graph pattern
//! matching, used to validate TurboHOM++ independently of the join-based
//! baselines (which share the `turbohom-sparql` algebra with it).
//!
//! The reference matcher enumerates variable bindings by plain backtracking
//! over the raw triple list — no indexes, no transformations, no pruning —
//! so any agreement with the optimized engines is meaningful evidence of
//! correctness, and any disagreement pinpoints a semantics bug.

use proptest::prelude::*;
use std::collections::HashMap;
use turbohom::engine::{EngineKind, Store};
use turbohom::rdf::{Dataset, TermId};
use turbohom::sparql::{parse_query, SparqlTerm, TriplePattern};

/// Counts the solutions of a (union-free, OPTIONAL-free, FILTER-free) BGP by
/// brute-force backtracking over the dataset's triples.
fn brute_force_count(dataset: &Dataset, patterns: &[TriplePattern]) -> usize {
    fn resolve(
        dataset: &Dataset,
        term: &SparqlTerm,
        bindings: &HashMap<String, TermId>,
    ) -> Option<Option<TermId>> {
        match term {
            SparqlTerm::Variable(v) => Some(bindings.get(v).copied()),
            SparqlTerm::Constant(t) => dataset.dictionary.id_of(t).map(Some),
        }
    }

    fn recurse(
        dataset: &Dataset,
        patterns: &[TriplePattern],
        index: usize,
        bindings: &mut HashMap<String, TermId>,
    ) -> usize {
        if index == patterns.len() {
            return 1;
        }
        let pattern = &patterns[index];
        // A constant that is not even in the dictionary can never match.
        let Some(subject) = resolve(dataset, &pattern.subject, bindings) else {
            return 0;
        };
        let Some(predicate) = resolve(dataset, &pattern.predicate, bindings) else {
            return 0;
        };
        let Some(object) = resolve(dataset, &pattern.object, bindings) else {
            return 0;
        };
        let mut total = 0usize;
        for triple in dataset.triples.iter() {
            if subject.is_some_and(|s| s != triple.s)
                || predicate.is_some_and(|p| p != triple.p)
                || object.is_some_and(|o| o != triple.o)
            {
                continue;
            }
            // Bind the free variables of this pattern, watching out for
            // repeated variables inside a single pattern.
            let mut added: Vec<String> = Vec::new();
            let mut consistent = true;
            for (term, value) in [
                (&pattern.subject, triple.s),
                (&pattern.predicate, triple.p),
                (&pattern.object, triple.o),
            ] {
                if let SparqlTerm::Variable(v) = term {
                    match bindings.get(v) {
                        Some(&bound) if bound != value => {
                            consistent = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            bindings.insert(v.clone(), value);
                            added.push(v.clone());
                        }
                    }
                }
            }
            if consistent {
                total += recurse(dataset, patterns, index + 1, bindings);
            }
            for v in added {
                bindings.remove(&v);
            }
        }
        total
    }

    let mut bindings = HashMap::new();
    recurse(dataset, patterns, 0, &mut bindings)
}

const PREDS: [&str; 3] = ["p", "q", "r"];

fn iri(local: &str) -> String {
    format!("http://ref.example.org/{local}")
}

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (
        2usize..8,
        proptest::collection::vec((0usize..8, 0usize..3, 0usize..8), 1..30),
    )
        .prop_map(|(entities, edges)| {
            let mut ds = Dataset::new();
            for (s, p, o) in edges {
                ds.insert_iris(
                    &iri(&format!("n{}", s % entities)),
                    &iri(PREDS[p]),
                    &iri(&format!("n{}", o % entities)),
                );
            }
            ds
        })
}

/// Chain-shaped queries `?v0 --p--> ?v1 --q--> ?v2 ...` with optional
/// constants at either end, guaranteed connected.
fn query_strategy() -> impl Strategy<Value = String> {
    (
        1usize..4,
        proptest::collection::vec((0usize..3, proptest::bool::ANY), 3),
        proptest::option::of(0usize..8),
    )
        .prop_map(|(len, spec, end_constant)| {
            let mut body = String::new();
            for (i, &(p, forward)) in spec.iter().enumerate().take(len) {
                let from = format!("?v{i}");
                let to = if i + 1 == len {
                    match end_constant {
                        Some(c) => format!("<{}>", iri(&format!("n{c}"))),
                        None => format!("?v{}", i + 1),
                    }
                } else {
                    format!("?v{}", i + 1)
                };
                let (s, o) = if forward { (from, to) } else { (to, from) };
                body.push_str(&format!("{s} <{}> {o} . ", iri(PREDS[p])));
            }
            format!("SELECT * WHERE {{ {body} }}")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// TurboHOM++ (and the plain TurboHOM) agree with the brute-force
    /// reference matcher on every random chain query.
    #[test]
    fn turbohom_matches_brute_force(ds in dataset_strategy(), sparql in query_strategy()) {
        let parsed = parse_query(&sparql).unwrap();
        let expected = brute_force_count(&ds, &parsed.pattern.triples);
        let store = Store::from_dataset(ds);
        let plus = store.execute(&sparql, EngineKind::TurboHomPlusPlus).unwrap().len();
        let plain = store.execute(&sparql, EngineKind::TurboHom).unwrap().len();
        prop_assert_eq!(plus, expected, "TurboHOM++ differs on {}", sparql);
        prop_assert_eq!(plain, expected, "TurboHOM differs on {}", sparql);
    }

    /// The join engines agree with the brute-force reference as well, which
    /// closes the loop: every engine is validated against an implementation
    /// that shares no code with it beyond the parser.
    #[test]
    fn baselines_match_brute_force(ds in dataset_strategy(), sparql in query_strategy()) {
        let parsed = parse_query(&sparql).unwrap();
        let expected = brute_force_count(&ds, &parsed.pattern.triples);
        let store = Store::from_dataset(ds);
        let merge = store.execute(&sparql, EngineKind::MergeJoin).unwrap().len();
        let hash = store.execute(&sparql, EngineKind::HashJoin).unwrap().len();
        prop_assert_eq!(merge, expected, "MergeJoin differs on {}", sparql);
        prop_assert_eq!(hash, expected, "HashJoin differs on {}", sparql);
    }
}

/// A deterministic spot check so failures here do not depend on proptest
/// shrinking: the Figure 1 example counted by the brute-force matcher.
#[test]
fn brute_force_counts_figure1_homomorphisms() {
    let ds = turbohom::datasets::micro::figure1();
    let q = turbohom::datasets::micro::figure1_query();
    let parsed = parse_query(&q.sparql).unwrap();
    assert_eq!(brute_force_count(&ds, &parsed.pattern.triples), 3);
}
