//! Fingerprint non-collision over the real benchmark query sets: every
//! distinct query of LUBM / YAGO-like / BTC-like / BSBM-like must get a
//! distinct fingerprint, while trivial respellings of each must not.

use std::collections::HashMap;
use turbohom::datasets::{bsbm, btc, lubm, yago, BenchmarkQuery};
use turbohom::sparql::fingerprint;

fn all_sample_queries() -> Vec<(String, BenchmarkQuery)> {
    let mut out = Vec::new();
    for (set, queries) in [
        ("lubm", lubm::queries()),
        ("yago", yago::queries()),
        ("btc", btc::queries()),
        ("bsbm", bsbm::queries()),
    ] {
        for q in queries {
            out.push((format!("{set}/{}", q.id), q));
        }
    }
    out
}

#[test]
fn distinct_sample_queries_never_collide() {
    let queries = all_sample_queries();
    assert!(queries.len() >= 30, "expected the full benchmark sets");
    let mut by_canonical: HashMap<String, String> = HashMap::new();
    let mut by_hash: HashMap<u64, String> = HashMap::new();
    for (name, q) in &queries {
        let fp = fingerprint(&q.sparql).unwrap_or_else(|e| panic!("{name}: {e}"));
        if let Some(other) = by_canonical.insert(fp.canonical.clone(), name.clone()) {
            panic!(
                "{name} and {other} share a canonical form:\n{}",
                fp.canonical
            );
        }
        if let Some(other) = by_hash.insert(fp.hash, name.clone()) {
            panic!("{name} and {other} collide on hash {:016x}", fp.hash);
        }
    }
}

#[test]
fn respelled_sample_queries_keep_their_fingerprint() {
    for (name, q) in all_sample_queries() {
        let base = fingerprint(&q.sparql).unwrap();
        // Collapse/extend whitespace and sprinkle comments.
        let respelled = q
            .sparql
            .replace(" . ", " .\n\t # pattern boundary\n ")
            .replace("SELECT", "select")
            .replace("WHERE", "\nwhere\n");
        let fp = fingerprint(&respelled).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(fp, base, "{name} changed its fingerprint after respelling");
    }
}
