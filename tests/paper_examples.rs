//! Integration tests over the paper's worked examples (Figures 1, 2, 3/5/8).

use turbohom::core::{MatchSemantics, TurboHomConfig, TurboHomEngine};
use turbohom::datasets::micro;
use turbohom::engine::{EngineKind, Store, StoreOptions};
use turbohom::sparql::parse_query;
use turbohom::transform::{direct_transform, transform_query, type_aware_transform};

/// Figure 1: the query has exactly one subgraph isomorphism and three
/// e-graph homomorphisms in the data graph.
#[test]
fn figure1_isomorphism_vs_homomorphism_counts() {
    let ds = micro::figure1();
    let data = type_aware_transform(&ds);
    let query = parse_query(&micro::figure1_query().sparql).unwrap();
    let tq = transform_query(&query.pattern, &data, &ds.dictionary).unwrap();

    let hom = TurboHomEngine::new(&data, &ds.dictionary, TurboHomConfig::default())
        .execute(&tq)
        .unwrap();
    assert_eq!(hom.solution_count, 3);

    let iso = TurboHomEngine::new(&data, &ds.dictionary, TurboHomConfig::isomorphism())
        .execute(&tq)
        .unwrap();
    assert_eq!(iso.solution_count, 1);
    assert_eq!(iso.stats.solutions, 1);
    assert_eq!(
        TurboHomConfig::isomorphism().semantics,
        MatchSemantics::Isomorphism
    );
}

/// Figure 1 through the high-level store API, cross-checked against the
/// join-based baselines (which implement the homomorphism semantics too).
#[test]
fn figure1_cross_engine_agreement() {
    let store = Store::from_dataset(micro::figure1());
    let q = micro::figure1_query();
    for kind in EngineKind::all() {
        let result = store.execute(&q.sparql, kind).unwrap();
        assert_eq!(result.len(), 3, "{}", kind.label());
    }
}

/// Figure 2: the candidate-region statistics reflect the good matching order
/// (the Z path before the X and Y paths), which is what makes the good order
/// "1 + 5 * 10" comparisons instead of "1 + 10000 * 10 * 5".
#[test]
fn figure2_matching_order_effect_shows_in_stats() {
    let ds = micro::figure2(10, 200, 5);
    let store = Store::from_dataset(ds);
    let q = micro::figure2_query();
    let result = store
        .execute(&q.sparql, EngineKind::TurboHomPlusPlus)
        .unwrap();
    // 10 × 200 × 5 combinations exist (the query is a star with independent
    // branches), and all engines agree.
    assert_eq!(result.len(), 10 * 200 * 5);
    let join = store.execute(&q.sparql, EngineKind::MergeJoin).unwrap();
    assert_eq!(join.len(), result.len());
}

/// Figure 3 → Figure 4 / Figure 7: the direct transformation keeps every
/// subject/object as a vertex while the type-aware transformation folds the
/// class vertices away (9 → 5 vertices, 9 → 5 edges for the running example).
#[test]
fn figure3_transformation_sizes() {
    let ds = micro::figure3();
    let direct = direct_transform(&ds);
    let aware = type_aware_transform(&ds);
    assert_eq!(direct.graph.vertex_count(), 9);
    assert_eq!(direct.graph.edge_count(), 9);
    assert_eq!(aware.graph.vertex_count(), 5);
    assert_eq!(aware.graph.edge_count(), 5);
    assert_eq!(aware.graph.vertex_label_count(), 4);
}

/// Figure 5 / Figure 8: the triangle query returns the same (single) answer
/// under both transformations and all engines.
#[test]
fn figure5_query_agrees_across_transformations_and_engines() {
    let store = Store::from_dataset_with(
        micro::figure3(),
        StoreOptions {
            inference: true,
            threads: 1,
        },
    );
    let q = micro::figure3_query();
    for kind in EngineKind::all() {
        let result = store.execute(&q.sparql, kind).unwrap();
        assert_eq!(result.len(), 1, "{}", kind.label());
        let binding: Vec<_> = result.iter_bindings().collect();
        assert_eq!(
            binding[0]["X"],
            &turbohom::rdf::Term::iri("http://example.org/student1")
        );
    }
}

/// The type-aware transformed query of Figure 8 has three vertices and three
/// edges (the six-vertex direct query of Figure 5b shrinks to a triangle).
#[test]
fn figure8_query_graph_shape() {
    let ds = {
        let mut ds = micro::figure3();
        turbohom::rdf::InferenceEngine::default().materialize(&mut ds);
        ds
    };
    let aware = type_aware_transform(&ds);
    let direct = direct_transform(&ds);
    let query = parse_query(&micro::figure3_query().sparql).unwrap();
    let tq_aware = transform_query(&query.pattern, &aware, &ds.dictionary).unwrap();
    let tq_direct = transform_query(&query.pattern, &direct, &ds.dictionary).unwrap();
    assert_eq!(tq_aware.graph.vertex_count(), 3);
    assert_eq!(tq_aware.graph.edge_count(), 3);
    assert_eq!(tq_direct.graph.vertex_count(), 6);
    assert_eq!(tq_direct.graph.edge_count(), 6);
}
