//! Cross-engine agreement on every benchmark workload.
//!
//! The strongest correctness check this repository has: the graph-exploration
//! engines (TurboHOM++ over the type-aware graph, TurboHOM over the direct
//! graph) and the join-based engines (sort-merge, hash) are four largely
//! independent implementations of SPARQL basic graph pattern semantics, so
//! identical solution counts across all of them on every benchmark query is
//! strong evidence that each one is right.

use turbohom::datasets::{bsbm, btc, lubm, yago};
use turbohom::engine::{EngineKind, Store, StoreOptions};

fn assert_all_engines_agree(store: &Store, queries: &[turbohom::datasets::BenchmarkQuery]) {
    for q in queries {
        let mut counts = Vec::new();
        for kind in EngineKind::all() {
            let result = store
                .execute(&q.sparql, kind)
                .unwrap_or_else(|e| panic!("{} failed on {}: {e}", kind.label(), q.id));
            counts.push((kind.label(), result.len()));
        }
        let first = counts[0].1;
        assert!(
            counts.iter().all(|(_, c)| *c == first),
            "engines disagree on {}: {counts:?}",
            q.id
        );
    }
}

#[test]
fn lubm_queries_agree_across_engines() {
    let dataset = lubm::LubmGenerator::new(lubm::LubmConfig::scale(2)).generate();
    let store = Store::from_dataset(dataset);
    assert_all_engines_agree(&store, &lubm::queries());
}

#[test]
fn lubm_constant_queries_stay_constant_and_increasing_queries_grow() {
    let small =
        Store::from_dataset(lubm::LubmGenerator::new(lubm::LubmConfig::scale(1)).generate());
    let large =
        Store::from_dataset(lubm::LubmGenerator::new(lubm::LubmConfig::scale(4)).generate());
    let queries = lubm::queries();
    for q in &queries {
        let a = small
            .execute(&q.sparql, EngineKind::TurboHomPlusPlus)
            .unwrap()
            .len();
        let b = large
            .execute(&q.sparql, EngineKind::TurboHomPlusPlus)
            .unwrap()
            .len();
        if lubm::constant_solution_queries().contains(&q.id.as_str()) {
            assert_eq!(
                a, b,
                "{} should have a scale-independent solution count",
                q.id
            );
        } else {
            assert!(
                b > a,
                "{} should have more solutions at scale 4 ({a} vs {b})",
                q.id
            );
        }
    }
}

#[test]
fn bsbm_queries_agree_across_engines() {
    let dataset = bsbm::BsbmGenerator::new(bsbm::BsbmConfig::scale(1)).generate();
    let store = Store::from_dataset(dataset);
    // The TurboHOM (direct, unoptimized) engine also supports the general
    // SPARQL features, so all four engines are compared.
    assert_all_engines_agree(&store, &bsbm::queries());
}

#[test]
fn yago_queries_agree_across_engines() {
    let dataset = yago::YagoGenerator::new(yago::YagoConfig::scale(1)).generate();
    let store = Store::from_dataset_with(
        dataset,
        StoreOptions {
            inference: true,
            threads: 1,
        },
    );
    assert_all_engines_agree(&store, &yago::queries());
}

#[test]
fn btc_queries_agree_across_engines() {
    // BTC is loaded without inference, exactly as the paper does.
    let dataset = btc::BtcGenerator::new(btc::BtcConfig::scale(1)).generate();
    let store = Store::from_dataset(dataset);
    assert_all_engines_agree(&store, &btc::queries());
}

#[test]
fn parallel_execution_matches_sequential_on_lubm() {
    let dataset = lubm::LubmGenerator::new(lubm::LubmConfig::scale(2)).generate();
    let sequential = Store::from_dataset(dataset.clone());
    let parallel = Store::from_dataset_with(
        dataset,
        StoreOptions {
            inference: false,
            threads: 4,
        },
    );
    for q in lubm::queries() {
        let a = sequential
            .execute(&q.sparql, EngineKind::TurboHomPlusPlus)
            .unwrap()
            .len();
        let b = parallel
            .execute(&q.sparql, EngineKind::TurboHomPlusPlus)
            .unwrap()
            .len();
        assert_eq!(a, b, "parallel result differs on {}", q.id);
    }
}

#[test]
fn optimizations_do_not_change_lubm_results() {
    use turbohom::core::{OptimizationName, Optimizations, TurboHomConfig};
    let dataset = lubm::LubmGenerator::new(lubm::LubmConfig::scale(1)).generate();
    let store = Store::from_dataset(dataset);
    for q in lubm::queries() {
        let reference = store
            .execute(&q.sparql, EngineKind::TurboHomPlusPlus)
            .unwrap()
            .len();
        for name in OptimizationName::all() {
            let config = TurboHomConfig::default().with_optimizations(Optimizations::only(name));
            let result = store.execute_turbohom(&q.sparql, config, false).unwrap();
            assert_eq!(
                result.len(),
                reference,
                "{} with only {} differs",
                q.id,
                name.label()
            );
        }
        let none = store
            .execute_turbohom(
                &q.sparql,
                TurboHomConfig::default().with_optimizations(Optimizations::none()),
                false,
            )
            .unwrap();
        assert_eq!(
            none.len(),
            reference,
            "{} without optimizations differs",
            q.id
        );
    }
}

#[test]
fn limit_pushdown_agrees_across_engines() {
    // LIMIT is pushed into the graph enumerators (early termination) but
    // applied as a post-truncation by the join baselines — two different
    // code paths that must report the same row count for every benchmark
    // query and every limit, including limits larger than the result.
    let dataset = lubm::LubmGenerator::new(lubm::LubmConfig::scale(1)).generate();
    let store = Store::from_dataset(dataset);
    for q in lubm::queries() {
        let full = store
            .execute(&q.sparql, EngineKind::TurboHomPlusPlus)
            .unwrap()
            .len();
        for limit in [0usize, 1, 3, full + 10] {
            let sparql = format!("{} LIMIT {limit}", q.sparql.trim_end());
            let expected = full.min(limit);
            for kind in EngineKind::all() {
                let result = store.execute(&sparql, kind).unwrap_or_else(|e| {
                    panic!("{} failed on {} LIMIT {limit}: {e}", kind.label(), q.id)
                });
                assert_eq!(
                    result.len(),
                    expected,
                    "{} returned {} rows on {} LIMIT {limit}, expected {expected}",
                    kind.label(),
                    result.len(),
                    q.id
                );
                assert_eq!(
                    result.solution_count,
                    expected,
                    "{} solution_count mismatch on {} LIMIT {limit}",
                    kind.label(),
                    q.id
                );
            }
        }
    }
}

#[test]
fn simple_entailment_returns_a_subset() {
    use turbohom::core::TurboHomConfig;
    // Load the *raw* triples (no materialized closure) so the difference
    // between the entailment regimes is visible: the full regime folds the
    // subClassOf hierarchy into the label sets, the simple regime only sees
    // the directly asserted types.
    let config = lubm::LubmConfig {
        materialize_rdfs: false,
        ..lubm::LubmConfig::scale(1)
    };
    let dataset = lubm::LubmGenerator::new(config).generate();
    let store = Store::from_dataset(dataset);
    // Q6 (all students): nobody is asserted to be a plain `Student`, but
    // everyone is one through the class hierarchy.
    let q6 = &lubm::queries()[5];
    let full = store
        .execute(&q6.sparql, EngineKind::TurboHomPlusPlus)
        .unwrap();
    let simple_config = TurboHomConfig {
        simple_entailment: true,
        ..TurboHomConfig::default()
    };
    let simple = store
        .execute_turbohom(&q6.sparql, simple_config, false)
        .unwrap();
    assert!(!full.is_empty());
    assert_eq!(simple.len(), 0);
    assert!(simple.len() < full.len());
}
