//! Property-based tests over randomly generated data and queries.
//!
//! The central property: four independent SPARQL evaluators — TurboHOM++
//! (type-aware graph), TurboHOM (direct graph), the sort-merge-join engine
//! and the hash-join engine — must report the same number of solutions for
//! any query on any dataset. Additional properties cover the substrates:
//! N-Triples round-tripping, dictionary bijectivity, sorted-set kernels and
//! the inference fixpoint.

use proptest::prelude::*;
use turbohom::engine::{EngineKind, Store};
use turbohom::graph::ops;
use turbohom::graph::VertexId;
use turbohom::rdf::{
    parse_ntriples, serialize_ntriples, Dataset, Dictionary, InferenceEngine, Term,
};

// ---------------------------------------------------------------------------
// Random dataset / query generation helpers
// ---------------------------------------------------------------------------

const CLASSES: [&str; 4] = ["Alpha", "Beta", "Gamma", "Delta"];
const PREDICATES: [&str; 4] = ["links", "owns", "near", "likes"];

fn iri(local: &str) -> String {
    format!("http://prop.example.org/{local}")
}

/// A randomly generated mini dataset: `entities` entities, each with an
/// optional class and a few random edges.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (
        2usize..10,
        proptest::collection::vec((0usize..10, 0usize..4, 0usize..10), 1..40),
        proptest::collection::vec((0usize..10, 0usize..4), 0..10),
    )
        .prop_map(|(entities, edges, types)| {
            let mut ds = Dataset::new();
            for (s, p, o) in edges {
                let s = s % entities;
                let o = o % entities;
                ds.insert_iris(
                    &iri(&format!("e{s}")),
                    &iri(PREDICATES[p]),
                    &iri(&format!("e{o}")),
                );
            }
            for (e, c) in types {
                let e = e % entities;
                ds.insert_iris(
                    &iri(&format!("e{e}")),
                    turbohom::rdf::vocab::RDF_TYPE,
                    &iri(CLASSES[c]),
                );
            }
            ds
        })
}

/// A random connected query of 1–3 triple patterns over the same vocabulary.
/// Patterns are chained through shared variables so the query stays
/// connected (the matcher rejects cartesian products by design).
fn query_strategy() -> impl Strategy<Value = String> {
    (
        1usize..4,
        proptest::collection::vec((0usize..4, proptest::bool::ANY, 0usize..3), 3),
        proptest::option::of(0usize..4),
    )
        .prop_map(|(patterns, spec, class)| {
            let mut body = String::new();
            for (i, &(pred, forward, obj_kind)) in spec.iter().enumerate().take(patterns) {
                let subject = format!("?v{i}");
                let object = match obj_kind {
                    0 => format!("?v{}", i + 1),
                    1 => format!("<{}>", iri("e0")),
                    _ => format!("?v{}", i + 1),
                };
                let (s, o) = if forward {
                    (subject, object)
                } else {
                    (object, subject)
                };
                body.push_str(&format!("{s} <{}> {o} . ", iri(PREDICATES[pred])));
            }
            if let Some(c) = class {
                body.push_str(&format!(
                    "?v0 <{}> <{}> . ",
                    turbohom::rdf::vocab::RDF_TYPE,
                    iri(CLASSES[c])
                ));
            }
            format!("SELECT * WHERE {{ {body} }}")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All four engines agree on the solution count of random queries.
    #[test]
    fn engines_agree_on_random_queries(ds in dataset_strategy(), query in query_strategy()) {
        let store = Store::from_dataset(ds);
        let mut counts = Vec::new();
        for kind in EngineKind::all() {
            match store.execute(&query, kind) {
                Ok(r) => counts.push(r.len()),
                Err(e) => prop_assert!(false, "{} failed: {e} on {query}", kind.label()),
            }
        }
        let first = counts[0];
        prop_assert!(counts.iter().all(|&c| c == first), "counts {counts:?} for {query}");
    }

    /// Parallel execution returns exactly the sequential solution count.
    #[test]
    fn parallel_matches_sequential(ds in dataset_strategy(), query in query_strategy()) {
        let sequential = Store::from_dataset(ds.clone());
        let parallel = Store::from_dataset_with(
            ds,
            turbohom::engine::StoreOptions { inference: false, threads: 3 },
        );
        let a = sequential.execute(&query, EngineKind::TurboHomPlusPlus).unwrap().len();
        let b = parallel.execute(&query, EngineKind::TurboHomPlusPlus).unwrap().len();
        prop_assert_eq!(a, b);
    }

    /// N-Triples serialization round-trips arbitrary datasets.
    #[test]
    fn ntriples_round_trip(ds in dataset_strategy()) {
        let text = serialize_ntriples(&ds);
        let back = parse_ntriples(&text).unwrap();
        prop_assert_eq!(back.len(), ds.len());
    }

    /// Literal escaping in the N-Triples writer round-trips arbitrary strings.
    #[test]
    fn literal_round_trip(s in "[ -~]{0,40}") {
        let mut ds = Dataset::new();
        ds.insert(
            &Term::iri(iri("s")),
            &Term::iri(iri("p")),
            &Term::literal(s.clone()),
        );
        let text = serialize_ntriples(&ds);
        let back = parse_ntriples(&text).unwrap();
        let t = *back.triples.iter().next().unwrap();
        let (_, _, o) = back.decode(&t);
        prop_assert_eq!(o.as_literal().unwrap(), s.as_str());
    }

    /// The dictionary is a bijection between terms and ids.
    #[test]
    fn dictionary_bijection(locals in proptest::collection::vec("[a-z]{1,8}", 1..30)) {
        let mut dict = Dictionary::new();
        let ids: Vec<_> = locals.iter().map(|l| dict.encode(&Term::iri(iri(l)))).collect();
        for (l, id) in locals.iter().zip(&ids) {
            prop_assert_eq!(dict.term(*id), Some(Term::iri(iri(l))));
            prop_assert_eq!(dict.id_of(&Term::iri(iri(l))), Some(*id));
        }
        let distinct: std::collections::HashSet<_> = locals.iter().collect();
        prop_assert_eq!(dict.len(), distinct.len());
    }

    /// Sorted-set intersection/union kernels agree with the naive versions.
    #[test]
    fn set_kernels_match_naive(
        a in proptest::collection::btree_set(0u32..500, 0..60),
        b in proptest::collection::btree_set(0u32..500, 0..60),
    ) {
        let av: Vec<VertexId> = a.iter().map(|&x| VertexId(x)).collect();
        let bv: Vec<VertexId> = b.iter().map(|&x| VertexId(x)).collect();
        let naive_inter: Vec<VertexId> = a.intersection(&b).map(|&x| VertexId(x)).collect();
        let naive_union: Vec<VertexId> = a.union(&b).map(|&x| VertexId(x)).collect();
        prop_assert_eq!(ops::intersect_adaptive(&av, &bv), naive_inter.clone());
        prop_assert_eq!(ops::intersect_merge(&av, &bv), naive_inter.clone());
        prop_assert_eq!(ops::union_sorted(&av, &bv), naive_union);
        prop_assert_eq!(ops::intersect_k(&[&av, &bv]), naive_inter);
    }

    /// Galloping intersection is equivalent to the naive merge on every
    /// input shape — overlapping, subset and disjoint — and the
    /// buffer-reusing `_into` variants agree with their allocating twins
    /// even when the output buffer starts with stale content.
    #[test]
    fn galloping_matches_naive_merge(
        a in proptest::collection::btree_set(0u32..500, 0..40),
        b in proptest::collection::btree_set(0u32..500, 0..160),
        mode in 0usize..3,
    ) {
        // mode 0: as generated; mode 1: force a ⊆ b; mode 2: force disjoint.
        let mut b = b;
        match mode {
            1 => b.extend(a.iter().copied()),
            2 => {
                b = b.iter().map(|x| x + 1000).collect();
            }
            _ => {}
        }
        let av: Vec<VertexId> = a.iter().map(|&x| VertexId(x)).collect();
        let bv: Vec<VertexId> = b.iter().map(|&x| VertexId(x)).collect();
        let naive: Vec<VertexId> = a.intersection(&b).map(|&x| VertexId(x)).collect();
        // `intersect_galloping` requires the smaller list first.
        let (small, large) = if av.len() <= bv.len() { (&av, &bv) } else { (&bv, &av) };
        prop_assert_eq!(ops::intersect_galloping(small, large), naive.clone());
        let mut out = vec![VertexId(u32::MAX); 3]; // stale content must be cleared
        ops::intersect_galloping_into(small, large, &mut out);
        prop_assert_eq!(&out, &naive);
        ops::intersect_merge_into(&av, &bv, &mut out);
        prop_assert_eq!(&out, &naive);
        ops::intersect_adaptive_into(&av, &bv, &mut out);
        prop_assert_eq!(&out, &naive);
        let mut scratch = Vec::new();
        ops::intersect_k_into(&[&av, &bv], &mut out, &mut scratch);
        prop_assert_eq!(&out, &naive);
    }

    /// The inference engine is idempotent (a fixpoint) and monotone.
    #[test]
    fn inference_is_idempotent_and_monotone(ds in dataset_strategy(), classes in proptest::collection::vec((0usize..4, 0usize..4), 0..4)) {
        let mut ds = ds;
        for (a, b) in classes {
            ds.insert_iris(&iri(CLASSES[a]), turbohom::rdf::vocab::RDFS_SUBCLASSOF, &iri(CLASSES[b]));
        }
        let before = ds.len();
        let engine = InferenceEngine::default();
        engine.materialize(&mut ds);
        let after_first = ds.len();
        prop_assert!(after_first >= before);
        let stats = engine.materialize(&mut ds);
        prop_assert_eq!(stats.total(), 0);
        prop_assert_eq!(ds.len(), after_first);
    }

    /// The type-aware transformation never has more vertices or edges than
    /// the direct transformation (Table 1's |V| and |E| reduction).
    #[test]
    fn type_aware_is_never_larger(ds in dataset_strategy()) {
        let direct = turbohom::transform::direct_transform(&ds);
        let aware = turbohom::transform::type_aware_transform(&ds);
        prop_assert!(aware.graph.vertex_count() <= direct.graph.vertex_count());
        prop_assert!(aware.graph.edge_count() <= direct.graph.edge_count());
    }
}
