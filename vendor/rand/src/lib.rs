//! Vendored, API-compatible stub of the `rand` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! exact subset of the `rand` 0.8 API used by this workspace: the
//! [`RngCore`] / [`SeedableRng`] traits, and the [`Rng`] extension trait
//! with `gen_range` / `gen_bool` / `gen_ratio` over integer and float
//! ranges. See `vendor/README.md`.

use std::ops::{Range, RangeInclusive};

/// Core random-number generation: an infinite stream of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        let hi = u64::from(self.next_u32());
        let lo = u64::from(self.next_u32());
        (hi << 32) | lo
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 the
    /// same way upstream `rand` does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A type that can be sampled uniformly from a random generator restricted
/// to a range — the receiver of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($(($t:ty, $mantissa:expr)),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // As many random bits as the type's mantissa holds exactly,
                // so the division is exact and `unit` stays strictly < 1
                // (more bits would round up to 1.0 and break the half-open
                // range contract — e.g. 53 bits squeezed into an f32).
                let unit = (rng.next_u64() >> (64 - $mantissa)) as $t
                    / (1u64 << $mantissa) as $t;
                let value = self.start + unit * (self.end - self.start);
                // `unit < 1` alone is not enough: for very narrow ranges the
                // rounding of `start + unit * span` can still land exactly on
                // `end`. Clamp back to the largest representable value below
                // `end`, preserving the half-open contract like upstream.
                if value < self.end {
                    value
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
    )*};
}

impl_float_sample_range!((f32, 24), (f64, 53));

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0, "gen_ratio denominator must be positive");
        assert!(
            numerator <= denominator,
            "gen_ratio numerator > denominator"
        );
        (self.next_u64() % u64::from(denominator)) < u64::from(numerator)
    }
}

impl<R: RngCore> Rng for R {}

/// The traits users are expected to import, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng};
}
