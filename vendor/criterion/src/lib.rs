//! Vendored, API-compatible stub of the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so this crate provides the
//! subset of criterion's API that the `turbohom-bench` targets use —
//! benchmark groups with `sample_size` / `warm_up_time` / `measurement_time`
//! configuration, `bench_function` / `bench_with_input`, `BenchmarkId`, and
//! the `criterion_group!` / `criterion_main!` macros. Benchmarks really run
//! and report mean / min / max wall-clock time per iteration to stdout; the
//! statistical machinery (outlier detection, HTML reports) is intentionally
//! absent. See `vendor/README.md`.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Reads CLI filter arguments the way `cargo bench -- <filter>` passes them,
/// skipping harness flags like `--bench`.
fn cli_filters() -> Vec<String> {
    std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect()
}

/// Opaque measurement marker types, mirroring `criterion::measurement`.
pub mod measurement {
    /// Wall-clock time measurement (the default and only one provided).
    #[derive(Debug, Default, Clone, Copy)]
    pub struct WallTime;
}

/// Prevents the compiler from optimizing away a benchmarked value.
#[inline]
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// A benchmark identifier composed of a function name and a parameter,
/// rendered as `function/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Conversion of the various id shapes `bench_function` accepts.
pub trait IntoBenchmarkId {
    /// Renders the id as the display string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing callback handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, first warming up, then running `iterations` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up call (caches, lazy statics).
        hint::black_box(routine());
        for _ in 0..self.iterations {
            let start = Instant::now();
            hint::black_box(routine());
            self.elapsed.push(start.elapsed());
        }
    }
}

/// The top-level harness handle.
#[derive(Debug)]
pub struct Criterion {
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filters: cli_filters(),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(
        &mut self,
        group_name: S,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
            sample_size: 10,
            _measurement: measurement::WallTime,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    _measurement: M,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the stub's single warm-up call is not
    /// time-bounded.
    pub fn warm_up_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub always runs exactly
    /// `sample_size` samples.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let full = format!("{}/{}", self.name, id);
        let filters = &self.criterion.filters;
        if !filters.is_empty() && !filters.iter().any(|pat| full.contains(pat.as_str())) {
            return;
        }
        let mut bencher = Bencher {
            iterations: self.sample_size as u64,
            elapsed: Vec::with_capacity(self.sample_size),
        };
        f(&mut bencher);
        let samples = &bencher.elapsed;
        if samples.is_empty() {
            println!("{full:60} (no samples)");
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        println!("{full:60} mean {mean:>12.3?}  min {min:>12.3?}  max {max:>12.3?}");
    }

    /// Runs a benchmark with no extra input.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        self.run(id.into_id(), f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        self.run(id.into_id(), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Throughput configuration, accepted and ignored by the stub.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench harness entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
