//! Vendored, API-compatible stub of the `proptest` property-testing crate.
//!
//! The build environment has no registry access, so this crate provides the
//! subset of proptest's API that this workspace's test suites use: the
//! [`proptest!`] macro, the [`Strategy`](strategy::Strategy) trait with
//! `prop_map`, integer/float range and tuple strategies, char-class regex
//! string strategies, [`collection::vec`] / [`collection::btree_set`],
//! [`option::of`], [`bool::ANY`] and the `prop_assert*` macros.
//!
//! Test cases are generated from a deterministic per-case seed (the case
//! index), so a failure is reproducible by rerunning the test; there is no
//! shrinking — the failing assertion message is expected to carry the
//! interesting context, which the tests in this workspace arrange by
//! embedding the generated query/dataset in their assertion messages.
//! See `vendor/README.md`.

/// Deterministic RNG and run configuration.
pub mod test_runner {
    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// The deterministic generator driving value generation — a thin wrapper
    /// over the sibling vendored [`ChaCha8Rng`] so the seeding and sampling
    /// logic lives in one place (the `rand` stubs).
    #[derive(Debug, Clone)]
    pub struct TestRng(ChaCha8Rng);

    impl TestRng {
        /// Creates a generator for one test case.
        pub fn from_seed(seed: u64) -> Self {
            TestRng(ChaCha8Rng::seed_from_u64(seed))
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            RngCore::next_u64(&mut self.0)
        }

        /// Returns a value uniform in `0..bound` (`bound` must be nonzero).
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0) is meaningless");
            self.next_u64() % bound
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Run configuration, mirroring `proptest::test_runner::ProptestConfig`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and primitive strategies.
pub mod strategy {
    use crate::string::CharClassPattern;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `map_fn`.
        fn prop_map<U, F>(self, map_fn: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map {
                inner: self,
                map_fn,
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        map_fn: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.map_fn)(self.inner.generate(rng))
        }
    }

    /// Integer and float ranges are strategies; the sampling logic is the
    /// vendored `rand` crate's, so there is exactly one uniform sampler to
    /// maintain across the stubs.
    impl<T> Strategy for Range<T>
    where
        Range<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rand::SampleRange::sample_one(self.clone(), rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// String literals act as (char-class) regex strategies, mirroring
    /// proptest's `impl Strategy for &str`.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            CharClassPattern::parse(self).generate(rng)
        }
    }

    /// A strategy always yielding clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Minimal char-class regex support for string strategies.
pub mod string {
    use crate::test_runner::TestRng;

    /// A parsed pattern of the shape `[class]{min,max}` (or a bare
    /// `[class]`, meaning exactly one char), e.g. `"[a-z]{1,8}"`.
    #[derive(Debug, Clone)]
    pub struct CharClassPattern {
        /// The characters the class can produce.
        alphabet: Vec<char>,
        /// Inclusive length bounds.
        min_len: usize,
        max_len: usize,
    }

    impl CharClassPattern {
        /// Parses the supported regex subset; panics with a clear message on
        /// anything beyond it.
        pub fn parse(pattern: &str) -> Self {
            fn unsupported(pattern: &str) -> ! {
                panic!(
                    "vendored proptest only supports `[class]{{min,max}}` regex \
                     string strategies, got {pattern:?}"
                )
            }
            let rest = pattern
                .strip_prefix('[')
                .unwrap_or_else(|| unsupported(pattern));
            let (class, rest) = rest.split_once(']').unwrap_or_else(|| unsupported(pattern));
            let mut alphabet = Vec::new();
            let chars: Vec<char> = class.chars().collect();
            let mut i = 0;
            while i < chars.len() {
                if i + 2 < chars.len() && chars[i + 1] == '-' {
                    let (lo, hi) = (chars[i], chars[i + 2]);
                    assert!(lo <= hi, "invalid char range in {pattern:?}");
                    alphabet.extend(lo..=hi);
                    i += 3;
                } else {
                    alphabet.push(chars[i]);
                    i += 1;
                }
            }
            assert!(!alphabet.is_empty(), "empty char class in {pattern:?}");
            let (min_len, max_len) = if rest.is_empty() {
                (1, 1)
            } else {
                let body = rest
                    .strip_prefix('{')
                    .and_then(|r| r.strip_suffix('}'))
                    .unwrap_or_else(|| unsupported(pattern));
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim()
                            .parse::<usize>()
                            .unwrap_or_else(|_| unsupported(pattern)),
                        hi.trim()
                            .parse::<usize>()
                            .unwrap_or_else(|_| unsupported(pattern)),
                    ),
                    None => {
                        let n = body
                            .trim()
                            .parse::<usize>()
                            .unwrap_or_else(|_| unsupported(pattern));
                        (n, n)
                    }
                }
            };
            assert!(min_len <= max_len, "inverted repetition in {pattern:?}");
            CharClassPattern {
                alphabet,
                min_len,
                max_len,
            }
        }

        /// Generates one string matching the pattern.
        pub fn generate(&self, rng: &mut TestRng) -> String {
            let len = self.min_len + rng.below((self.max_len - self.min_len + 1) as u64) as usize;
            (0..len)
                .map(|_| self.alphabet[rng.below(self.alphabet.len() as u64) as usize])
                .collect()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive range of collection sizes, mirroring
    /// `proptest::collection::SizeRange`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty collection size range");
            SizeRange {
                min: range.start,
                max: range.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            assert!(range.start() <= range.end(), "empty collection size range");
            SizeRange {
                min: *range.start(),
                max: *range.end(),
            }
        }
    }

    /// Strategy for `Vec`s with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s of values from `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.draw(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s drawn with up to `size` insertions.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `BTreeSet`s of values from `element`; duplicates collapse,
    /// so like upstream the set may be smaller than the drawn size.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.draw(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `None` a quarter of the time, `Some` otherwise.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wraps `inner` values in `Option`, sometimes generating `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// `bool` strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }
}

/// Asserts a condition inside a property, with an optional message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property, with an optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a property, with an optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Expands property functions into `#[test]` functions that run the body
/// over `cases` deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                $(let $arg = &($strat);)+
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::from_seed(u64::from(__case));
                    $(let $arg = $crate::strategy::Strategy::generate($arg, &mut __rng);)+
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(__panic) = __outcome {
                        eprintln!(
                            "proptest property {} failed at case #{} (deterministic seed {})",
                            stringify!($name), __case, __case,
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

/// The items users are expected to import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}
