//! Vendored, API-compatible stub of `parking_lot`: a non-poisoning mutex
//! facade over `std::sync::Mutex`. Only the surface this workspace uses is
//! provided. See `vendor/README.md`.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never returns a poison error,
/// mirroring `parking_lot::Mutex`'s API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}
