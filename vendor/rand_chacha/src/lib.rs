//! Vendored, API-compatible stub of the `rand_chacha` crate providing
//! [`ChaCha8Rng`]: a deterministic generator built on the real ChaCha block
//! function with 8 rounds. See `vendor/README.md` for why this exists and
//! how it differs from upstream.

use rand::{RngCore, SeedableRng};

/// A deterministic RNG producing the ChaCha (8-round) keystream of a
/// 32-byte key with an all-zero nonce.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// ChaCha key as eight little-endian words.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Words of the current block not yet handed out.
    buffer: [u32; 16],
    /// Next unread index into `buffer`; 16 means "exhausted".
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// The ChaCha constant "expand 32-byte k".
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&Self::SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds of column + diagonal quarter-rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buffer = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
