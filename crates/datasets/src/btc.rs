//! A BTC2012-like multi-source crawl dataset and the 8-query workload.
//!
//! The Billion Triples Challenge 2012 dataset is a web crawl: FOAF profiles,
//! DBpedia extracts, geo data and SIOC posts mixed together, with irregular
//! typing (many entities carry no `rdf:type` at all) and triples that
//! violate a clean schema. The paper loads it *without* inference and runs
//! tree-shaped queries, several of which pin one query vertex to a concrete
//! entity (that is why all engines answer them quickly, Section 7.2).
//! This generator reproduces those characteristics.

use crate::BenchmarkQuery;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use turbohom_rdf::{vocab, Dataset, Term};

/// FOAF namespace.
pub const FOAF: &str = "http://xmlns.com/foaf/0.1/";
/// DBpedia-like ontology namespace.
pub const DBO: &str = "http://dbpedia.example.org/ontology/";
/// DBpedia-like resource namespace.
pub const DBR: &str = "http://dbpedia.example.org/resource/";
/// Geo vocabulary namespace.
pub const GEO: &str = "http://www.w3.org/2003/01/geo/wgs84_pos#";
/// Crawled-person namespace.
pub const PPL: &str = "http://people.example.org/";

fn foaf(local: &str) -> Term {
    Term::iri(format!("{FOAF}{local}"))
}

fn dbo(local: &str) -> Term {
    Term::iri(format!("{DBO}{local}"))
}

fn dbr(local: &str) -> Term {
    Term::iri(format!("{DBR}{local}"))
}

fn person(i: usize) -> Term {
    Term::iri(format!("{PPL}person{i}"))
}

/// Generator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtcConfig {
    /// Scale factor: the number of crawled FOAF profiles is `300 × scale`.
    pub scale: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for BtcConfig {
    fn default() -> Self {
        BtcConfig {
            scale: 1,
            seed: 0xb7c_5eed,
        }
    }
}

impl BtcConfig {
    /// A configuration with the given scale factor.
    pub fn scale(scale: usize) -> Self {
        BtcConfig {
            scale,
            ..Self::default()
        }
    }
}

/// The BTC-like data generator.
#[derive(Debug, Clone)]
pub struct BtcGenerator {
    config: BtcConfig,
}

impl BtcGenerator {
    /// Creates a generator.
    pub fn new(config: BtcConfig) -> Self {
        BtcGenerator { config }
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Dataset {
        let cfg = &self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut ds = Dataset::new();
        let rdf_type = Term::iri(vocab::RDF_TYPE);

        let people = 300 * cfg.scale.max(1);
        let places = 40 * cfg.scale.max(1);
        let documents = 100 * cfg.scale.max(1);

        // DBpedia-like places with geo coordinates; only half are typed.
        for p in 0..places {
            let place = dbr(&format!("Place{p}"));
            if p % 2 == 0 {
                ds.insert(&place, &rdf_type, &dbo("Place"));
            }
            ds.insert(
                &place,
                &Term::iri(format!("{GEO}lat")),
                &Term::double(-90.0 + (p as f64) * 0.37 % 180.0),
            );
            ds.insert(
                &place,
                &Term::iri(format!("{GEO}long")),
                &Term::double(-180.0 + (p as f64) * 0.73 % 360.0),
            );
            ds.insert(
                &place,
                &Term::iri(vocab::RDFS_LABEL),
                &Term::literal(format!("Place number {p}")),
            );
            ds.insert(&place, &dbo("country"), &dbr(&format!("Country{}", p % 12)));
        }

        // FOAF profiles: irregular — not everyone has every property, a third
        // are untyped, mailboxes and homepages are sparse.
        for i in 0..people {
            let p = person(i);
            if i % 3 != 0 {
                ds.insert(&p, &rdf_type, &foaf("Person"));
            }
            ds.insert(
                &p,
                &foaf("name"),
                &Term::literal(format!("Crawled Person {i}")),
            );
            if rng.gen_ratio(2, 3) {
                ds.insert(
                    &p,
                    &foaf("mbox"),
                    &Term::iri(format!("mailto:person{i}@example.org")),
                );
            }
            if rng.gen_ratio(1, 3) {
                ds.insert(
                    &p,
                    &foaf("homepage"),
                    &Term::iri(format!("http://people.example.org/home/{i}")),
                );
            }
            // Social links with popularity skew toward low ids.
            let friends = rng.gen_range(0..5);
            for _ in 0..friends {
                let target = if rng.gen_bool(0.5) {
                    rng.gen_range(0..(people / 10).max(1))
                } else {
                    rng.gen_range(0..people)
                };
                if target != i {
                    ds.insert(&p, &foaf("knows"), &person(target));
                }
            }
            if rng.gen_ratio(1, 2) {
                ds.insert(
                    &p,
                    &dbo("birthPlace"),
                    &dbr(&format!("Place{}", rng.gen_range(0..places))),
                );
            }
            if rng.gen_ratio(1, 6) {
                ds.insert(
                    &p,
                    &dbo("occupation"),
                    &dbr(&format!("Occupation{}", i % 9)),
                );
            }
        }

        // Documents created by people (dc:creator-style links).
        for d in 0..documents {
            let doc = Term::iri(format!("http://docs.example.org/doc{d}"));
            ds.insert(&doc, &rdf_type, &foaf("Document"));
            ds.insert(
                &doc,
                &Term::iri("http://purl.org/dc/elements/1.1/creator"),
                &person(rng.gen_range(0..people)),
            );
            ds.insert(
                &doc,
                &Term::iri("http://purl.org/dc/elements/1.1/title"),
                &Term::literal(format!("Document {d}")),
            );
        }
        ds
    }
}

/// The 8 BTC-style benchmark queries (tree shaped; Q2, Q4 and Q5 pin a
/// concrete entity, mirroring the original workload's selectivity profile).
pub fn queries() -> Vec<BenchmarkQuery> {
    let prologue = format!(
        "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n\
         PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n\
         PREFIX foaf: <{FOAF}>\nPREFIX dbo: <{DBO}>\nPREFIX dbr: <{DBR}>\n\
         PREFIX dc: <http://purl.org/dc/elements/1.1/>\nPREFIX ppl: <{PPL}>\n"
    );
    let q = |id: &str, desc: &str, body: &str| {
        BenchmarkQuery::new(id, desc, format!("{prologue}{body}"))
    };
    vec![
        q(
            "Q1",
            "People with a mailbox and a homepage",
            "SELECT ?p ?m ?h WHERE { ?p rdf:type foaf:Person . ?p foaf:mbox ?m . \
             ?p foaf:homepage ?h . ?p foaf:name ?name . }",
        ),
        q(
            "Q2",
            "The social neighborhood of a specific person",
            "SELECT ?friend ?name WHERE { ppl:person1 foaf:knows ?friend . \
             ?friend foaf:name ?name . }",
        ),
        q(
            "Q3",
            "People born in a typed place with coordinates",
            "SELECT ?p ?place ?lat WHERE { ?p dbo:birthPlace ?place . \
             ?place rdf:type dbo:Place . \
             ?place <http://www.w3.org/2003/01/geo/wgs84_pos#lat> ?lat . }",
        ),
        q(
            "Q4",
            "Documents created by a specific person",
            "SELECT ?doc ?title WHERE { ?doc dc:creator ppl:person2 . ?doc dc:title ?title . }",
        ),
        q(
            "Q5",
            "Everything known about a specific place",
            "SELECT ?prop ?value WHERE { dbr:Place3 ?prop ?value . }",
        ),
        q(
            "Q6",
            "Friends of friends of a specific person",
            "SELECT ?fof WHERE { ppl:person1 foaf:knows ?f . ?f foaf:knows ?fof . }",
        ),
        q(
            "Q7",
            "People whose birth place is in a given country, with names",
            "SELECT ?p ?name ?place WHERE { ?p dbo:birthPlace ?place . \
             ?place dbo:country dbr:Country3 . ?p foaf:name ?name . }",
        ),
        q(
            "Q8",
            "Authors of documents together with who they know",
            "SELECT ?doc ?author ?friend WHERE { ?doc dc:creator ?author . \
             ?author foaf:knows ?friend . ?friend foaf:mbox ?mbox . }",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_irregular() {
        let a = BtcGenerator::new(BtcConfig::scale(1)).generate();
        let b = BtcGenerator::new(BtcConfig::scale(1)).generate();
        assert_eq!(a.len(), b.len());
        // Irregularity: fewer rdf:type triples than people (a third untyped).
        let rdf_type = a.rdf_type_id().unwrap();
        let foaf_person = a.dictionary.id_of_iri(&format!("{FOAF}Person")).unwrap();
        let typed = a
            .triples
            .iter()
            .filter(|t| t.p == rdf_type && t.o == foaf_person)
            .count();
        assert!(typed < 300);
        assert!(typed > 150);
    }

    #[test]
    fn anchor_entities_exist() {
        let ds = BtcGenerator::new(BtcConfig::scale(1)).generate();
        for iri in [
            format!("{PPL}person1"),
            format!("{PPL}person2"),
            format!("{DBR}Place3"),
            format!("{DBR}Country3"),
        ] {
            assert!(ds.dictionary.id_of_iri(&iri).is_some(), "missing {iri}");
        }
    }

    #[test]
    fn eight_queries() {
        assert_eq!(queries().len(), 8);
    }
}
