//! Synthetic benchmark datasets and query sets.
//!
//! The paper's evaluation (Section 7) uses four workloads. Their official
//! generators and dumps are external artifacts (Java tools, multi-gigabyte
//! downloads), so this crate re-creates each of them as a deterministic,
//! seed-driven Rust generator that preserves the *statistical shape* the
//! experiments rely on (see DESIGN.md §4 for the substitution argument):
//!
//! | Paper dataset | Module | What is preserved |
//! |---|---|---|
//! | LUBM (scale 80/800/8000) + 14 queries | [`lubm`] | university schema, class/property hierarchies that make Q4–Q6/Q13 need inference, constant- vs increasing-solution query split |
//! | BSBM explore use case (12 queries) | [`bsbm`] | e-commerce schema, OPTIONAL/FILTER/UNION query shapes, expensive-filter queries Q5/Q6 |
//! | YAGO + 8 queries | [`yago`] | heterogeneous entity/fact mix, queries with few type constraints |
//! | BTC2012 + 8 queries | [`btc`] | multi-source crawl irregularity, untyped entities, tree-shaped queries with bound IDs |
//!
//! [`micro`] additionally provides the worked examples of the paper
//! (Figures 1, 2 and 3) as tiny datasets for unit/integration tests and the
//! matching-order micro-benchmark.

pub mod bsbm;
pub mod btc;
pub mod lubm;
pub mod micro;
pub mod yago;

/// A named benchmark query (SPARQL text plus identifiers used in reports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkQuery {
    /// Short id as used in the paper's tables, e.g. `"Q2"`.
    pub id: String,
    /// Human readable description of what the query asks.
    pub description: String,
    /// The SPARQL text.
    pub sparql: String,
}

impl BenchmarkQuery {
    /// Creates a benchmark query.
    pub fn new(
        id: impl Into<String>,
        description: impl Into<String>,
        sparql: impl Into<String>,
    ) -> Self {
        BenchmarkQuery {
            id: id.into(),
            description: description.into(),
            sparql: sparql.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_sets_parse() {
        for q in lubm::queries()
            .iter()
            .chain(bsbm::queries().iter())
            .chain(yago::queries().iter())
            .chain(btc::queries().iter())
        {
            assert!(
                turbohom_sparql::parse_query(&q.sparql).is_ok(),
                "query {} does not parse: {}",
                q.id,
                q.sparql
            );
        }
    }

    #[test]
    fn benchmark_query_constructor() {
        let q = BenchmarkQuery::new("Q1", "test", "SELECT ?x WHERE { ?x ?p ?o . }");
        assert_eq!(q.id, "Q1");
    }
}
