//! The BSBM-like e-commerce benchmark: generator and the 12 explore queries.
//!
//! The Berlin SPARQL Benchmark models an e-commerce scenario (products,
//! producers, vendors, offers, reviews) and its *explore use case* is the
//! query mix the paper runs in Table 6 — it is the workload that exercises
//! the general SPARQL features OPTIONAL, FILTER and UNION (Section 5.1).
//! The generator below reproduces the schema shape and the query set keeps
//! the features and selectivity pattern of the originals: most queries are
//! anchored to one product/offer/review and return a handful of rows, while
//! Q5 (join-condition filters) and Q6 (regular expression over labels) are
//! the two expensive ones.

use crate::BenchmarkQuery;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use turbohom_rdf::{vocab, Dataset, Term};

/// Vocabulary namespace.
pub const BSBM: &str = "http://bsbm.example.org/vocabulary/";
/// Instance namespace.
pub const INST: &str = "http://bsbm.example.org/instances/";

fn voc(local: &str) -> Term {
    Term::iri(format!("{BSBM}{local}"))
}

fn inst(local: &str) -> Term {
    Term::iri(format!("{INST}{local}"))
}

/// Generator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BsbmConfig {
    /// Scale factor: the number of products is `100 × scale`.
    pub scale: usize,
    /// Number of distinct product features.
    pub features: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for BsbmConfig {
    fn default() -> Self {
        BsbmConfig {
            scale: 1,
            features: 40,
            seed: 0xb5b_5eed,
        }
    }
}

impl BsbmConfig {
    /// A configuration with the given scale factor.
    pub fn scale(scale: usize) -> Self {
        BsbmConfig {
            scale,
            ..Self::default()
        }
    }

    /// Number of products this configuration generates.
    pub fn products(&self) -> usize {
        self.scale * 100
    }
}

/// The BSBM-like data generator.
#[derive(Debug, Clone)]
pub struct BsbmGenerator {
    config: BsbmConfig,
}

impl BsbmGenerator {
    /// Creates a generator.
    pub fn new(config: BsbmConfig) -> Self {
        BsbmGenerator { config }
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Dataset {
        let cfg = &self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut ds = Dataset::new();
        let rdf_type = Term::iri(vocab::RDF_TYPE);

        let products = cfg.products();
        let producers = (cfg.scale * 5).max(2);
        let vendors = (cfg.scale * 5).max(2);
        let reviewers = (cfg.scale * 20).max(5);

        // Product type hierarchy: a root type with a handful of subtypes.
        ds.insert(&voc("ProductTypeRoot"), &rdf_type, &voc("ProductType"));
        for t in 0..6 {
            let ty = voc(&format!("ProductType{t}"));
            ds.insert(&ty, &rdf_type, &voc("ProductType"));
            ds.insert(
                &ty,
                &Term::iri(vocab::RDFS_SUBCLASSOF),
                &voc("ProductTypeRoot"),
            );
        }

        // Features.
        for f in 0..cfg.features {
            let feature = inst(&format!("ProductFeature{f}"));
            ds.insert(&feature, &rdf_type, &voc("ProductFeature"));
            ds.insert(
                &feature,
                &voc("label"),
                &Term::literal(format!("feature number {f}")),
            );
        }

        // Producers.
        for p in 0..producers {
            let producer = inst(&format!("Producer{p}"));
            ds.insert(&producer, &rdf_type, &voc("Producer"));
            ds.insert(
                &producer,
                &voc("label"),
                &Term::literal(format!("Producer {p}")),
            );
            ds.insert(
                &producer,
                &voc("country"),
                &Term::iri(format!("http://countries.example.org/C{}", p % 7)),
            );
        }

        // Vendors.
        for v in 0..vendors {
            let vendor = inst(&format!("Vendor{v}"));
            ds.insert(&vendor, &rdf_type, &voc("Vendor"));
            ds.insert(
                &vendor,
                &voc("label"),
                &Term::literal(format!("Vendor {v}")),
            );
            ds.insert(
                &vendor,
                &voc("country"),
                &Term::iri(format!("http://countries.example.org/C{}", v % 7)),
            );
        }

        // Reviewers.
        for r in 0..reviewers {
            let reviewer = inst(&format!("Reviewer{r}"));
            ds.insert(&reviewer, &rdf_type, &voc("Person"));
            ds.insert(
                &reviewer,
                &voc("name"),
                &Term::literal(format!("Reviewer {r}")),
            );
            ds.insert(
                &reviewer,
                &voc("country"),
                &Term::iri(format!("http://countries.example.org/C{}", r % 7)),
            );
        }

        // Products, offers, reviews.
        let adjectives = [
            "great", "solid", "cheap", "premium", "classic", "alpha", "omega",
        ];
        for i in 0..products {
            let product = inst(&format!("Product{i}"));
            ds.insert(&product, &rdf_type, &voc("Product"));
            ds.insert(&product, &rdf_type, &voc(&format!("ProductType{}", i % 6)));
            ds.insert(
                &product,
                &voc("label"),
                &Term::literal(format!(
                    "{} product number {i}",
                    adjectives[i % adjectives.len()]
                )),
            );
            ds.insert(
                &product,
                &voc("producer"),
                &inst(&format!("Producer{}", i % producers)),
            );
            // 3–5 features per product.
            let feature_count = 3 + rng.gen_range(0..3);
            for _ in 0..feature_count {
                let f = rng.gen_range(0..cfg.features);
                ds.insert(
                    &product,
                    &voc("productFeature"),
                    &inst(&format!("ProductFeature{f}")),
                );
            }
            ds.insert(
                &product,
                &voc("propertyNum1"),
                &Term::integer(rng.gen_range(1..2000)),
            );
            ds.insert(
                &product,
                &voc("propertyNum2"),
                &Term::integer(rng.gen_range(1..2000)),
            );
            ds.insert(
                &product,
                &voc("propertyNum3"),
                &Term::integer(rng.gen_range(1..2000)),
            );
            // 70 % of the products have a text property (used by OPTIONAL queries).
            if rng.gen_ratio(7, 10) {
                ds.insert(
                    &product,
                    &voc("propertyTex1"),
                    &Term::literal(format!("textual description {i}")),
                );
            }

            // Offers: two per product.
            for k in 0..2 {
                let offer = inst(&format!("Offer{i}_{k}"));
                ds.insert(&offer, &rdf_type, &voc("Offer"));
                ds.insert(&offer, &voc("product"), &product);
                ds.insert(
                    &offer,
                    &voc("vendor"),
                    &inst(&format!("Vendor{}", rng.gen_range(0..vendors))),
                );
                ds.insert(
                    &offer,
                    &voc("price"),
                    &Term::double(rng.gen_range(10.0..5000.0)),
                );
                ds.insert(
                    &offer,
                    &voc("deliveryDays"),
                    &Term::integer(rng.gen_range(1..14)),
                );
            }

            // Reviews: two per product, 60 % carry a rating.
            for k in 0..2 {
                let review = inst(&format!("Review{i}_{k}"));
                ds.insert(&review, &rdf_type, &voc("Review"));
                ds.insert(&review, &voc("reviewFor"), &product);
                ds.insert(
                    &review,
                    &voc("reviewer"),
                    &inst(&format!("Reviewer{}", rng.gen_range(0..reviewers))),
                );
                ds.insert(
                    &review,
                    &voc("title"),
                    &Term::literal(format!("review {k} of product {i}")),
                );
                if rng.gen_ratio(3, 5) {
                    ds.insert(
                        &review,
                        &voc("rating1"),
                        &Term::integer(rng.gen_range(1..=10)),
                    );
                }
            }
        }
        ds
    }
}

/// The 12 explore-use-case queries, anchored to entities the generator is
/// guaranteed to produce (`Product1`, `Offer1_0`, `Review1_0`, …).
pub fn queries() -> Vec<BenchmarkQuery> {
    let prologue = format!(
        "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\nPREFIX bsbm: <{BSBM}>\nPREFIX inst: <{INST}>\n"
    );
    let q = |id: &str, desc: &str, body: &str| {
        BenchmarkQuery::new(id, desc, format!("{prologue}{body}"))
    };
    vec![
        q(
            "Q1",
            "Products of a type carrying a given feature with a large propertyNum1",
            "SELECT ?product ?label WHERE { \
               ?product rdf:type bsbm:Product . ?product bsbm:label ?label . \
               ?product bsbm:productFeature inst:ProductFeature1 . \
               ?product bsbm:propertyNum1 ?p1 . FILTER (?p1 > 1500) }",
        ),
        q(
            "Q2",
            "All core details of a specific product, with optional text property",
            "SELECT ?label ?producer ?p1 ?tex WHERE { \
               inst:Product1 bsbm:label ?label . \
               inst:Product1 bsbm:producer ?producer . \
               inst:Product1 bsbm:propertyNum1 ?p1 . \
               OPTIONAL { inst:Product1 bsbm:propertyTex1 ?tex . } }",
        ),
        q(
            "Q3",
            "Products with a feature, a numeric range, and without a second feature",
            "SELECT ?product WHERE { \
               ?product rdf:type bsbm:Product . \
               ?product bsbm:productFeature inst:ProductFeature2 . \
               ?product bsbm:propertyNum1 ?p1 . FILTER (?p1 > 500) \
               ?product bsbm:propertyNum3 ?p3 . FILTER (?p3 < 1500) \
               OPTIONAL { ?product bsbm:productFeature inst:ProductFeature3 . \
                          ?product bsbm:label ?other . } \
               FILTER (!BOUND(?other)) }",
        ),
        q(
            "Q4",
            "Products carrying either of two features (UNION)",
            "SELECT ?product ?label WHERE { \
               ?product rdf:type bsbm:Product . ?product bsbm:label ?label . \
               { ?product bsbm:productFeature inst:ProductFeature4 . } \
               UNION \
               { ?product bsbm:productFeature inst:ProductFeature5 . } }",
        ),
        q(
            "Q5",
            "Products with property values close to those of a given product (join-condition filters)",
            "SELECT ?product WHERE { \
               ?product rdf:type bsbm:Product . \
               inst:Product1 bsbm:propertyNum1 ?orig1 . \
               ?product bsbm:propertyNum1 ?p1 . \
               inst:Product1 bsbm:propertyNum2 ?orig2 . \
               ?product bsbm:propertyNum2 ?p2 . \
               FILTER (?p1 < ?orig1 + 300 && ?p1 > ?orig1 - 300) \
               FILTER (?p2 < ?orig2 + 300 && ?p2 > ?orig2 - 300) }",
        ),
        q(
            "Q6",
            "Products whose label matches a regular expression",
            "SELECT ?product ?label WHERE { \
               ?product rdf:type bsbm:Product . ?product bsbm:label ?label . \
               FILTER regex(?label, \"alpha.*number\") }",
        ),
        q(
            "Q7",
            "Offers and reviews (with optional ratings) for a specific product",
            "SELECT ?offer ?price ?review ?rating WHERE { \
               ?offer bsbm:product inst:Product1 . ?offer bsbm:price ?price . \
               ?review bsbm:reviewFor inst:Product1 . \
               OPTIONAL { ?review bsbm:rating1 ?rating . } }",
        ),
        q(
            "Q8",
            "Reviews of a specific product with reviewer names",
            "SELECT ?review ?title ?reviewer ?name WHERE { \
               ?review bsbm:reviewFor inst:Product1 . ?review bsbm:title ?title . \
               ?review bsbm:reviewer ?reviewer . ?reviewer bsbm:name ?name . }",
        ),
        q(
            "Q9",
            "Everything about the reviewer of a given review",
            "SELECT ?reviewer ?name ?country WHERE { \
               inst:Review1_0 bsbm:reviewer ?reviewer . \
               ?reviewer bsbm:name ?name . ?reviewer bsbm:country ?country . }",
        ),
        q(
            "Q10",
            "Cheap, quickly delivered offers for a specific product",
            "SELECT ?offer ?price WHERE { \
               ?offer bsbm:product inst:Product1 . ?offer bsbm:vendor ?vendor . \
               ?vendor bsbm:country <http://countries.example.org/C1> . \
               ?offer bsbm:deliveryDays ?d . FILTER (?d < 10) \
               ?offer bsbm:price ?price . FILTER (?price < 4900) }",
        ),
        q(
            "Q11",
            "All properties of a specific offer (variable predicate)",
            "SELECT ?property ?value WHERE { inst:Offer1_0 ?property ?value . }",
        ),
        q(
            "Q12",
            "Export view of a specific offer",
            "SELECT ?productLabel ?vendor ?price WHERE { \
               inst:Offer1_0 bsbm:product ?product . ?product bsbm:label ?productLabel . \
               inst:Offer1_0 bsbm:vendor ?vendor . inst:Offer1_0 bsbm:price ?price . }",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_scales() {
        let a = BsbmGenerator::new(BsbmConfig::scale(1)).generate();
        let b = BsbmGenerator::new(BsbmConfig::scale(1)).generate();
        assert_eq!(a.len(), b.len());
        let big = BsbmGenerator::new(BsbmConfig::scale(3)).generate();
        assert!(big.len() > 2 * a.len());
    }

    #[test]
    fn anchor_entities_exist() {
        let ds = BsbmGenerator::new(BsbmConfig::scale(1)).generate();
        for iri in [
            format!("{INST}Product1"),
            format!("{INST}Offer1_0"),
            format!("{INST}Review1_0"),
            format!("{INST}ProductFeature1"),
            format!("{INST}Vendor0"),
        ] {
            assert!(ds.dictionary.id_of_iri(&iri).is_some(), "missing {iri}");
        }
    }

    #[test]
    fn products_have_numeric_properties() {
        let ds = BsbmGenerator::new(BsbmConfig::scale(1)).generate();
        let p1 = ds
            .dictionary
            .id_of_iri(&format!("{BSBM}propertyNum1"))
            .unwrap();
        assert_eq!(ds.count_predicate(p1), BsbmConfig::scale(1).products());
    }

    #[test]
    fn twelve_queries() {
        let qs = queries();
        assert_eq!(qs.len(), 12);
        assert!(qs.iter().any(|q| q.sparql.contains("UNION")));
        assert!(qs.iter().any(|q| q.sparql.contains("OPTIONAL")));
        assert!(qs.iter().any(|q| q.sparql.contains("regex")));
    }
}
