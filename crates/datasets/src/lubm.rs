//! The LUBM-like university benchmark: schema, generator and the 14 queries.
//!
//! LUBM (the Lehigh University Benchmark) is the de-facto standard RDF
//! benchmark the paper scales to 80 / 800 / 8000 universities. This module
//! generates structurally equivalent data: the same class and property
//! hierarchies (which is what makes Q4–Q6, Q12 and Q13 depend on inferred
//! triples), the same entity naming convention the original queries refer to
//! (`http://www.Department0.University0.edu/...`), and the same
//! constant-vs-increasing solution behaviour across scale factors.
//!
//! The scale factor is the number of universities, exactly as in LUBM.

use crate::BenchmarkQuery;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use turbohom_rdf::{vocab, Dataset, InferenceConfig, InferenceEngine, Term};

/// The univ-bench ontology namespace.
pub const UB: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#";

fn ub(local: &str) -> Term {
    Term::iri(format!("{UB}{local}"))
}

fn university_iri(u: usize) -> Term {
    Term::iri(format!("http://www.University{u}.edu"))
}

fn department_iri(u: usize, d: usize) -> Term {
    Term::iri(format!("http://www.Department{d}.University{u}.edu"))
}

fn entity_iri(u: usize, d: usize, name: &str) -> Term {
    Term::iri(format!("http://www.Department{d}.University{u}.edu/{name}"))
}

/// Generator configuration. The defaults are scaled-down LUBM cardinalities
/// so multi-scale experiment sweeps stay laptop friendly; the ratios between
/// entity kinds follow the original generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LubmConfig {
    /// Scale factor: number of universities (LUBM80 ⇒ 80).
    pub universities: usize,
    /// Departments per university.
    pub departments_per_university: usize,
    /// Full/associate/assistant professors per department.
    pub professors_per_department: usize,
    /// Lecturers per department.
    pub lecturers_per_department: usize,
    /// Undergraduate students per department.
    pub undergraduates_per_department: usize,
    /// Graduate students per department.
    pub graduates_per_department: usize,
    /// Undergraduate courses per department.
    pub courses_per_department: usize,
    /// Graduate courses per department.
    pub graduate_courses_per_department: usize,
    /// Research groups per department.
    pub research_groups_per_department: usize,
    /// Publications per professor.
    pub publications_per_professor: usize,
    /// Emit the triples an OWL reasoner would add (Chair types, hasAlumnus,
    /// transitive subOrganizationOf) — the paper loads "original triples as
    /// well as inferred triples" for LUBM.
    pub with_inference: bool,
    /// Additionally materialize the RDFS closure (type inheritance, property
    /// hierarchy propagation) directly in the generated dataset.
    pub materialize_rdfs: bool,
    /// PRNG seed: identical configs generate identical datasets.
    pub seed: u64,
}

impl Default for LubmConfig {
    fn default() -> Self {
        LubmConfig {
            universities: 1,
            departments_per_university: 3,
            professors_per_department: 6,
            lecturers_per_department: 2,
            undergraduates_per_department: 24,
            graduates_per_department: 10,
            courses_per_department: 8,
            graduate_courses_per_department: 5,
            research_groups_per_department: 2,
            publications_per_professor: 3,
            with_inference: true,
            materialize_rdfs: true,
            seed: 0x5eed_1b03,
        }
    }
}

impl LubmConfig {
    /// A configuration with the given scale factor (number of universities).
    pub fn scale(universities: usize) -> Self {
        LubmConfig {
            universities,
            ..Self::default()
        }
    }
}

/// The LUBM-like data generator.
#[derive(Debug, Clone)]
pub struct LubmGenerator {
    config: LubmConfig,
}

impl LubmGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: LubmConfig) -> Self {
        LubmGenerator { config }
    }

    /// The configuration.
    pub fn config(&self) -> &LubmConfig {
        &self.config
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Dataset {
        let cfg = &self.config;
        let mut ds = Dataset::new();
        self.emit_schema(&mut ds);

        for u in 0..cfg.universities {
            let univ = university_iri(u);
            ds.insert(&univ, &Term::iri(vocab::RDF_TYPE), &ub("University"));
            ds.insert(&univ, &ub("name"), &Term::literal(format!("University{u}")));
            for d in 0..cfg.departments_per_university {
                // Each department gets its own deterministic PRNG stream so
                // that Department0.University0 is byte-identical across scale
                // factors — which is what keeps the "constant solution
                // queries" constant, exactly as in the original generator.
                let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ ((u as u64) << 20) ^ (d as u64));
                self.generate_department(&mut ds, &mut rng, u, d);
            }
        }
        if cfg.materialize_rdfs {
            InferenceEngine::new(InferenceConfig::full()).materialize(&mut ds);
        }
        ds
    }

    /// Emits the class and property hierarchies (the "schema" triples).
    fn emit_schema(&self, ds: &mut Dataset) {
        let sc = Term::iri(vocab::RDFS_SUBCLASSOF);
        let sp = Term::iri(vocab::RDFS_SUBPROPERTYOF);
        for (sub, sup) in [
            ("Employee", "Person"),
            ("Faculty", "Employee"),
            ("Professor", "Faculty"),
            ("FullProfessor", "Professor"),
            ("AssociateProfessor", "Professor"),
            ("AssistantProfessor", "Professor"),
            ("Chair", "Professor"),
            ("Lecturer", "Faculty"),
            ("Student", "Person"),
            ("UndergraduateStudent", "Student"),
            ("GraduateStudent", "Student"),
            ("TeachingAssistant", "Person"),
            ("GraduateCourse", "Course"),
            ("University", "Organization"),
            ("Department", "Organization"),
            ("ResearchGroup", "Organization"),
        ] {
            ds.insert(&ub(sub), &sc, &ub(sup));
        }
        for (sub, sup) in [
            ("headOf", "worksFor"),
            ("worksFor", "memberOf"),
            ("undergraduateDegreeFrom", "degreeFrom"),
            ("mastersDegreeFrom", "degreeFrom"),
            ("doctoralDegreeFrom", "degreeFrom"),
        ] {
            ds.insert(&ub(sub), &sp, &ub(sup));
        }
    }

    #[allow(clippy::too_many_lines)]
    fn generate_department(&self, ds: &mut Dataset, rng: &mut ChaCha8Rng, u: usize, d: usize) {
        let cfg = &self.config;
        let rdf_type = Term::iri(vocab::RDF_TYPE);
        let univ = university_iri(u);
        let dept = department_iri(u, d);
        ds.insert(&dept, &rdf_type, &ub("Department"));
        ds.insert(&dept, &ub("subOrganizationOf"), &univ);
        ds.insert(&dept, &ub("name"), &Term::literal(format!("Department{d}")));

        // Courses.
        let courses: Vec<Term> = (0..cfg.courses_per_department)
            .map(|c| entity_iri(u, d, &format!("Course{c}")))
            .collect();
        for c in &courses {
            ds.insert(c, &rdf_type, &ub("Course"));
        }
        let grad_courses: Vec<Term> = (0..cfg.graduate_courses_per_department)
            .map(|c| entity_iri(u, d, &format!("GraduateCourse{c}")))
            .collect();
        for c in &grad_courses {
            ds.insert(c, &rdf_type, &ub("GraduateCourse"));
        }

        // Research groups: sub-organizations of the department (and of the
        // university via the transitive closure, emitted in inference mode).
        for g in 0..cfg.research_groups_per_department {
            let group = entity_iri(u, d, &format!("ResearchGroup{g}"));
            ds.insert(&group, &rdf_type, &ub("ResearchGroup"));
            ds.insert(&group, &ub("subOrganizationOf"), &dept);
            if cfg.with_inference {
                ds.insert(&group, &ub("subOrganizationOf"), &univ);
            }
        }

        // Faculty.
        let professor_kinds = ["FullProfessor", "AssociateProfessor", "AssistantProfessor"];
        let mut professors: Vec<Term> = Vec::new();
        let mut taught_by: Vec<(Term, Term)> = Vec::new(); // (course, teacher)
        for p in 0..cfg.professors_per_department {
            let kind = professor_kinds[p % professor_kinds.len()];
            let index = p / professor_kinds.len();
            let prof = entity_iri(u, d, &format!("{kind}{index}"));
            ds.insert(&prof, &rdf_type, &ub(kind));
            ds.insert(&prof, &ub("worksFor"), &dept);
            self.emit_person_details(ds, rng, &prof, u);
            ds.insert(
                &prof,
                &ub("researchInterest"),
                &Term::literal(format!("Research{}", rng.gen_range(0..20))),
            );
            // Every professor teaches one undergraduate and one graduate course.
            let c = &courses[p % courses.len()];
            ds.insert(&prof, &ub("teacherOf"), c);
            taught_by.push((c.clone(), prof.clone()));
            if !grad_courses.is_empty() {
                let gc = &grad_courses[p % grad_courses.len()];
                ds.insert(&prof, &ub("teacherOf"), gc);
                taught_by.push((gc.clone(), prof.clone()));
            }
            // Publications.
            for k in 0..cfg.publications_per_professor {
                let publication = entity_iri(u, d, &format!("Publication{p}_{k}"));
                ds.insert(&publication, &rdf_type, &ub("Publication"));
                ds.insert(&publication, &ub("publicationAuthor"), &prof);
            }
            professors.push(prof);
        }
        // The first full professor is the head of the department.
        if let Some(head) = professors.first() {
            ds.insert(head, &ub("headOf"), &dept);
            if cfg.with_inference {
                ds.insert(head, &rdf_type, &ub("Chair"));
            }
        }
        for l in 0..cfg.lecturers_per_department {
            let lecturer = entity_iri(u, d, &format!("Lecturer{l}"));
            ds.insert(&lecturer, &rdf_type, &ub("Lecturer"));
            ds.insert(&lecturer, &ub("worksFor"), &dept);
            self.emit_person_details(ds, rng, &lecturer, u);
            let c = &courses[(cfg.professors_per_department + l) % courses.len()];
            ds.insert(&lecturer, &ub("teacherOf"), c);
            taught_by.push((c.clone(), lecturer.clone()));
        }

        // Undergraduate students.
        for s in 0..cfg.undergraduates_per_department {
            let student = entity_iri(u, d, &format!("UndergraduateStudent{s}"));
            ds.insert(&student, &rdf_type, &ub("UndergraduateStudent"));
            ds.insert(&student, &ub("memberOf"), &dept);
            self.emit_person_details(ds, rng, &student, u);
            for _ in 0..2 {
                let c = &courses[rng.gen_range(0..courses.len())];
                ds.insert(&student, &ub("takesCourse"), c);
            }
            // One in five undergraduates has an advisor.
            if rng.gen_ratio(1, 5) {
                let advisor = &professors[rng.gen_range(0..professors.len())];
                ds.insert(&student, &ub("advisor"), advisor);
            }
        }

        // Graduate students.
        for s in 0..cfg.graduates_per_department {
            let student = entity_iri(u, d, &format!("GraduateStudent{s}"));
            ds.insert(&student, &rdf_type, &ub("GraduateStudent"));
            ds.insert(&student, &ub("memberOf"), &dept);
            self.emit_person_details(ds, rng, &student, u);
            // Undergraduate degree: 25 % of graduate students stay at their
            // own university (these are the Q2 solutions, growing with the
            // scale factor), another 25 % come from the "flagship"
            // University0 (which makes the Q13 alumni count grow), and the
            // rest pick a uniformly random university. Both draws consume a
            // fixed number of PRNG words so the department content stays
            // identical across scale factors.
            let choice = rng.next_u64() % 100;
            let uniform = (rng.next_u64() % cfg.universities.max(1) as u64) as usize;
            let degree_univ = if choice < 25 {
                u
            } else if choice < 50 {
                0
            } else {
                uniform
            };
            ds.insert(
                &student,
                &ub("undergraduateDegreeFrom"),
                &university_iri(degree_univ),
            );
            if cfg.with_inference {
                ds.insert(&university_iri(degree_univ), &ub("hasAlumnus"), &student);
            }
            // Every graduate student takes an "assigned" graduate course,
            // spreading students across courses the way the original
            // generator does — this keeps every graduate course populated,
            // so Q1's solution set is nonempty and constant across scales.
            if !grad_courses.is_empty() {
                ds.insert(
                    &student,
                    &ub("takesCourse"),
                    &grad_courses[s % grad_courses.len()],
                );
            }
            // Advisor and courses; with probability ~1/3 the student takes a
            // course taught by the advisor (which is what gives Q9 solutions).
            let advisor = &professors[rng.gen_range(0..professors.len())];
            ds.insert(&student, &ub("advisor"), advisor);
            let advisor_courses: Vec<&Term> = taught_by
                .iter()
                .filter(|(_, t)| t == advisor)
                .map(|(c, _)| c)
                .collect();
            for _ in 0..2 {
                let course = if !advisor_courses.is_empty() && rng.gen_ratio(1, 3) {
                    Some(advisor_courses[rng.gen_range(0..advisor_courses.len())].clone())
                } else if !grad_courses.is_empty() {
                    Some(grad_courses[rng.gen_range(0..grad_courses.len())].clone())
                } else {
                    None
                };
                if let Some(course) = course {
                    ds.insert(&student, &ub("takesCourse"), &course);
                }
            }
            // One in four graduate students is a teaching assistant.
            if rng.gen_ratio(1, 4) {
                ds.insert(&student, &rdf_type, &ub("TeachingAssistant"));
                let c = &courses[rng.gen_range(0..courses.len())];
                ds.insert(&student, &ub("teachingAssistantOf"), c);
            }
        }
    }

    /// Name, email, telephone and degree provenance common to all persons.
    fn emit_person_details(&self, ds: &mut Dataset, rng: &mut ChaCha8Rng, person: &Term, u: usize) {
        let local = match person {
            Term::Iri(iri) => iri.rsplit('/').next().unwrap_or("person").to_string(),
            _ => "person".to_string(),
        };
        ds.insert(person, &ub("name"), &Term::literal(local.clone()));
        ds.insert(
            person,
            &ub("emailAddress"),
            &Term::literal(format!("{local}@University{u}.edu")),
        );
        ds.insert(
            person,
            &ub("telephone"),
            &Term::literal(format!(
                "{:03}-{:03}-{:04}",
                rng.gen_range(100..999),
                rng.gen_range(100..999),
                rng.gen_range(1000..9999)
            )),
        );
    }
}

/// The 14 LUBM benchmark queries, adapted verbatim to the univ-bench
/// namespace and the generator's entity naming convention.
pub fn queries() -> Vec<BenchmarkQuery> {
    let prologue = format!(
        "PREFIX rdf: <{}>\nPREFIX ub: <{UB}>\n",
        "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
    );
    let q = |id: &str, desc: &str, body: &str| {
        BenchmarkQuery::new(id, desc, format!("{prologue}{body}"))
    };
    vec![
        q(
            "Q1",
            "Graduate students taking a specific graduate course",
            "SELECT ?X WHERE { ?X rdf:type ub:GraduateStudent . \
             ?X ub:takesCourse <http://www.Department0.University0.edu/GraduateCourse0> . }",
        ),
        q(
            "Q2",
            "Graduate students with an undergraduate degree from the university their department belongs to",
            "SELECT ?X ?Y ?Z WHERE { ?X rdf:type ub:GraduateStudent . ?Y rdf:type ub:University . \
             ?Z rdf:type ub:Department . ?X ub:memberOf ?Z . ?Z ub:subOrganizationOf ?Y . \
             ?X ub:undergraduateDegreeFrom ?Y . }",
        ),
        q(
            "Q3",
            "Publications of a specific assistant professor",
            "SELECT ?X WHERE { ?X rdf:type ub:Publication . \
             ?X ub:publicationAuthor <http://www.Department0.University0.edu/AssistantProfessor0> . }",
        ),
        q(
            "Q4",
            "Professors working for a specific department with contact details",
            "SELECT ?X ?Y1 ?Y2 ?Y3 WHERE { ?X rdf:type ub:Professor . \
             ?X ub:worksFor <http://www.Department0.University0.edu> . \
             ?X ub:name ?Y1 . ?X ub:emailAddress ?Y2 . ?X ub:telephone ?Y3 . }",
        ),
        q(
            "Q5",
            "Persons that are members of a specific department",
            "SELECT ?X WHERE { ?X rdf:type ub:Person . \
             ?X ub:memberOf <http://www.Department0.University0.edu> . }",
        ),
        q(
            "Q6",
            "All students",
            "SELECT ?X WHERE { ?X rdf:type ub:Student . }",
        ),
        q(
            "Q7",
            "Students taking courses taught by a specific associate professor",
            "SELECT ?X ?Y WHERE { ?X rdf:type ub:Student . ?Y rdf:type ub:Course . \
             ?X ub:takesCourse ?Y . \
             <http://www.Department0.University0.edu/AssociateProfessor0> ub:teacherOf ?Y . }",
        ),
        q(
            "Q8",
            "Students that are members of departments of a specific university, with e-mail",
            "SELECT ?X ?Y ?Z WHERE { ?X rdf:type ub:Student . ?Y rdf:type ub:Department . \
             ?X ub:memberOf ?Y . ?Y ub:subOrganizationOf <http://www.University0.edu> . \
             ?X ub:emailAddress ?Z . }",
        ),
        q(
            "Q9",
            "Students taking a course taught by their advisor",
            "SELECT ?X ?Y ?Z WHERE { ?X rdf:type ub:Student . ?Y rdf:type ub:Faculty . \
             ?Z rdf:type ub:Course . ?X ub:advisor ?Y . ?Y ub:teacherOf ?Z . ?X ub:takesCourse ?Z . }",
        ),
        q(
            "Q10",
            "Students taking a specific graduate course",
            "SELECT ?X WHERE { ?X rdf:type ub:Student . \
             ?X ub:takesCourse <http://www.Department0.University0.edu/GraduateCourse0> . }",
        ),
        q(
            "Q11",
            "Research groups of a specific university",
            "SELECT ?X WHERE { ?X rdf:type ub:ResearchGroup . \
             ?X ub:subOrganizationOf <http://www.University0.edu> . }",
        ),
        q(
            "Q12",
            "Department chairs of a specific university",
            "SELECT ?X ?Y WHERE { ?X rdf:type ub:Chair . ?Y rdf:type ub:Department . \
             ?X ub:worksFor ?Y . ?Y ub:subOrganizationOf <http://www.University0.edu> . }",
        ),
        q(
            "Q13",
            "Alumni of a specific university",
            "SELECT ?X WHERE { ?X rdf:type ub:Person . \
             <http://www.University0.edu> ub:hasAlumnus ?X . }",
        ),
        q(
            "Q14",
            "All undergraduate students",
            "SELECT ?X WHERE { ?X rdf:type ub:UndergraduateStudent . }",
        ),
    ]
}

/// The ids of the LUBM queries whose solution count stays constant as the
/// scale factor grows (the paper's "constant solution queries").
pub fn constant_solution_queries() -> Vec<&'static str> {
    vec!["Q1", "Q3", "Q4", "Q5", "Q7", "Q8", "Q10", "Q11", "Q12"]
}

/// The ids of the LUBM queries whose solution count grows with the scale
/// factor (the paper's "increasing solution queries").
pub fn increasing_solution_queries() -> Vec<&'static str> {
    vec!["Q2", "Q6", "Q9", "Q13", "Q14"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = LubmGenerator::new(LubmConfig::scale(1)).generate();
        let b = LubmGenerator::new(LubmConfig::scale(1)).generate();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.dictionary.len(), b.dictionary.len());
    }

    #[test]
    fn triple_count_scales_roughly_linearly() {
        let one = LubmGenerator::new(LubmConfig::scale(1)).generate().len();
        let four = LubmGenerator::new(LubmConfig::scale(4)).generate().len();
        assert!(
            four > 3 * one,
            "scale 4 ({four}) should be ≈4× scale 1 ({one})"
        );
        assert!(four < 5 * one);
    }

    #[test]
    fn key_entities_exist() {
        let ds = LubmGenerator::new(LubmConfig::scale(2)).generate();
        for iri in [
            "http://www.University0.edu",
            "http://www.University1.edu",
            "http://www.Department0.University0.edu",
            "http://www.Department0.University0.edu/GraduateCourse0",
            "http://www.Department0.University0.edu/AssistantProfessor0",
            "http://www.Department0.University0.edu/AssociateProfessor0",
            "http://www.Department0.University0.edu/FullProfessor0",
        ] {
            assert!(ds.dictionary.id_of_iri(iri).is_some(), "missing {iri}");
        }
    }

    #[test]
    fn rdfs_materialization_adds_superclass_types() {
        let ds = LubmGenerator::new(LubmConfig::scale(1)).generate();
        let grad = ds
            .dictionary
            .id_of_iri("http://www.Department0.University0.edu/GraduateStudent0")
            .unwrap();
        let student = ds.dictionary.id_of_iri(&format!("{UB}Student")).unwrap();
        let person = ds.dictionary.id_of_iri(&format!("{UB}Person")).unwrap();
        let rdf_type = ds.rdf_type_id().unwrap();
        assert!(ds
            .triples
            .contains(&turbohom_rdf::Triple::new(grad, rdf_type, student)));
        assert!(ds
            .triples
            .contains(&turbohom_rdf::Triple::new(grad, rdf_type, person)));
    }

    #[test]
    fn property_hierarchy_is_materialized() {
        let ds = LubmGenerator::new(LubmConfig::scale(1)).generate();
        // The department head worksFor and (via propagation) memberOf it.
        let head = ds
            .dictionary
            .id_of_iri("http://www.Department0.University0.edu/FullProfessor0")
            .unwrap();
        let dept = ds
            .dictionary
            .id_of_iri("http://www.Department0.University0.edu")
            .unwrap();
        let member_of = ds.dictionary.id_of_iri(&format!("{UB}memberOf")).unwrap();
        assert!(ds
            .triples
            .contains(&turbohom_rdf::Triple::new(head, member_of, dept)));
    }

    #[test]
    fn without_inference_extras_are_absent() {
        let cfg = LubmConfig {
            with_inference: false,
            materialize_rdfs: false,
            ..LubmConfig::scale(1)
        };
        let ds = LubmGenerator::new(cfg).generate();
        assert!(ds
            .dictionary
            .id_of_iri(&format!("{UB}hasAlumnus"))
            .is_none());
        assert!(ds.dictionary.id_of_iri(&format!("{UB}Chair")).is_some()); // schema triple only
        let chair = ds.dictionary.id_of_iri(&format!("{UB}Chair")).unwrap();
        let rdf_type = ds.rdf_type_id().unwrap();
        assert_eq!(
            ds.triples
                .iter()
                .filter(|t| t.p == rdf_type && t.o == chair)
                .count(),
            0
        );
    }

    #[test]
    fn queries_are_fourteen_and_classified() {
        let qs = queries();
        assert_eq!(qs.len(), 14);
        let ids: Vec<&str> = qs.iter().map(|q| q.id.as_str()).collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(*id, format!("Q{}", i + 1));
        }
        let constant = constant_solution_queries();
        let increasing = increasing_solution_queries();
        assert_eq!(constant.len() + increasing.len(), 14);
        for id in ids {
            assert!(constant.contains(&id) ^ increasing.contains(&id));
        }
    }
}
