//! The paper's worked examples as tiny datasets.
//!
//! These power the unit/integration tests and the matching-order
//! micro-benchmark:
//!
//! * [`figure1`] — the query/data pair used to define subgraph isomorphism
//!   vs e-graph homomorphism (1 isomorphism, 3 homomorphisms).
//! * [`figure2`] — the matching-order example: a hub vertex fanning out to
//!   few X, many Y and very few Z vertices, where a bad matching order costs
//!   `1 + |Y|·|X|·|Z|` comparisons and a good one costs `1 + |Z|·|X|`.
//! * [`figure3`] — the running university example used to illustrate the
//!   direct and type-aware transformations.

use crate::BenchmarkQuery;
use turbohom_rdf::{vocab, Dataset, Term};

/// Example namespace.
pub const EX: &str = "http://example.org/";

fn ex(local: &str) -> Term {
    Term::iri(format!("{EX}{local}"))
}

/// The data graph of paper Figure 1 (6 vertices, 7 edges, labels A–E).
pub fn figure1() -> Dataset {
    let mut ds = Dataset::new();
    let types: [(&str, &[&str]); 6] = [
        ("v0", &["A"]),
        ("v1", &["B"]),
        ("v2", &["A", "D"]),
        ("v3", &["B"]),
        ("v4", &["C"]),
        ("v5", &["C", "E"]),
    ];
    for (v, ts) in types {
        for t in ts {
            ds.insert(&ex(v), &Term::iri(vocab::RDF_TYPE), &ex(t));
        }
    }
    for (s, p, o) in [
        ("v0", "a", "v1"),
        ("v0", "b", "v4"),
        ("v2", "a", "v1"),
        ("v2", "a", "v3"),
        ("v3", "c", "v4"),
        ("v3", "c", "v5"),
        ("v2", "b", "v5"),
    ] {
        ds.insert(&ex(s), &ex(p), &ex(o));
    }
    ds
}

/// The query of Figure 1 (q1): under isomorphism it has exactly one match in
/// [`figure1`], under e-graph homomorphism it has three.
pub fn figure1_query() -> BenchmarkQuery {
    BenchmarkQuery::new(
        "fig1",
        "The worked example query q1 of Figure 1",
        format!(
            "PREFIX rdf: <{}>\nPREFIX ex: <{EX}>\n\
             SELECT * WHERE {{ \
               ?u0 rdf:type ex:A . ?u2 rdf:type ex:A . ?u3 rdf:type ex:B . ?u4 rdf:type ex:C . \
               ?u0 ex:a ?u1 . ?u2 ex:a ?u1 . ?u2 ex:a ?u3 . ?u3 ex:c ?u4 . ?u0 ex:b ?u4 . }}",
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
        ),
    )
}

/// The data graph of Figure 2b, scaled by `xs`/`ys`/`zs`: one hub vertex of
/// type A connected to `xs` X vertices, `ys` Y vertices and `zs` Z vertices
/// (the paper uses 10 / 10 000 / 5).
pub fn figure2(xs: usize, ys: usize, zs: usize) -> Dataset {
    let mut ds = Dataset::new();
    ds.insert(&ex("a0"), &Term::iri(vocab::RDF_TYPE), &ex("A"));
    let mut add = |class: &str, count: usize| {
        for i in 0..count {
            let v = ex(&format!("{}{i}", class.to_lowercase()));
            ds.insert(&v, &Term::iri(vocab::RDF_TYPE), &ex(class));
            ds.insert(&ex("a0"), &ex("edge"), &v);
        }
    };
    add("X", xs);
    add("Y", ys);
    add("Z", zs);
    ds
}

/// The star query of Figure 2a over [`figure2`] data.
pub fn figure2_query() -> BenchmarkQuery {
    BenchmarkQuery::new(
        "fig2",
        "The matching-order example query q2 of Figure 2",
        format!(
            "PREFIX rdf: <{}>\nPREFIX ex: <{EX}>\n\
             SELECT * WHERE {{ \
               ?a rdf:type ex:A . ?x rdf:type ex:X . ?y rdf:type ex:Y . ?z rdf:type ex:Z . \
               ?a ex:edge ?x . ?a ex:edge ?y . ?a ex:edge ?z . }}",
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
        ),
    )
}

/// The RDF graph of Figure 3 (the running university example used to
/// illustrate the transformations).
pub fn figure3() -> Dataset {
    let mut ds = Dataset::new();
    ds.insert(
        &ex("student1"),
        &Term::iri(vocab::RDF_TYPE),
        &ex("GraduateStudent"),
    );
    ds.insert(
        &ex("GraduateStudent"),
        &Term::iri(vocab::RDFS_SUBCLASSOF),
        &ex("Student"),
    );
    ds.insert(&ex("univ1"), &Term::iri(vocab::RDF_TYPE), &ex("University"));
    ds.insert(
        &ex("dept1.univ1"),
        &Term::iri(vocab::RDF_TYPE),
        &ex("Department"),
    );
    ds.insert(
        &ex("student1"),
        &ex("undergraduateDegreeFrom"),
        &ex("univ1"),
    );
    ds.insert(&ex("student1"), &ex("memberOf"), &ex("dept1.univ1"));
    ds.insert(&ex("dept1.univ1"), &ex("subOrganizationOf"), &ex("univ1"));
    ds.insert(
        &ex("student1"),
        &ex("telephone"),
        &Term::literal("012-345-6789"),
    );
    ds.insert(
        &ex("student1"),
        &ex("emailAddress"),
        &Term::literal("john@dept1.univ1.edu"),
    );
    ds
}

/// The triangle query of Figure 5a / Figure 8 over the Figure 3 data.
pub fn figure3_query() -> BenchmarkQuery {
    BenchmarkQuery::new(
        "fig5",
        "The SPARQL query of Figure 5a (student / university / department triangle)",
        format!(
            "PREFIX rdf: <{}>\nPREFIX ex: <{EX}>\n\
             SELECT ?X ?Y ?Z WHERE {{ \
               ?X rdf:type ex:Student . ?Y rdf:type ex:University . ?Z rdf:type ex:Department . \
               ?X ex:undergraduateDegreeFrom ?Y . ?X ex:memberOf ?Z . ?Z ex:subOrganizationOf ?Y . }}",
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_has_expected_size() {
        let ds = figure1();
        // 8 type triples + 7 edges.
        assert_eq!(ds.len(), 15);
    }

    #[test]
    fn figure2_scales_with_parameters() {
        let ds = figure2(10, 100, 5);
        // 1 + (10+100+5) type triples + (10+100+5) edges.
        assert_eq!(ds.len(), 1 + 115 * 2);
    }

    #[test]
    fn figure3_matches_paper_triple_count() {
        assert_eq!(figure3().len(), 9);
    }

    #[test]
    fn queries_parse() {
        for q in [figure1_query(), figure2_query(), figure3_query()] {
            assert!(turbohom_sparql::parse_query(&q.sparql).is_ok(), "{}", q.id);
        }
    }
}
