//! A YAGO-like heterogeneous fact dataset and the 8-query workload.
//!
//! YAGO combines Wikipedia-derived entities (people, cities, countries,
//! movies, organizations, prizes) with WordNet-derived classes. The paper
//! uses the RDF-3X YAGO query set, whose queries are relational patterns
//! with only a few type constraints ("the YAGO queries have only a few
//! variables which are set to types", Section 7.2). This generator
//! reproduces the *shape*: a heterogeneous schema, skewed degree
//! distribution (popular cities/prizes), and a query set of the same
//! flavour — chains and small cycles over people, places and works.

use crate::BenchmarkQuery;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use turbohom_rdf::{vocab, Dataset, Term};

/// Resource namespace.
pub const Y: &str = "http://yago.example.org/resource/";

fn res(local: &str) -> Term {
    Term::iri(format!("{Y}{local}"))
}

/// Generator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct YagoConfig {
    /// Scale factor: the number of persons is `200 × scale`.
    pub scale: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for YagoConfig {
    fn default() -> Self {
        YagoConfig {
            scale: 1,
            seed: 0x9a60_5eed,
        }
    }
}

impl YagoConfig {
    /// A configuration with the given scale factor.
    pub fn scale(scale: usize) -> Self {
        YagoConfig {
            scale,
            ..Self::default()
        }
    }
}

/// The YAGO-like data generator.
#[derive(Debug, Clone)]
pub struct YagoGenerator {
    config: YagoConfig,
}

impl YagoGenerator {
    /// Creates a generator.
    pub fn new(config: YagoConfig) -> Self {
        YagoGenerator { config }
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Dataset {
        let cfg = &self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut ds = Dataset::new();
        let rdf_type = Term::iri(vocab::RDF_TYPE);

        // Class hierarchy (WordNet-flavoured).
        for (sub, sup) in [
            ("Scientist", "Person"),
            ("Actor", "Person"),
            ("Politician", "Person"),
            ("Writer", "Person"),
            ("City", "Location"),
            ("Country", "Location"),
            ("Movie", "Work"),
            ("University", "Organization"),
        ] {
            ds.insert(&res(sub), &Term::iri(vocab::RDFS_SUBCLASSOF), &res(sup));
        }

        let countries = 8usize.max(cfg.scale);
        let cities = 20 * cfg.scale.max(1);
        let universities = 6 * cfg.scale.max(1);
        let movies = 40 * cfg.scale.max(1);
        let prizes = 10;
        let persons = 200 * cfg.scale.max(1);

        for c in 0..countries {
            let country = res(&format!("Country_{c}"));
            ds.insert(&country, &rdf_type, &res("Country"));
            ds.insert(
                &country,
                &res("hasCapital"),
                &res(&format!("City_{c}")), // the first `countries` cities are capitals
            );
        }
        for c in 0..cities {
            let city = res(&format!("City_{c}"));
            ds.insert(&city, &rdf_type, &res("City"));
            ds.insert(
                &city,
                &res("locatedIn"),
                &res(&format!("Country_{}", c % countries)),
            );
        }
        for u in 0..universities {
            let uni = res(&format!("University_{u}"));
            ds.insert(&uni, &rdf_type, &res("University"));
            ds.insert(
                &uni,
                &res("locatedIn"),
                &res(&format!("City_{}", u % cities)),
            );
        }
        for p in 0..prizes {
            ds.insert(&res(&format!("Prize_{p}")), &rdf_type, &res("Prize"));
        }
        for m in 0..movies {
            let movie = res(&format!("Movie_{m}"));
            ds.insert(&movie, &rdf_type, &res("Movie"));
        }

        let professions = ["Scientist", "Actor", "Politician", "Writer"];
        for p in 0..persons {
            let person = res(&format!("Person_{p}"));
            let profession = professions[p % professions.len()];
            ds.insert(&person, &rdf_type, &res(profession));
            ds.insert(
                &person,
                &res("label"),
                &Term::literal(format!("person number {p}")),
            );
            // Birth place follows a skewed distribution: low-numbered cities
            // are far more popular (Wikipedia-style popularity skew).
            let city = skewed_index(&mut rng, cities);
            ds.insert(&person, &res("bornIn"), &res(&format!("City_{city}")));
            ds.insert(
                &person,
                &res("isCitizenOf"),
                &res(&format!("Country_{}", city % countries)),
            );
            if rng.gen_ratio(1, 3) {
                ds.insert(
                    &person,
                    &res("graduatedFrom"),
                    &res(&format!("University_{}", rng.gen_range(0..universities))),
                );
            }
            if rng.gen_ratio(1, 4) {
                ds.insert(
                    &person,
                    &res("hasWonPrize"),
                    &res(&format!("Prize_{}", skewed_index(&mut rng, prizes))),
                );
            }
            if rng.gen_ratio(1, 5) {
                let spouse = rng.gen_range(0..persons);
                if spouse != p {
                    ds.insert(
                        &person,
                        &res("marriedTo"),
                        &res(&format!("Person_{spouse}")),
                    );
                }
            }
            match profession {
                "Actor" => {
                    for _ in 0..rng.gen_range(1..4) {
                        ds.insert(
                            &person,
                            &res("actedIn"),
                            &res(&format!("Movie_{}", rng.gen_range(0..movies))),
                        );
                    }
                }
                "Writer" if rng.gen_ratio(1, 2) => {
                    ds.insert(
                        &person,
                        &res("directed"),
                        &res(&format!("Movie_{}", rng.gen_range(0..movies))),
                    );
                }
                _ => {}
            }
            if rng.gen_ratio(1, 6) {
                ds.insert(
                    &person,
                    &res("diedIn"),
                    &res(&format!("City_{}", skewed_index(&mut rng, cities))),
                );
            }
        }
        ds
    }
}

/// Popularity-skewed index in `0..n` (roughly Zipf-flavoured: half the draws
/// land in the first eighth of the range).
fn skewed_index(rng: &mut ChaCha8Rng, n: usize) -> usize {
    let n = n.max(1);
    if rng.gen_bool(0.5) {
        rng.gen_range(0..n.div_ceil(8).max(1))
    } else {
        rng.gen_range(0..n)
    }
}

/// The 8 YAGO-style benchmark queries.
pub fn queries() -> Vec<BenchmarkQuery> {
    let prologue =
        format!("PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\nPREFIX y: <{Y}>\n");
    let q = |id: &str, desc: &str, body: &str| {
        BenchmarkQuery::new(id, desc, format!("{prologue}{body}"))
    };
    vec![
        q(
            "Q1",
            "Scientists born in a city of a given country who won a prize",
            "SELECT ?p ?city ?prize WHERE { ?p rdf:type y:Scientist . ?p y:bornIn ?city . \
             ?city y:locatedIn y:Country_0 . ?p y:hasWonPrize ?prize . }",
        ),
        q(
            "Q2",
            "Married couples born in the same city",
            "SELECT ?a ?b ?c WHERE { ?a y:marriedTo ?b . ?a y:bornIn ?c . ?b y:bornIn ?c . }",
        ),
        q(
            "Q3",
            "Actors in movies directed by writers born in a specific city",
            "SELECT ?actor ?movie ?director WHERE { ?actor rdf:type y:Actor . \
             ?actor y:actedIn ?movie . ?director y:directed ?movie . \
             ?director y:bornIn y:City_1 . }",
        ),
        q(
            "Q4",
            "People who graduated from a university located in the capital of their country of citizenship",
            "SELECT ?p ?u ?city WHERE { ?p y:graduatedFrom ?u . ?u y:locatedIn ?city . \
             ?p y:isCitizenOf ?country . ?country y:hasCapital ?city . }",
        ),
        q(
            "Q5",
            "Prize-winning alumni of a specific university",
            "SELECT ?p ?prize WHERE { ?p y:graduatedFrom y:University_0 . \
             ?p y:hasWonPrize ?prize . }",
        ),
        q(
            "Q6",
            "Politicians who are citizens of a given country, with birth city",
            "SELECT ?p ?city WHERE { ?p rdf:type y:Politician . \
             ?p y:isCitizenOf y:Country_2 . ?p y:bornIn ?city . }",
        ),
        q(
            "Q7",
            "Pairs of actors who acted in the same movie",
            "SELECT ?a ?b ?m WHERE { ?a rdf:type y:Actor . ?b rdf:type y:Actor . \
             ?a y:actedIn ?m . ?b y:actedIn ?m . }",
        ),
        q(
            "Q8",
            "People born in a given city who died in a city of the same country",
            "SELECT ?p ?d WHERE { ?p y:bornIn y:City_0 . ?p y:diedIn ?d . \
             ?d y:locatedIn ?country . y:City_0 y:locatedIn ?country . }",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = YagoGenerator::new(YagoConfig::scale(1)).generate();
        let b = YagoGenerator::new(YagoConfig::scale(1)).generate();
        assert_eq!(a.len(), b.len());
        assert!(a.len() > 1000);
    }

    #[test]
    fn anchor_entities_exist() {
        let ds = YagoGenerator::new(YagoConfig::scale(1)).generate();
        for iri in ["Country_0", "City_0", "City_1", "University_0", "Country_2"] {
            assert!(
                ds.dictionary.id_of_iri(&format!("{Y}{iri}")).is_some(),
                "missing {iri}"
            );
        }
    }

    #[test]
    fn schema_is_heterogeneous() {
        let ds = YagoGenerator::new(YagoConfig::scale(1)).generate();
        assert!(ds.predicate_ids().len() >= 12);
        assert_eq!(queries().len(), 8);
    }
}
