//! Zero-copy storage substrate for the TurboHOM++ reproduction.
//!
//! This crate is the foundation of the pluggable storage layer:
//!
//! * [`Pod`] — an unsafe marker trait for plain-old-data types whose byte
//!   representation is valid for any bit pattern, so slices of them can be
//!   reinterpreted directly from a mapped file.
//! * [`ByteStore`] — an immutable byte region, either owned on the heap
//!   (8-byte aligned) or memory-mapped through a minimal `mmap(2)` FFI shim
//!   (no external crates; the build environment is offline).
//! * [`FlatVec`] — the workhorse of the refactor: a `Vec<T>`-or-view enum
//!   that derefs to `&[T]`, letting every hot-path structure (CSR adjacency,
//!   dictionary offsets, indexes) be backed either by owned memory or by a
//!   slice of a mapped snapshot without changing its accessors.
//! * [`FlatCsr`] — an offsets-plus-data compressed sparse row layout over
//!   two `FlatVec`s, replacing `Vec<Vec<T>>` in the indexes.
//! * [`SnapshotWriter`] / [`Snapshot`] / [`SectionCursor`] — the versioned,
//!   checksummed section file format documented in `docs/STORAGE.md`.

pub mod bytes;
pub mod flat;
pub mod pod;
pub mod snapshot;

pub use bytes::ByteStore;
pub use flat::{FlatCsr, FlatVec};
pub use pod::Pod;
pub use snapshot::{SectionCursor, Snapshot, SnapshotError, SnapshotWriter};
