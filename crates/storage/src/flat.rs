//! `FlatVec` and `FlatCsr`: owned-or-view flat arrays.

use crate::bytes::ByteStore;
use crate::pod::Pod;
use crate::snapshot::SnapshotError;
use std::ops::Deref;
use std::sync::Arc;

enum Repr<T: Pod> {
    Owned(Vec<T>),
    View {
        store: Arc<ByteStore>,
        /// Byte offset into the store; always a multiple of `align_of::<T>()`.
        offset: usize,
        /// Number of `T` elements.
        len: usize,
    },
}

/// A flat array of Pod elements, either heap-owned or a zero-copy view into
/// a [`ByteStore`] (typically a mapped snapshot). Derefs to `&[T]`, so all
/// read paths are identical for both representations.
pub struct FlatVec<T: Pod> {
    repr: Repr<T>,
}

impl<T: Pod> FlatVec<T> {
    /// Creates an empty owned vector.
    pub fn new() -> Self {
        FlatVec {
            repr: Repr::Owned(Vec::new()),
        }
    }

    /// Wraps a view over `len` elements starting `offset` bytes into `store`.
    ///
    /// Used by the snapshot reader; callers must have validated bounds and
    /// alignment (see [`Snapshot::section`](crate::Snapshot)).
    pub(crate) fn view(store: Arc<ByteStore>, offset: usize, len: usize) -> Self {
        debug_assert!(offset + len * std::mem::size_of::<T>() <= store.len());
        debug_assert_eq!(
            (store.bytes().as_ptr() as usize + offset) % std::mem::align_of::<T>(),
            0
        );
        FlatVec {
            repr: Repr::View { store, offset, len },
        }
    }

    /// Returns `true` if this is a zero-copy view (not owned memory).
    pub fn is_view(&self) -> bool {
        matches!(self.repr, Repr::View { .. })
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Owned(v) => v.as_slice(),
            Repr::View { store, offset, len } => {
                // Safety: bounds and alignment were validated at view
                // construction; T is Pod so any byte pattern is valid.
                unsafe {
                    std::slice::from_raw_parts(
                        store.bytes().as_ptr().add(*offset) as *const T,
                        *len,
                    )
                }
            }
        }
    }

    /// Mutable access as an owned `Vec`, converting a view into owned memory
    /// first (copy-on-write).
    pub fn to_mut(&mut self) -> &mut Vec<T> {
        if let Repr::View { .. } = self.repr {
            self.repr = Repr::Owned(self.as_slice().to_vec());
        }
        match &mut self.repr {
            Repr::Owned(v) => v,
            Repr::View { .. } => unreachable!("converted to owned above"),
        }
    }
}

impl<T: Pod> Default for FlatVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Pod> From<Vec<T>> for FlatVec<T> {
    fn from(v: Vec<T>) -> Self {
        FlatVec {
            repr: Repr::Owned(v),
        }
    }
}

impl<T: Pod> Deref for FlatVec<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> Clone for FlatVec<T> {
    fn clone(&self) -> Self {
        match &self.repr {
            Repr::Owned(v) => FlatVec {
                repr: Repr::Owned(v.clone()),
            },
            Repr::View { store, offset, len } => FlatVec {
                repr: Repr::View {
                    store: Arc::clone(store),
                    offset: *offset,
                    len: *len,
                },
            },
        }
    }
}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for FlatVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Pod + PartialEq> PartialEq for FlatVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Pod + Eq> Eq for FlatVec<T> {}

impl<'a, T: Pod> IntoIterator for &'a FlatVec<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Compressed sparse rows over two [`FlatVec`]s: `offsets[i]..offsets[i+1]`
/// is row `i` of `data`. Replaces `Vec<Vec<T>>` in the graph indexes so the
/// whole structure is two flat arrays, readable in place from a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatCsr<T: Pod> {
    offsets: FlatVec<u64>,
    data: FlatVec<T>,
}

impl<T: Pod> Default for FlatCsr<T> {
    fn default() -> Self {
        FlatCsr {
            offsets: vec![0u64].into(),
            data: FlatVec::new(),
        }
    }
}

impl<T: Pod> FlatCsr<T> {
    /// Builds from per-row vectors.
    pub fn from_rows(rows: &[Vec<T>]) -> Self {
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        let mut data = Vec::with_capacity(rows.iter().map(Vec::len).sum());
        offsets.push(0u64);
        for row in rows {
            data.extend_from_slice(row);
            offsets.push(data.len() as u64);
        }
        FlatCsr {
            offsets: offsets.into(),
            data: data.into(),
        }
    }

    /// Reassembles from the two flat arrays, validating the CSR invariants
    /// (non-empty offsets, monotone, last offset covering `data`).
    pub fn from_parts(offsets: FlatVec<u64>, data: FlatVec<T>) -> Result<Self, SnapshotError> {
        if offsets.is_empty() {
            // Canonical empty form: zero rows.
            return Ok(FlatCsr {
                offsets: vec![0u64].into(),
                data,
            });
        }
        if offsets[0] != 0
            || offsets.windows(2).any(|w| w[0] > w[1])
            || *offsets.last().unwrap() as usize != data.len()
        {
            return Err(SnapshotError::Malformed(
                "CSR offsets are not monotone over the data array".into(),
            ));
        }
        Ok(FlatCsr { offsets, data })
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Row `i` as a slice; empty for out-of-range rows.
    pub fn row(&self, i: usize) -> &[T] {
        if i + 1 >= self.offsets.len() {
            return &[];
        }
        &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Total number of stored elements.
    pub fn total_len(&self) -> usize {
        self.data.len()
    }

    /// The offsets array (for snapshot writing).
    pub fn offsets(&self) -> &FlatVec<u64> {
        &self.offsets
    }

    /// The data array (for snapshot writing).
    pub fn data(&self) -> &FlatVec<T> {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_flatvec_behaves_like_a_slice() {
        let mut v: FlatVec<u32> = vec![3, 1, 2].into();
        assert_eq!(&*v, &[3, 1, 2]);
        assert_eq!(v.len(), 3);
        assert!(!v.is_view());
        v.to_mut().push(9);
        assert_eq!(v.as_slice(), &[3, 1, 2, 9]);
        assert_eq!(v.clone(), v);
    }

    #[test]
    fn view_reads_in_place_and_cow_copies() {
        let store = Arc::new(ByteStore::from_bytes(&[1, 0, 0, 0, 2, 0, 0, 0]));
        let mut v: FlatVec<u32> = FlatVec::view(Arc::clone(&store), 0, 2);
        assert!(v.is_view());
        assert_eq!(v.as_slice(), &[1, 2]);
        // The view points into the store's memory, no copy.
        assert_eq!(
            v.as_slice().as_ptr() as usize,
            store.bytes().as_ptr() as usize
        );
        v.to_mut().push(3);
        assert!(!v.is_view());
        assert_eq!(v.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn csr_round_trip() {
        let rows = vec![vec![1u32, 2], vec![], vec![3]];
        let csr = FlatCsr::from_rows(&rows);
        assert_eq!(csr.num_rows(), 3);
        assert_eq!(csr.row(0), &[1, 2]);
        assert_eq!(csr.row(1), &[] as &[u32]);
        assert_eq!(csr.row(2), &[3]);
        assert_eq!(csr.row(7), &[] as &[u32]);
        assert_eq!(csr.total_len(), 3);
        let rebuilt = FlatCsr::from_parts(csr.offsets().clone(), csr.data().clone()).unwrap();
        assert_eq!(rebuilt, csr);
    }

    #[test]
    fn csr_rejects_broken_offsets() {
        let bad = FlatCsr::<u32>::from_parts(vec![0u64, 5].into(), vec![1u32].into());
        assert!(matches!(bad, Err(SnapshotError::Malformed(_))));
        let nonmono = FlatCsr::<u32>::from_parts(vec![0u64, 2, 1].into(), vec![1u32, 2].into());
        assert!(nonmono.is_err());
        let empty = FlatCsr::<u32>::from_parts(FlatVec::new(), FlatVec::new()).unwrap();
        assert_eq!(empty.num_rows(), 0);
    }
}
