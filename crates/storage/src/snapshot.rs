//! The snapshot file format: a versioned, checksummed container of flat
//! Pod sections.
//!
//! Layout (all integers little-endian, documented in `docs/STORAGE.md`):
//!
//! ```text
//! offset  0  magic            8 bytes  b"TURBOSNP"
//! offset  8  version          u32      format version (currently 1)
//! offset 12  endian probe     u32      0x0A0B0C0D as written by the producer
//! offset 16  section count    u64
//! offset 24  table offset     u64      byte offset of the section table
//! offset 32  file length      u64      total expected file size in bytes
//! offset 40  payload checksum u64      FNV-1a 64 over bytes [64, table offset)
//! offset 48  header checksum  u64      FNV-1a 64 over bytes [0, 48) ++ table
//! offset 56  reserved         u64      zero
//! offset 64  payload sections, each 8-byte aligned, zero padded between
//! table offset: section table  — count × { tag u64, offset u64, len u64 }
//! ```
//!
//! The header, the section table and every section's bounds are validated on
//! every open; the payload checksum is verified too (a sequential read of
//! the mapped pages — still zero-copy). Sections are then handed out as
//! [`FlatVec`] views directly into the mapped (or buffered) file.

use crate::bytes::ByteStore;
use crate::flat::FlatVec;
use crate::pod::{bytes_of, Pod};
use std::fmt;
use std::io::{self, Write};
use std::path::Path;
use std::sync::Arc;

/// Magic bytes at offset 0.
pub const MAGIC: [u8; 8] = *b"TURBOSNP";
/// Current format version.
pub const VERSION: u32 = 1;
/// Endianness probe value (reads back differently on a big-endian machine).
const ENDIAN_PROBE: u32 = 0x0A0B_0C0D;
/// Fixed header size in bytes; payload sections start here.
pub const HEADER_LEN: usize = 64;
/// Size of one section-table entry in bytes.
const ENTRY_LEN: usize = 24;

/// Errors opening or reading a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Underlying I/O failure (open, read, write).
    Io(String),
    /// The file does not start with the snapshot magic bytes.
    BadMagic,
    /// The file was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this reader understands.
        expected: u32,
    },
    /// The file was written on a platform with different endianness.
    EndianMismatch,
    /// The file is shorter than its header or section table claims.
    Truncated(String),
    /// A checksum did not match; `"header"` or `"payload"`.
    ChecksumMismatch(&'static str),
    /// The file is structurally inconsistent (bad section tag, misaligned
    /// offset, CSR invariant violation, …).
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::VersionMismatch { found, expected } => {
                write!(
                    f,
                    "snapshot version {found} unsupported (expected {expected})"
                )
            }
            SnapshotError::EndianMismatch => {
                write!(f, "snapshot was written with a different byte order")
            }
            SnapshotError::Truncated(what) => write!(f, "snapshot truncated: {what}"),
            SnapshotError::ChecksumMismatch(which) => {
                write!(f, "snapshot {which} checksum mismatch")
            }
            SnapshotError::Malformed(what) => write!(f, "snapshot malformed: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e.to_string())
    }
}

/// FNV-1a 64-bit hash.
fn fnv1a(init: u64, bytes: &[u8]) -> u64 {
    let mut h = init;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

#[derive(Debug, Clone, Copy)]
struct SectionEntry {
    tag: u64,
    offset: u64,
    len: u64,
}

/// Accumulates sections and writes a snapshot file.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    payload: Vec<u8>,
    sections: Vec<SectionEntry>,
}

impl SnapshotWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a section of Pod elements under `tag`. Sections are read back
    /// in the order they were written.
    pub fn section<T: Pod>(&mut self, tag: u64, data: &[T]) {
        while !self.payload.len().is_multiple_of(8) {
            self.payload.push(0);
        }
        let bytes = bytes_of(data);
        self.sections.push(SectionEntry {
            tag,
            offset: (HEADER_LEN + self.payload.len()) as u64,
            len: bytes.len() as u64,
        });
        self.payload.extend_from_slice(bytes);
    }

    /// Number of sections written so far.
    pub fn section_count(&self) -> usize {
        self.sections.len()
    }

    /// Serializes header + payload + table and writes the file atomically
    /// (via a sibling temp file and rename). Returns the total size in bytes.
    pub fn write_to(&self, path: &Path) -> Result<u64, SnapshotError> {
        let mut payload = self.payload.clone();
        while !payload.len().is_multiple_of(8) {
            payload.push(0);
        }
        let table_offset = HEADER_LEN + payload.len();
        let mut table = Vec::with_capacity(self.sections.len() * ENTRY_LEN);
        for s in &self.sections {
            table.extend_from_slice(&s.tag.to_le_bytes());
            table.extend_from_slice(&s.offset.to_le_bytes());
            table.extend_from_slice(&s.len.to_le_bytes());
        }
        let file_len = table_offset + table.len();
        let payload_checksum = fnv1a(FNV_OFFSET, &payload);

        let mut fixed = Vec::with_capacity(48);
        fixed.extend_from_slice(&MAGIC);
        fixed.extend_from_slice(&VERSION.to_le_bytes());
        fixed.extend_from_slice(&ENDIAN_PROBE.to_le_bytes());
        fixed.extend_from_slice(&(self.sections.len() as u64).to_le_bytes());
        fixed.extend_from_slice(&(table_offset as u64).to_le_bytes());
        fixed.extend_from_slice(&(file_len as u64).to_le_bytes());
        fixed.extend_from_slice(&payload_checksum.to_le_bytes());
        let header_checksum = fnv1a(fnv1a(FNV_OFFSET, &fixed), &table);

        let tmp = path.with_extension("tmp-snapshot");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&fixed)?;
            f.write_all(&header_checksum.to_le_bytes())?;
            f.write_all(&0u64.to_le_bytes())?;
            f.write_all(&payload)?;
            f.write_all(&table)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(file_len as u64)
    }
}

/// An opened, validated snapshot whose sections read in place.
#[derive(Debug)]
pub struct Snapshot {
    store: Arc<ByteStore>,
    sections: Vec<SectionEntry>,
}

fn read_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().expect("bounds checked"))
}

fn read_u64(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().expect("bounds checked"))
}

impl Snapshot {
    /// Opens a snapshot, preferring `mmap(2)` and falling back to a buffered
    /// read when mapping fails. All structural validation (magic, version,
    /// endianness, bounds, header and payload checksums) happens here.
    pub fn open(path: &Path) -> Result<Self, SnapshotError> {
        let store = match ByteStore::map_file(path) {
            Ok(s) => s,
            Err(_) => ByteStore::read_file(path)?,
        };
        Self::from_store(store)
    }

    /// Opens with the buffered-read fallback only (used by tests to exercise
    /// the heap path deterministically).
    pub fn open_buffered(path: &Path) -> Result<Self, SnapshotError> {
        Self::from_store(ByteStore::read_file(path)?)
    }

    fn from_store(store: ByteStore) -> Result<Self, SnapshotError> {
        let bytes = store.bytes();
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated(format!(
                "{} bytes is smaller than the {HEADER_LEN}-byte header",
                bytes.len()
            )));
        }
        if bytes[0..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = read_u32(bytes, 8);
        if version != VERSION {
            return Err(SnapshotError::VersionMismatch {
                found: version,
                expected: VERSION,
            });
        }
        if read_u32(bytes, 12) != ENDIAN_PROBE {
            return Err(SnapshotError::EndianMismatch);
        }
        let section_count = read_u64(bytes, 16) as usize;
        let table_offset = read_u64(bytes, 24) as usize;
        let file_len = read_u64(bytes, 32) as usize;
        let payload_checksum = read_u64(bytes, 40);
        let header_checksum = read_u64(bytes, 48);
        if file_len != bytes.len() {
            return Err(SnapshotError::Truncated(format!(
                "header expects {file_len} bytes, file has {}",
                bytes.len()
            )));
        }
        let table_len = section_count
            .checked_mul(ENTRY_LEN)
            .ok_or_else(|| SnapshotError::Malformed("section count overflows".into()))?;
        if table_offset < HEADER_LEN
            || !table_offset.is_multiple_of(8)
            || table_offset
                .checked_add(table_len)
                .is_none_or(|end| end > bytes.len())
        {
            return Err(SnapshotError::Truncated(
                "section table extends past end of file".into(),
            ));
        }
        let table = &bytes[table_offset..table_offset + table_len];
        if fnv1a(fnv1a(FNV_OFFSET, &bytes[0..48]), table) != header_checksum {
            return Err(SnapshotError::ChecksumMismatch("header"));
        }
        let mut sections = Vec::with_capacity(section_count);
        for i in 0..section_count {
            let tag = read_u64(table, i * ENTRY_LEN);
            let offset = read_u64(table, i * ENTRY_LEN + 8);
            let len = read_u64(table, i * ENTRY_LEN + 16);
            if !offset.is_multiple_of(8) {
                return Err(SnapshotError::Malformed(format!(
                    "section {i} offset {offset} is not 8-byte aligned"
                )));
            }
            let end = offset
                .checked_add(len)
                .ok_or_else(|| SnapshotError::Malformed(format!("section {i} overflows")))?;
            if (offset as usize) < HEADER_LEN || end as usize > table_offset {
                return Err(SnapshotError::Truncated(format!(
                    "section {i} [{offset}, {end}) outside payload region"
                )));
            }
            sections.push(SectionEntry { tag, offset, len });
        }
        if fnv1a(FNV_OFFSET, &bytes[HEADER_LEN..table_offset]) != payload_checksum {
            return Err(SnapshotError::ChecksumMismatch("payload"));
        }
        Ok(Snapshot {
            store: Arc::new(store),
            sections,
        })
    }

    /// Returns `true` if the snapshot is backed by a live memory mapping
    /// (`false` means the buffered-read heap fallback is active).
    pub fn is_mapped(&self) -> bool {
        self.store.is_mapped()
    }

    /// Number of sections in the file.
    pub fn section_count(&self) -> usize {
        self.sections.len()
    }

    /// Returns section `index` as a zero-copy view, checking its tag and
    /// that its byte length divides evenly into `T` elements.
    pub fn section<T: Pod>(&self, index: usize, tag: u64) -> Result<FlatVec<T>, SnapshotError> {
        let entry = self.sections.get(index).ok_or_else(|| {
            SnapshotError::Malformed(format!(
                "section {index} out of range ({} sections)",
                self.sections.len()
            ))
        })?;
        if entry.tag != tag {
            return Err(SnapshotError::Malformed(format!(
                "section {index} has tag {:#x}, expected {tag:#x}",
                entry.tag
            )));
        }
        let size = std::mem::size_of::<T>();
        debug_assert!(size > 0 && std::mem::align_of::<T>() <= 8);
        if !(entry.len as usize).is_multiple_of(size) {
            return Err(SnapshotError::Malformed(format!(
                "section {index} length {} is not a multiple of element size {size}",
                entry.len
            )));
        }
        Ok(FlatVec::view(
            Arc::clone(&self.store),
            entry.offset as usize,
            entry.len as usize / size,
        ))
    }

    /// A cursor reading sections sequentially from the start.
    pub fn cursor(&self) -> SectionCursor<'_> {
        SectionCursor {
            snapshot: self,
            next: 0,
        }
    }
}

/// Sequential section reader; components consume their sections in the same
/// order their writers emitted them.
#[derive(Debug)]
pub struct SectionCursor<'a> {
    snapshot: &'a Snapshot,
    next: usize,
}

impl SectionCursor<'_> {
    /// Reads the next section, which must carry `tag`.
    pub fn next_section<T: Pod>(&mut self, tag: u64) -> Result<FlatVec<T>, SnapshotError> {
        let v = self.snapshot.section::<T>(self.next, tag)?;
        self.next += 1;
        Ok(v)
    }

    /// Index of the next unread section.
    pub fn position(&self) -> usize {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("turbohom-snap-{}-{name}.bin", std::process::id()))
    }

    fn sample_file(name: &str) -> std::path::PathBuf {
        let mut w = SnapshotWriter::new();
        w.section::<u64>(1, &[10, 20, 30]);
        w.section::<u32>(2, &[7, 8, 9]);
        w.section::<u8>(3, b"hello");
        let path = temp_path(name);
        w.write_to(&path).unwrap();
        path
    }

    #[test]
    fn write_and_read_round_trip() {
        let path = sample_file("roundtrip");
        for snap in [
            Snapshot::open(&path).unwrap(),
            Snapshot::open_buffered(&path).unwrap(),
        ] {
            assert_eq!(snap.section_count(), 3);
            let mut cur = snap.cursor();
            assert_eq!(
                cur.next_section::<u64>(1).unwrap().as_slice(),
                &[10, 20, 30]
            );
            assert_eq!(cur.next_section::<u32>(2).unwrap().as_slice(), &[7, 8, 9]);
            assert_eq!(cur.next_section::<u8>(3).unwrap().as_slice(), b"hello");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn open_prefers_mmap_and_sections_are_views() {
        let path = sample_file("mmap");
        let snap = Snapshot::open(&path).unwrap();
        assert!(snap.is_mapped());
        let v = snap.section::<u64>(0, 1).unwrap();
        assert!(v.is_view());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tag_and_element_size_are_checked() {
        let path = sample_file("tags");
        let snap = Snapshot::open(&path).unwrap();
        assert!(matches!(
            snap.section::<u64>(0, 99),
            Err(SnapshotError::Malformed(_))
        ));
        // Section 2 is 5 bytes; not a multiple of 4.
        assert!(matches!(
            snap.section::<u32>(2, 3),
            Err(SnapshotError::Malformed(_))
        ));
        assert!(snap.section::<u64>(9, 1).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    fn mangle(path: &std::path::Path, offset: usize, f: impl Fn(u8) -> u8) -> std::path::PathBuf {
        let mut bytes = std::fs::read(path).unwrap();
        bytes[offset] = f(bytes[offset]);
        let mangled = path.with_extension("mangled");
        std::fs::write(&mangled, &bytes).unwrap();
        mangled
    }

    #[test]
    fn bad_magic_is_detected() {
        let path = sample_file("magic");
        let m = mangle(&path, 0, |b| b.wrapping_add(1));
        assert_eq!(Snapshot::open(&m).unwrap_err(), SnapshotError::BadMagic);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&m).unwrap();
    }

    #[test]
    fn version_mismatch_is_detected() {
        let path = sample_file("version");
        let m = mangle(&path, 8, |_| 0xFE);
        assert!(matches!(
            Snapshot::open(&m),
            Err(SnapshotError::VersionMismatch {
                found: 0xFE,
                expected: VERSION
            })
        ));
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&m).unwrap();
    }

    #[test]
    fn truncation_is_detected() {
        let path = sample_file("trunc");
        let bytes = std::fs::read(&path).unwrap();
        let short = path.with_extension("short");
        std::fs::write(&short, &bytes[..bytes.len() - 9]).unwrap();
        assert!(matches!(
            Snapshot::open(&short),
            Err(SnapshotError::Truncated(_))
        ));
        let tiny = path.with_extension("tiny");
        std::fs::write(&tiny, &bytes[..16]).unwrap();
        assert!(matches!(
            Snapshot::open(&tiny),
            Err(SnapshotError::Truncated(_))
        ));
        for p in [&path, &short, &tiny] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn payload_corruption_fails_the_checksum() {
        let path = sample_file("payload");
        let m = mangle(&path, HEADER_LEN + 2, |b| b ^ 0xFF);
        assert_eq!(
            Snapshot::open(&m).unwrap_err(),
            SnapshotError::ChecksumMismatch("payload")
        );
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&m).unwrap();
    }

    #[test]
    fn header_corruption_fails_the_checksum() {
        // Flip a bit in the section count (validated by the header checksum
        // before the table is trusted).
        let path = sample_file("header");
        let m = mangle(&path, 16, |b| b ^ 0x01);
        let err = Snapshot::open(&m).unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::ChecksumMismatch("header") | SnapshotError::Truncated(_)
            ),
            "{err:?}"
        );
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&m).unwrap();
    }

    #[test]
    fn empty_snapshot_is_valid() {
        let path = temp_path("empty");
        SnapshotWriter::new().write_to(&path).unwrap();
        let snap = Snapshot::open(&path).unwrap();
        assert_eq!(snap.section_count(), 0);
        std::fs::remove_file(&path).unwrap();
    }
}
