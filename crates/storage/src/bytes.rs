//! Immutable byte regions: heap-owned or memory-mapped.
//!
//! Mapping goes through a minimal `mmap(2)` FFI shim declared inline — the
//! build environment has no registry access, and `std` already links libc on
//! unix, so the two symbols we need are available without any new
//! dependency. When mapping is unavailable (non-unix platform, empty file,
//! or a failing `mmap` call) callers fall back to [`ByteStore::read_file`],
//! which buffers the file into 8-byte-aligned heap memory so the same
//! view-based accessors work over it.

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

enum Repr {
    /// Heap storage. Backed by `Vec<u64>` (not `Vec<u8>`) so the base
    /// address is 8-byte aligned — sections store `u64`-fielded records and
    /// views reinterpret the bytes in place.
    Owned { words: Vec<u64>, len: usize },
    #[cfg(unix)]
    Mapped { ptr: *mut u8, len: usize },
}

/// An immutable region of bytes with stable addresses, shared via `Arc`.
pub struct ByteStore {
    repr: Repr,
}

// Safety: the region is immutable after construction; the raw pointer of the
// mapped variant refers to a private, read-only mapping.
unsafe impl Send for ByteStore {}
unsafe impl Sync for ByteStore {}

impl ByteStore {
    /// Wraps owned bytes (copies them into aligned storage).
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let words = vec![0u64; bytes.len().div_ceil(8)];
        let mut words = words;
        // Safety: u64 has no padding; we only write within the allocation.
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                words.as_mut_ptr() as *mut u8,
                bytes.len(),
            );
        }
        ByteStore {
            repr: Repr::Owned {
                words,
                len: bytes.len(),
            },
        }
    }

    /// Reads an entire file into aligned heap memory (the mapping fallback).
    pub fn read_file(path: &Path) -> io::Result<Self> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len() as usize;
        let mut words = vec![0u64; len.div_ceil(8)];
        // Safety: the u64 buffer is at least `len` bytes and u64 tolerates
        // any byte pattern.
        let buf = unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, len) };
        file.read_exact(buf)?;
        ByteStore::check_trailing_eof(&mut file)?;
        Ok(ByteStore {
            repr: Repr::Owned { words, len },
        })
    }

    fn check_trailing_eof(file: &mut File) -> io::Result<()> {
        // The metadata length was trusted for the buffer size; detect a file
        // that grew between the two calls so `len` stays authoritative.
        let mut probe = [0u8; 1];
        match file.read(&mut probe)? {
            0 => Ok(()),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file changed size while being read",
            )),
        }
    }

    /// Memory-maps a file read-only. Returns an error when mapping is not
    /// available on this platform or fails; callers should fall back to
    /// [`ByteStore::read_file`].
    #[cfg(unix)]
    pub fn map_file(path: &Path) -> io::Result<Self> {
        use std::os::fd::AsRawFd;
        let file = File::open(path)?;
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot map an empty file",
            ));
        }
        let ptr = unsafe {
            ffi::mmap(
                std::ptr::null_mut(),
                len,
                ffi::PROT_READ,
                ffi::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == ffi::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(ByteStore {
            repr: Repr::Mapped {
                ptr: ptr as *mut u8,
                len,
            },
        })
    }

    /// Memory-mapping stub for non-unix platforms: always fails, so callers
    /// take the buffered-read path.
    #[cfg(not(unix))]
    pub fn map_file(_path: &Path) -> io::Result<Self> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "mmap is not available on this platform",
        ))
    }

    /// Returns `true` if the region is a live memory mapping (as opposed to
    /// the buffered heap fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.repr {
            Repr::Owned { .. } => false,
            #[cfg(unix)]
            Repr::Mapped { .. } => true,
        }
    }

    /// The bytes of the region.
    pub fn bytes(&self) -> &[u8] {
        match &self.repr {
            Repr::Owned { words, len } => {
                // Safety: the allocation holds at least `len` bytes.
                unsafe { std::slice::from_raw_parts(words.as_ptr() as *const u8, *len) }
            }
            #[cfg(unix)]
            Repr::Mapped { ptr, len } => {
                // Safety: the mapping is `len` bytes long and lives until Drop.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
        }
    }

    /// Number of bytes in the region.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Owned { len, .. } => *len,
            #[cfg(unix)]
            Repr::Mapped { len, .. } => *len,
        }
    }

    /// Returns `true` if the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for ByteStore {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Repr::Mapped { ptr, len } = self.repr {
            // Safety: the pointer/length pair came from a successful mmap
            // and is unmapped exactly once.
            unsafe {
                ffi::munmap(ptr as *mut std::ffi::c_void, len);
            }
        }
    }
}

impl std::fmt::Debug for ByteStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ByteStore")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

/// The minimal `mmap(2)` surface, declared by hand. `std` links libc on
/// unix, so these resolve without adding any dependency.
#[cfg(unix)]
mod ffi {
    use std::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_store_is_aligned_and_round_trips() {
        let data: Vec<u8> = (0..37).collect();
        let store = ByteStore::from_bytes(&data);
        assert_eq!(store.bytes(), data.as_slice());
        assert_eq!(store.len(), 37);
        assert!(!store.is_mapped());
        assert_eq!(store.bytes().as_ptr() as usize % 8, 0);
    }

    #[test]
    fn empty_store() {
        let store = ByteStore::from_bytes(&[]);
        assert!(store.is_empty());
        assert!(store.bytes().is_empty());
    }

    #[cfg(unix)]
    #[test]
    fn map_and_read_agree() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("turbohom-storage-test-{}.bin", std::process::id()));
        let data: Vec<u8> = (0..255).collect();
        std::fs::write(&path, &data).unwrap();
        let mapped = ByteStore::map_file(&path).unwrap();
        let read = ByteStore::read_file(&path).unwrap();
        assert!(mapped.is_mapped());
        assert!(!read.is_mapped());
        assert_eq!(mapped.bytes(), read.bytes());
        assert_eq!(mapped.bytes(), data.as_slice());
        drop(mapped);
        std::fs::remove_file(&path).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn mapping_empty_file_fails_cleanly() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("turbohom-storage-empty-{}.bin", std::process::id()));
        std::fs::write(&path, b"").unwrap();
        assert!(ByteStore::map_file(&path).is_err());
        assert!(ByteStore::read_file(&path).unwrap().is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
