//! The plain-old-data marker trait.

/// Marker for types that can be reinterpreted to and from raw bytes.
///
/// # Safety
///
/// Implementors must guarantee all of the following:
///
/// * every bit pattern of `size_of::<Self>()` bytes is a valid value (no
///   niches: no `bool`, no enums with invalid discriminants, no references,
///   no `NonZero*`),
/// * the type is `#[repr(C)]` or `#[repr(transparent)]` with **no padding
///   bytes** (padding would leak uninitialized memory into snapshots),
/// * the type has no drop glue (`Copy` enforces this).
///
/// Snapshots additionally assume the fields are stored little-endian, which
/// holds on every platform this workspace targets; the snapshot header
/// records an endianness probe so a mismatched reader fails loudly instead
/// of misreading.
pub unsafe trait Pod: Copy + Send + Sync + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for i8 {}
unsafe impl Pod for i16 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for i64 {}

/// Reinterprets a Pod slice as its raw bytes.
pub fn bytes_of<T: Pod>(data: &[T]) -> &[u8] {
    // Safety: T is Pod (no padding, no invalid bit patterns), and the
    // lifetime is tied to the input slice.
    unsafe { std::slice::from_raw_parts(data.as_ptr() as *const u8, std::mem::size_of_val(data)) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_of_round_trips_little_endian() {
        let xs: [u32; 2] = [0x0403_0201, 0x0807_0605];
        assert_eq!(bytes_of(&xs), &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert!(bytes_of::<u64>(&[]).is_empty());
    }
}
