//! The structured event journal: a lock-light ring of typed service events.
//!
//! Where the slow-query recorder answers "which queries hurt", the journal
//! answers "what happened, in order": every query admission and completion,
//! every plan-cache insert and eviction, the store load at startup, shard
//! pruning outcomes, and slow-query offenders — each stamped with a
//! sequence number, the service uptime, and (where one exists) the
//! request's trace id, so journal lines join `/debug/slow` entries, the
//! access log, and `profile=1` output on `X-Trace-Id`.
//!
//! The write path mirrors [`SlowQueryLog`](crate::SlowQueryLog): claiming a
//! slot is one `fetch_add` on the ring head, and the entry is written under
//! that slot's own mutex, so concurrent writers hit different slots and
//! never serialize the request path. The ring is served as JSONL (one JSON
//! object per line, oldest first) at `GET /debug/events`, and can be tee'd
//! to a file (`turbohom-server --journal FILE`) for post-mortem analysis —
//! the file keeps every event, the ring only the most recent `capacity`.

use parking_lot::Mutex;
use std::fs::File;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use turbohom_engine::{format_trace_id, json_escape, EngineKind};

/// Query text carried by plan events is truncated to this many bytes.
const MAX_QUERY_LEN: usize = 200;

/// One typed journal event. The variants map one-to-one onto the `event`
/// field of a journal line.
#[derive(Debug, Clone)]
pub enum JournalEvent {
    /// A request entered the service, before any work ran. `mode` is
    /// `"query"`, `"profile"`, `"explain"` or `"analyze"`.
    QueryAdmitted {
        /// The engine that will answer.
        engine: EngineKind,
        /// The request mode.
        mode: &'static str,
    },
    /// A request finished successfully.
    QueryCompleted {
        /// The engine that answered.
        engine: EngineKind,
        /// Whether the plan came from the cache.
        cache_hit: bool,
        /// Solutions produced (zero for `explain`, which never executes).
        solutions: usize,
        /// Total request latency in milliseconds.
        total_ms: f64,
    },
    /// A request returned an error.
    QueryFailed {
        /// The engine that was asked.
        engine: EngineKind,
        /// The error message.
        error: String,
    },
    /// A freshly prepared plan entered the cache.
    PlanCached {
        /// The engine the plan was prepared for.
        engine: EngineKind,
        /// Canonical query text (truncated).
        query: String,
    },
    /// A plan was evicted to make room for another.
    PlanEvicted {
        /// The evicted plan's engine.
        engine: EngineKind,
        /// The evicted plan's canonical query text (truncated).
        query: String,
    },
    /// The store was loaded or memory-mapped at startup.
    StoreLoaded {
        /// `"single"` or `"sharded"`.
        flavor: &'static str,
        /// Storage backend name (`"heap"` or `"snapshot"`).
        backend: &'static str,
        /// Triples in the store.
        triples: usize,
        /// Whether the store is served from a memory-mapped snapshot.
        mapped: bool,
    },
    /// A sharded query's scatter decision: how many shards were skipped by
    /// summary pruning / ownership routing and how many executed.
    ShardsPruned {
        /// Shards skipped.
        pruned: usize,
        /// Shards that executed.
        executed: usize,
    },
    /// A query crossed the slow-query threshold (details in `/debug/slow`).
    SlowQuery {
        /// The engine that answered.
        engine: EngineKind,
        /// Total request latency in milliseconds.
        total_ms: f64,
    },
}

impl JournalEvent {
    /// The snake_case event name (the `event` field of a journal line).
    pub fn kind(&self) -> &'static str {
        match self {
            JournalEvent::QueryAdmitted { .. } => "query_admitted",
            JournalEvent::QueryCompleted { .. } => "query_completed",
            JournalEvent::QueryFailed { .. } => "query_failed",
            JournalEvent::PlanCached { .. } => "plan_cached",
            JournalEvent::PlanEvicted { .. } => "plan_evicted",
            JournalEvent::StoreLoaded { .. } => "store_loaded",
            JournalEvent::ShardsPruned { .. } => "shards_pruned",
            JournalEvent::SlowQuery { .. } => "slow_query",
        }
    }

    /// Appends the variant-specific JSON members (leading comma included).
    fn append_fields(&self, out: &mut String) {
        match self {
            JournalEvent::QueryAdmitted { engine, mode } => {
                out.push_str(&format!(
                    ",\"engine\":\"{}\",\"mode\":\"{mode}\"",
                    engine.name()
                ));
            }
            JournalEvent::QueryCompleted {
                engine,
                cache_hit,
                solutions,
                total_ms,
            } => {
                out.push_str(&format!(
                    ",\"engine\":\"{}\",\"cache\":\"{}\",\"solutions\":{solutions},\"total_ms\":{total_ms:.3}",
                    engine.name(),
                    if *cache_hit { "HIT" } else { "MISS" },
                ));
            }
            JournalEvent::QueryFailed { engine, error } => {
                out.push_str(&format!(
                    ",\"engine\":\"{}\",\"error\":\"{}\"",
                    engine.name(),
                    json_escape(error)
                ));
            }
            JournalEvent::PlanCached { engine, query }
            | JournalEvent::PlanEvicted { engine, query } => {
                out.push_str(&format!(
                    ",\"engine\":\"{}\",\"query\":\"{}\"",
                    engine.name(),
                    json_escape(query)
                ));
            }
            JournalEvent::StoreLoaded {
                flavor,
                backend,
                triples,
                mapped,
            } => {
                out.push_str(&format!(
                    ",\"store\":\"{flavor}\",\"backend\":\"{backend}\",\"triples\":{triples},\"mapped\":{mapped}"
                ));
            }
            JournalEvent::ShardsPruned { pruned, executed } => {
                out.push_str(&format!(",\"pruned\":{pruned},\"executed\":{executed}"));
            }
            JournalEvent::SlowQuery { engine, total_ms } => {
                out.push_str(&format!(
                    ",\"engine\":\"{}\",\"total_ms\":{total_ms:.3}",
                    engine.name()
                ));
            }
        }
    }
}

/// One journal entry: the event plus its correlation metadata.
#[derive(Debug, Clone)]
pub struct JournalEntry {
    /// Monotone sequence number (global order across all events).
    pub seq: u64,
    /// Service uptime in seconds when the event happened.
    pub uptime_secs: f64,
    /// Trace id of the request the event belongs to (`None` for events
    /// outside any request, e.g. the startup `store_loaded`).
    pub trace_id: Option<u64>,
    /// The typed event.
    pub event: JournalEvent,
}

impl JournalEntry {
    /// Renders the entry as one JSON object (one JSONL line, no newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push_str(&format!(
            "{{\"seq\":{},\"uptime_secs\":{:.3},\"trace\":",
            self.seq, self.uptime_secs
        ));
        match self.trace_id {
            Some(id) => out.push_str(&format!("\"{}\"", format_trace_id(id))),
            None => out.push_str("null"),
        }
        out.push_str(&format!(",\"event\":\"{}\"", self.event.kind()));
        self.event.append_fields(&mut out);
        out.push('}');
        out
    }
}

/// The journal ring plus the optional file tee.
pub struct EventJournal {
    slots: Vec<Mutex<Option<JournalEntry>>>,
    head: AtomicU64,
    tee: Option<Mutex<File>>,
}

impl EventJournal {
    /// A journal keeping the `capacity` most recent events.
    pub fn new(capacity: usize) -> Self {
        EventJournal {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
            tee: None,
        }
    }

    /// Additionally appends every event to `file` as JSONL (the
    /// `--journal FILE` tee). The file keeps everything; the ring wraps.
    pub fn with_tee(mut self, file: File) -> Self {
        self.tee = Some(Mutex::new(file));
        self
    }

    /// Number of ring slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events recorded (the most recent `min(recorded, capacity)`
    /// are still in the ring).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records one event.
    pub fn record(&self, trace_id: Option<u64>, uptime_secs: f64, mut event: JournalEvent) {
        if let JournalEvent::PlanCached { query, .. } | JournalEvent::PlanEvicted { query, .. } =
            &mut event
        {
            truncate_query(query);
        }
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let entry = JournalEntry {
            seq,
            uptime_secs,
            trace_id,
            event,
        };
        if let Some(tee) = &self.tee {
            let mut file = tee.lock();
            let _ = writeln!(file, "{}", entry.to_json());
        }
        let slot = seq as usize % self.slots.len();
        *self.slots[slot].lock() = Some(entry);
    }

    /// The current ring contents in event order (oldest first).
    pub fn snapshot(&self) -> Vec<JournalEntry> {
        let mut entries: Vec<JournalEntry> =
            self.slots.iter().filter_map(|s| s.lock().clone()).collect();
        entries.sort_by_key(|e| e.seq);
        entries
    }

    /// Renders the ring as JSONL (the `GET /debug/events` payload): one
    /// JSON object per line, oldest first, trailing newline.
    pub fn to_jsonl(&self) -> String {
        let entries = self.snapshot();
        let mut out = String::with_capacity(entries.len() * 160 + 1);
        for entry in &entries {
            out.push_str(&entry.to_json());
            out.push('\n');
        }
        out
    }
}

/// Truncates journaled query text on a char boundary.
fn truncate_query(query: &mut String) {
    if query.len() > MAX_QUERY_LEN {
        let mut cut = MAX_QUERY_LEN;
        while !query.is_char_boundary(cut) {
            cut -= 1;
        }
        query.truncate(cut);
        query.push('…');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completed(solutions: usize) -> JournalEvent {
        JournalEvent::QueryCompleted {
            engine: EngineKind::TurboHomPlusPlus,
            cache_hit: false,
            solutions,
            total_ms: 1.5,
        }
    }

    #[test]
    fn entries_keep_global_order_and_wrap() {
        let journal = EventJournal::new(3);
        for i in 0..5 {
            journal.record(Some(i), i as f64, completed(i as usize));
        }
        assert_eq!(journal.recorded(), 5);
        let snap = journal.snapshot();
        // Ring of 3: events 2, 3, 4 survive, oldest first.
        let seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn jsonl_is_one_object_per_line_with_trace_ids() {
        let journal = EventJournal::new(8);
        journal.record(
            None,
            0.0,
            JournalEvent::StoreLoaded {
                flavor: "single",
                backend: "heap",
                triples: 42,
                mapped: false,
            },
        );
        journal.record(
            Some(0x2a),
            1.0,
            JournalEvent::QueryAdmitted {
                engine: EngineKind::MergeJoin,
                mode: "analyze",
            },
        );
        let jsonl = journal.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"trace\":null"));
        assert!(lines[0].contains("\"event\":\"store_loaded\""));
        assert!(lines[0].contains("\"triples\":42"));
        assert!(lines[1].contains("\"trace\":\"000000000000002a\""));
        assert!(lines[1].contains("\"event\":\"query_admitted\""));
        assert!(lines[1].contains("\"mode\":\"analyze\""));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
    }

    #[test]
    fn every_event_kind_renders_its_fields() {
        let events = [
            JournalEvent::QueryAdmitted {
                engine: EngineKind::TurboHom,
                mode: "query",
            },
            completed(7),
            JournalEvent::QueryFailed {
                engine: EngineKind::HashJoin,
                error: "parse error: \"x\"".into(),
            },
            JournalEvent::PlanCached {
                engine: EngineKind::TurboHomPlusPlus,
                query: "SELECT ?x WHERE { ?x ?p ?o . }".into(),
            },
            JournalEvent::PlanEvicted {
                engine: EngineKind::TurboHomPlusPlus,
                query: "SELECT ?y WHERE { ?y ?p ?o . }".into(),
            },
            JournalEvent::StoreLoaded {
                flavor: "sharded",
                backend: "heap",
                triples: 9,
                mapped: false,
            },
            JournalEvent::ShardsPruned {
                pruned: 7,
                executed: 1,
            },
            JournalEvent::SlowQuery {
                engine: EngineKind::TurboHomPlusPlus,
                total_ms: 600.0,
            },
        ];
        let journal = EventJournal::new(events.len());
        for event in events {
            journal.record(Some(1), 0.5, event);
        }
        let jsonl = journal.to_jsonl();
        for kind in [
            "query_admitted",
            "query_completed",
            "query_failed",
            "plan_cached",
            "plan_evicted",
            "store_loaded",
            "shards_pruned",
            "slow_query",
        ] {
            assert!(
                jsonl.contains(&format!("\"event\":\"{kind}\"")),
                "missing {kind} in {jsonl}"
            );
        }
        // The error message is escaped, not raw.
        assert!(jsonl.contains("parse error: \\\"x\\\""));
        assert!(jsonl.contains("\"pruned\":7,\"executed\":1"));
    }

    #[test]
    fn long_query_text_is_truncated() {
        let journal = EventJournal::new(1);
        journal.record(
            None,
            0.0,
            JournalEvent::PlanCached {
                engine: EngineKind::TurboHomPlusPlus,
                query: "é".repeat(300),
            },
        );
        let snap = journal.snapshot();
        let JournalEvent::PlanCached { query, .. } = &snap[0].event else {
            panic!("plan_cached expected");
        };
        assert!(query.len() <= MAX_QUERY_LEN + '…'.len_utf8());
        assert!(query.ends_with('…'));
    }

    #[test]
    fn tee_file_keeps_every_event_past_the_ring() {
        let path = std::env::temp_dir().join(format!(
            "turbohom-journal-test-{}.jsonl",
            std::process::id()
        ));
        let file = File::create(&path).unwrap();
        let journal = EventJournal::new(2).with_tee(file);
        for i in 0..5 {
            journal.record(Some(i), 0.0, completed(i as usize));
        }
        // The ring kept 2; the tee kept all 5.
        assert_eq!(journal.snapshot().len(), 2);
        let teed = std::fs::read_to_string(&path).unwrap();
        assert_eq!(teed.lines().count(), 5);
        assert!(teed
            .lines()
            .all(|l| l.contains("\"event\":\"query_completed\"")));
        let _ = std::fs::remove_file(&path);
    }
}
