//! The [`QueryService`]: a shared, thread-safe query front-end over one
//! [`Store`].
//!
//! Request path:
//!
//! 1. normalize + fingerprint the query text (cheap: one lexer pass),
//! 2. look the `(canonical, engine)` key up in the LRU plan cache,
//! 3. **hit** → jump straight to enumeration via [`Store::run_plan_with`]
//!    (no parsing, no transformation, and — via the plan's memoized
//!    matching order — no order determination either),
//! 4. **miss** → [`Store::prepare_plan`] (parse + transform), run it, and
//!    cache the plan for the next request.
//!
//! The service counts how many times the expensive prepare half actually
//! ran ([`StatsSnapshot::plans_prepared`]), which is what the warm-path
//! tests assert on: repeated queries must not re-parse or re-transform.

use crate::cache::{PlanCache, PlanKey};
use crate::journal::{EventJournal, JournalEvent};
use crate::metrics::ServiceMetrics;
use crate::slow::{SlowQueryEntry, SlowQueryLog};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use turbohom_engine::{
    json_escape, AnyStore, EngineKind, ExplainReport, QueryResults, Store, StoreError, Trace,
    TraceReport,
};
use turbohom_sparql::{fingerprint, QueryFingerprint};

/// Configuration of a [`QueryService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Maximum number of cached plans (per-engine entries count separately).
    pub plan_cache_capacity: usize,
    /// Engine used when a request does not name one.
    pub default_engine: EngineKind,
    /// Upper bound for the per-request `threads` override (defends the
    /// thread pool against `threads=10000` requests).
    pub max_threads: usize,
    /// Queries at or above this latency land in the slow-query recorder
    /// (`Duration::ZERO` records everything, `None` disables it).
    pub slow_query: Option<Duration>,
    /// Ring capacity of the slow-query recorder.
    pub slow_log_capacity: usize,
    /// Ring capacity of the structured event journal (`/debug/events`).
    pub journal_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            plan_cache_capacity: 256,
            default_engine: EngineKind::TurboHomPlusPlus,
            max_threads: 64,
            slow_query: Some(Duration::from_millis(500)),
            slow_log_capacity: 32,
            journal_capacity: 256,
        }
    }
}

/// Per-request execution options.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryOptions {
    /// Engine to execute with (`None` = the service default).
    pub engine: Option<EngineKind>,
    /// Worker-thread override for this request only.
    pub threads: Option<usize>,
    /// PROFILE mode: collect a detailed trace (per-stage and per-worker
    /// spans) and return it in [`QueryResponse::profile`].
    pub profile: bool,
    /// ANALYZE mode: execute the query outside the plan cache and return
    /// the EXPLAIN tree annotated with actuals (per-step rows, q-errors,
    /// per-shard rows) in [`QueryResponse::explain`]. The per-step q-errors
    /// feed the `turbohom_estimate_qerror` histogram and false-live shards
    /// feed `turbohom_summary_prune_errors_total`.
    pub analyze: bool,
}

/// The outcome of one service query.
pub struct QueryResponse {
    /// The query results.
    pub results: QueryResults,
    /// The engine that answered.
    pub engine: EngineKind,
    /// Whether the plan came from the cache.
    pub cache_hit: bool,
    /// The 64-bit fingerprint of the normalized query.
    pub fingerprint: u64,
    /// Wall clock for the whole request (fingerprint + plan + run + render).
    pub elapsed: Duration,
    /// The request's trace id (`X-Trace-Id`; ties the response to the
    /// access log and slow-query recorder).
    pub trace_id: u64,
    /// The detailed trace, present when [`QueryOptions::profile`] was set.
    pub profile: Option<TraceReport>,
    /// The EXPLAIN tree annotated with actuals, present when
    /// [`QueryOptions::analyze`] was set.
    pub explain: Option<ExplainReport>,
}

/// The outcome of one `explain=1` request ([`QueryService::explain`]):
/// the static plan tree, built **without executing** the query.
pub struct ExplainResponse {
    /// The structured plan tree.
    pub report: ExplainReport,
    /// The engine the plan was built for.
    pub engine: EngineKind,
    /// The 64-bit fingerprint of the normalized query.
    pub fingerprint: u64,
    /// The request's trace id (`X-Trace-Id`).
    pub trace_id: u64,
    /// Wall clock for building the report.
    pub elapsed: Duration,
}

/// A point-in-time view of the service counters (served as `/stats`).
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Seconds since the service started.
    pub uptime_seconds: f64,
    /// Store flavor answering the queries: `"single"` or `"sharded"`.
    pub store_flavor: &'static str,
    /// Triples in the underlying store.
    pub triples: usize,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses.
    pub cache_misses: u64,
    /// Plans evicted from the cache.
    pub cache_evictions: u64,
    /// Plans currently cached.
    pub cache_size: usize,
    /// How many times the prepare half (parse + transform) actually ran.
    pub plans_prepared: u64,
    /// Per-engine counters, in [`EngineKind::all`] order.
    pub engines: Vec<EngineStats>,
}

/// Per-engine counters inside a [`StatsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStats {
    /// The engine.
    pub kind: EngineKind,
    /// The store flavor the counters were accumulated against (`"single"`
    /// or `"sharded"` — one service only ever runs one flavor, the label
    /// keeps aggregated dashboards honest).
    pub store: &'static str,
    /// Successfully answered queries.
    pub queries: u64,
    /// Failed queries.
    pub errors: u64,
    /// Queries per second over the uptime.
    pub qps: f64,
    /// Mean request latency in milliseconds.
    pub mean_ms: f64,
    /// Estimated 50th/95th/99th latency percentiles in milliseconds.
    pub p50_ms: f64,
    /// 95th percentile (ms).
    pub p95_ms: f64,
    /// 99th percentile (ms).
    pub p99_ms: f64,
    /// Solutions returned across all successful queries.
    pub solutions: u64,
    /// Cumulative `+INT` k-way intersections run by the matcher.
    pub intersection_ops: u64,
    /// Cumulative morsels executed by the work-stealing scheduler.
    pub morsels: u64,
    /// Cumulative morsels obtained by stealing.
    pub morsels_stolen: u64,
}

impl StatsSnapshot {
    /// Renders the snapshot as a JSON object (the `/stats` payload).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str(&format!(
            "{{\"uptime_seconds\":{:.3},\"store\":\"{}\",\"triples\":{},\"plan_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"size\":{}}},\"plans_prepared\":{},\"engines\":{{",
            self.uptime_seconds,
            self.store_flavor,
            self.triples,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.cache_size,
            self.plans_prepared,
        ));
        for (i, e) in self.engines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"store\":\"{}\",\"queries\":{},\"errors\":{},\"qps\":{:.3},\"latency_ms\":{{\"mean\":{:.3},\"p50\":{:.3},\"p95\":{:.3},\"p99\":{:.3}}},\"matcher\":{{\"solutions\":{},\"intersection_ops\":{},\"morsels\":{},\"morsels_stolen\":{}}}}}",
                json_escape(e.kind.name()),
                e.store,
                e.queries,
                e.errors,
                e.qps,
                e.mean_ms,
                e.p50_ms,
                e.p95_ms,
                e.p99_ms,
                e.solutions,
                e.intersection_ops,
                e.morsels,
                e.morsels_stolen,
            ));
        }
        out.push_str("}}");
        out
    }
}

/// A concurrent SPARQL query service over one shared store — a single
/// [`Store`] or a sharded scatter-gather store ([`AnyStore`]).
pub struct QueryService {
    store: AnyStore,
    config: ServiceConfig,
    cache: PlanCache,
    metrics: ServiceMetrics,
    plans_prepared: AtomicU64,
    /// Shards skipped by summary pruning / ownership routing, summed over
    /// every successful sharded query (`turbohom_shards_pruned_total`).
    shards_pruned: AtomicU64,
    /// Shards that actually executed, summed likewise.
    shards_executed: AtomicU64,
    slow_log: SlowQueryLog,
    journal: EventJournal,
    next_trace_id: AtomicU64,
    dataset_label: String,
}

impl QueryService {
    /// Creates a service with default configuration.
    pub fn new(store: Arc<Store>) -> Self {
        Self::with_config(store, ServiceConfig::default())
    }

    /// Creates a service with the given configuration.
    pub fn with_config(store: Arc<Store>, config: ServiceConfig) -> Self {
        Self::with_any_store(AnyStore::Single(store), config)
    }

    /// Creates a service over either store flavor (the server uses this to
    /// boot `--shards=k`).
    pub fn with_any_store(store: AnyStore, config: ServiceConfig) -> Self {
        let service = QueryService {
            cache: PlanCache::new(config.plan_cache_capacity),
            metrics: ServiceMetrics::new(),
            plans_prepared: AtomicU64::new(0),
            shards_pruned: AtomicU64::new(0),
            shards_executed: AtomicU64::new(0),
            slow_log: SlowQueryLog::new(config.slow_log_capacity, config.slow_query),
            journal: EventJournal::new(config.journal_capacity),
            next_trace_id: AtomicU64::new(1),
            dataset_label: "unnamed".into(),
            config,
            store,
        };
        service.journal.record(
            None,
            0.0,
            JournalEvent::StoreLoaded {
                flavor: service.store.flavor_name(),
                backend: service.store.backend_name(),
                triples: service.store.triple_count(),
                mapped: service.store.is_mapped(),
            },
        );
        service
    }

    /// Tees every journal event to `file` as JSONL (builder style, the
    /// server's `--journal FILE`). The startup `store_loaded` event already
    /// sits in the ring and is replayed into the file first, so the tee is
    /// complete.
    pub fn with_journal_tee(mut self, file: std::fs::File) -> Self {
        let replay = self.journal.snapshot();
        let capacity = self.journal.capacity();
        self.journal = EventJournal::new(capacity).with_tee(file);
        for entry in replay {
            self.journal
                .record(entry.trace_id, entry.uptime_secs, entry.event);
        }
        self
    }

    /// Sets the dataset label reported by `/healthz` (builder style, e.g.
    /// `"lubm-1"` or the N-Triples file name).
    pub fn with_dataset_label(mut self, label: impl Into<String>) -> Self {
        self.dataset_label = label.into();
        self
    }

    /// The dataset label reported by `/healthz`.
    pub fn dataset_label(&self) -> &str {
        &self.dataset_label
    }

    /// The shared store (single or sharded).
    pub fn store(&self) -> &AnyStore {
        &self.store
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The service metrics (counters, histograms, stage totals).
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// The slow-query recorder (served as `/debug/slow`).
    pub fn slow_log(&self) -> &SlowQueryLog {
        &self.slow_log
    }

    /// The structured event journal (served as `/debug/events`).
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// Seconds since the service started.
    pub fn uptime(&self) -> Duration {
        self.metrics.uptime()
    }

    /// Answers one query.
    ///
    /// Every request runs under a coarse trace (a handful of spans feeding
    /// the per-stage time totals in `/metrics` and the slow-query recorder);
    /// [`QueryOptions::profile`] upgrades it to a detailed trace whose
    /// report comes back in [`QueryResponse::profile`].
    pub fn query(&self, sparql: &str, options: QueryOptions) -> Result<QueryResponse, StoreError> {
        let engine = options.engine.unwrap_or(self.config.default_engine);
        let threads = options.threads.map(|t| t.clamp(1, self.config.max_threads));
        let trace_id = self.next_trace_id.fetch_add(1, Ordering::Relaxed);
        let mode = if options.analyze {
            "analyze"
        } else if options.profile {
            "profile"
        } else {
            "query"
        };
        self.journal_event(Some(trace_id), JournalEvent::QueryAdmitted { engine, mode });
        if options.analyze {
            return self.run_analyze(sparql, engine, threads, trace_id);
        }
        let trace = if options.profile {
            Trace::detailed(trace_id)
        } else {
            Trace::new(trace_id)
        };
        let start = Instant::now();
        let outcome = self.run(sparql, engine, threads, &trace, trace_id);
        match outcome {
            Ok((results, cache_hit, fp)) => {
                let elapsed = start.elapsed();
                self.record_query_success(engine, cache_hit, elapsed, &results, trace_id);
                let report = trace.finish();
                self.metrics.record_stages(&report);
                if self.slow_log.is_slow(elapsed) {
                    self.record_slow(&report, fp.canonical, engine, cache_hit, elapsed, &results);
                }
                Ok(QueryResponse {
                    results,
                    engine,
                    cache_hit,
                    fingerprint: fp.hash,
                    elapsed,
                    trace_id,
                    profile: options.profile.then_some(report),
                    explain: None,
                })
            }
            Err(e) => Err(self.record_query_error(engine, trace_id, e)),
        }
    }

    /// Builds the EXPLAIN plan tree for a query **without executing it**
    /// (the `explain=1` request path). Bypasses the plan cache — EXPLAIN
    /// should show what a cold request would decide — and records no
    /// success metrics since nothing ran; failures still count as errors.
    pub fn explain(
        &self,
        sparql: &str,
        options: QueryOptions,
    ) -> Result<ExplainResponse, StoreError> {
        let engine = options.engine.unwrap_or(self.config.default_engine);
        let trace_id = self.next_trace_id.fetch_add(1, Ordering::Relaxed);
        self.journal_event(
            Some(trace_id),
            JournalEvent::QueryAdmitted {
                engine,
                mode: "explain",
            },
        );
        let start = Instant::now();
        let fp = match fingerprint(sparql) {
            Ok(fp) => fp,
            Err(e) => return Err(self.record_query_error(engine, trace_id, e.into())),
        };
        match self.store.explain(sparql, engine) {
            Ok(report) => {
                let elapsed = start.elapsed();
                self.journal_event(
                    Some(trace_id),
                    JournalEvent::QueryCompleted {
                        engine,
                        cache_hit: false,
                        solutions: 0,
                        total_ms: elapsed.as_secs_f64() * 1000.0,
                    },
                );
                Ok(ExplainResponse {
                    report,
                    engine,
                    fingerprint: fp.hash,
                    trace_id,
                    elapsed,
                })
            }
            Err(e) => Err(self.record_query_error(engine, trace_id, e)),
        }
    }

    /// The `analyze=1` request path: execute outside the plan cache,
    /// annotate the plan tree with actuals, and feed the estimate-vs-actual
    /// telemetry (q-error histogram, false-live counter).
    fn run_analyze(
        &self,
        sparql: &str,
        engine: EngineKind,
        threads: Option<usize>,
        trace_id: u64,
    ) -> Result<QueryResponse, StoreError> {
        let start = Instant::now();
        let fp = match fingerprint(sparql) {
            Ok(fp) => fp,
            Err(e) => return Err(self.record_query_error(engine, trace_id, e.into())),
        };
        match self.store.analyze(sparql, engine, threads) {
            Ok((results, report)) => {
                let elapsed = start.elapsed();
                self.record_query_success(engine, false, elapsed, &results, trace_id);
                self.metrics.record_qerrors(&report.step_qerrors());
                self.metrics.record_false_lives(report.false_live_shards());
                Ok(QueryResponse {
                    results,
                    engine,
                    cache_hit: false,
                    fingerprint: fp.hash,
                    elapsed,
                    trace_id,
                    profile: None,
                    explain: Some(report),
                })
            }
            Err(e) => Err(self.record_query_error(engine, trace_id, e)),
        }
    }

    /// Success bookkeeping shared by the query and analyze paths: engine
    /// metrics, shard counters, and the journal's completion (and, for
    /// sharded queries, pruning) events.
    fn record_query_success(
        &self,
        engine: EngineKind,
        cache_hit: bool,
        elapsed: Duration,
        results: &QueryResults,
        trace_id: u64,
    ) {
        self.metrics.record_success(engine, elapsed, &results.stats);
        self.shards_pruned
            .fetch_add(results.stats.shards_pruned as u64, Ordering::Relaxed);
        self.shards_executed
            .fetch_add(results.stats.shards_executed as u64, Ordering::Relaxed);
        if results.stats.shards_pruned + results.stats.shards_executed > 0 {
            self.journal_event(
                Some(trace_id),
                JournalEvent::ShardsPruned {
                    pruned: results.stats.shards_pruned,
                    executed: results.stats.shards_executed,
                },
            );
        }
        self.journal_event(
            Some(trace_id),
            JournalEvent::QueryCompleted {
                engine,
                cache_hit,
                solutions: results.stats.solutions,
                total_ms: elapsed.as_secs_f64() * 1000.0,
            },
        );
    }

    /// Error bookkeeping: the error counter plus the journal's failure
    /// event. Returns the error for `?`-style pass-through.
    fn record_query_error(&self, engine: EngineKind, trace_id: u64, e: StoreError) -> StoreError {
        self.metrics.record_error(engine);
        self.journal_event(
            Some(trace_id),
            JournalEvent::QueryFailed {
                engine,
                error: e.to_string(),
            },
        );
        e
    }

    /// Records one journal event stamped with the current uptime.
    fn journal_event(&self, trace_id: Option<u64>, event: JournalEvent) {
        self.journal
            .record(trace_id, self.metrics.uptime().as_secs_f64(), event);
    }

    fn run(
        &self,
        sparql: &str,
        engine: EngineKind,
        threads: Option<usize>,
        trace: &Trace,
        trace_id: u64,
    ) -> Result<(QueryResults, bool, QueryFingerprint), StoreError> {
        let fp = {
            let mut span = trace.span("fingerprint");
            let fp = fingerprint(sparql)?;
            span.counter("tokens", fp.tokens as u64);
            fp
        };
        let key = PlanKey {
            canonical: fp.canonical.clone(),
            kind: engine,
        };
        let cached = {
            let mut span = trace.span("cache_lookup");
            let cached = self.cache.get(&key);
            span.counter("hit", cached.is_some() as u64);
            cached
        };
        if let Some(plan) = cached {
            // Warm path: straight to enumeration.
            let results = self.store.run_plan_traced(&plan, threads, trace)?;
            return Ok((results, true, fp));
        }
        // Cold path: parse + transform, run, then publish the plan.
        let plan = self.store.prepare_plan_traced(sparql, engine, trace)?;
        self.plans_prepared.fetch_add(1, Ordering::Relaxed);
        let results = self.store.run_plan_traced(&plan, threads, trace)?;
        let canonical = key.canonical.clone();
        let outcome = self.cache.insert_tracked(key, plan);
        if let Some(victim) = outcome.evicted {
            self.journal_event(
                Some(trace_id),
                JournalEvent::PlanEvicted {
                    engine: victim.kind,
                    query: victim.canonical,
                },
            );
        }
        if outcome.inserted {
            self.journal_event(
                Some(trace_id),
                JournalEvent::PlanCached {
                    engine,
                    query: canonical,
                },
            );
        }
        Ok((results, false, fp))
    }

    /// Pushes one offender into the slow-query ring and logs it to stderr.
    fn record_slow(
        &self,
        report: &TraceReport,
        canonical: String,
        engine: EngineKind,
        cache_hit: bool,
        elapsed: Duration,
        results: &QueryResults,
    ) {
        let entry = SlowQueryEntry {
            trace_id: report.trace_id,
            canonical,
            engine,
            cache_hit,
            total_ms: elapsed.as_secs_f64() * 1000.0,
            stages_ms: report
                .stages()
                .into_iter()
                .map(|(name, ns)| (name, ns as f64 / 1e6))
                .collect(),
            solutions: results.stats.solutions,
            uptime_secs: self.metrics.uptime().as_secs_f64(),
        };
        let trace_id = entry.trace_id;
        let total_ms = entry.total_ms;
        let line = entry.to_log_line();
        if self.slow_log.record(entry) {
            self.journal_event(Some(trace_id), JournalEvent::SlowQuery { engine, total_ms });
            eprintln!("{line}");
        }
    }

    /// Renders every counter in Prometheus text exposition format (the
    /// `/metrics` payload): engine counters and latency histograms, stage
    /// time totals, plan-cache and store series.
    pub fn prometheus(&self) -> String {
        let mut out = String::with_capacity(8192);
        self.metrics
            .render_prometheus(&mut out, self.store.flavor_name());
        out.push_str("# HELP turbohom_plan_cache_hits_total Plan-cache hits.\n");
        out.push_str("# TYPE turbohom_plan_cache_hits_total counter\n");
        out.push_str(&format!(
            "turbohom_plan_cache_hits_total {}\n",
            self.cache.hits()
        ));
        out.push_str("# HELP turbohom_plan_cache_misses_total Plan-cache misses.\n");
        out.push_str("# TYPE turbohom_plan_cache_misses_total counter\n");
        out.push_str(&format!(
            "turbohom_plan_cache_misses_total {}\n",
            self.cache.misses()
        ));
        out.push_str("# HELP turbohom_plan_cache_evictions_total Plans evicted from the cache.\n");
        out.push_str("# TYPE turbohom_plan_cache_evictions_total counter\n");
        out.push_str(&format!(
            "turbohom_plan_cache_evictions_total {}\n",
            self.cache.evictions()
        ));
        out.push_str("# HELP turbohom_plan_cache_size Plans currently cached.\n");
        out.push_str("# TYPE turbohom_plan_cache_size gauge\n");
        out.push_str(&format!("turbohom_plan_cache_size {}\n", self.cache.len()));
        out.push_str(
            "# HELP turbohom_plans_prepared_total How many times parse + transform actually ran.\n",
        );
        out.push_str("# TYPE turbohom_plans_prepared_total counter\n");
        out.push_str(&format!(
            "turbohom_plans_prepared_total {}\n",
            self.plans_prepared.load(Ordering::Relaxed)
        ));
        out.push_str("# HELP turbohom_triples Triples in the underlying store.\n");
        out.push_str("# TYPE turbohom_triples gauge\n");
        out.push_str(&format!("turbohom_triples {}\n", self.store.triple_count()));
        out.push_str(
            "# HELP turbohom_storage_backend Active storage backend (1 = active; the snapshot label is the file path, empty for the heap backend).\n",
        );
        out.push_str("# TYPE turbohom_storage_backend gauge\n");
        out.push_str(&format!(
            "turbohom_storage_backend{{backend=\"{}\",snapshot=\"{}\"}} 1\n",
            self.store.backend_name(),
            self.store
                .snapshot_path()
                .map(|p| p.display().to_string())
                .unwrap_or_default()
                .replace('\\', "\\\\")
                .replace('"', "\\\"")
        ));
        if let Some(shards) = self.store.shard_count() {
            out.push_str(
                "# HELP turbohom_shards Sharded-execution topology (1 = active; labels carry the configuration).\n",
            );
            out.push_str("# TYPE turbohom_shards gauge\n");
            out.push_str(&format!(
                "turbohom_shards{{shards=\"{}\",partitioner=\"{}\",halo=\"{}\"}} 1\n",
                shards,
                self.store.partitioner_name().unwrap_or(""),
                self.store.halo().unwrap_or(0),
            ));
        }
        out.push_str(
            "# HELP turbohom_shards_pruned_total Shards skipped by summary pruning / ownership routing.\n",
        );
        out.push_str("# TYPE turbohom_shards_pruned_total counter\n");
        out.push_str(&format!(
            "turbohom_shards_pruned_total {}\n",
            self.shards_pruned.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP turbohom_shards_executed_total Shards that executed queries on the sharded path.\n",
        );
        out.push_str("# TYPE turbohom_shards_executed_total counter\n");
        out.push_str(&format!(
            "turbohom_shards_executed_total {}\n",
            self.shards_executed.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP turbohom_slow_queries_total Queries recorded by the slow-query recorder.\n",
        );
        out.push_str("# TYPE turbohom_slow_queries_total counter\n");
        out.push_str(&format!(
            "turbohom_slow_queries_total {}\n",
            self.slow_log.recorded()
        ));
        out.push_str(
            "# HELP turbohom_journal_events_total Events recorded by the structured event journal.\n",
        );
        out.push_str("# TYPE turbohom_journal_events_total counter\n");
        out.push_str(&format!(
            "turbohom_journal_events_total {}\n",
            self.journal.recorded()
        ));
        out
    }

    /// Takes a snapshot of every counter (the `/stats` payload).
    pub fn stats(&self) -> StatsSnapshot {
        let engines = EngineKind::all()
            .into_iter()
            .map(|kind| {
                let m = self.metrics.engine(kind);
                let ms = |d: Duration| d.as_secs_f64() * 1000.0;
                EngineStats {
                    kind,
                    store: self.store.flavor_name(),
                    queries: m.queries.load(Ordering::Relaxed),
                    errors: m.errors.load(Ordering::Relaxed),
                    qps: self.metrics.qps(kind),
                    mean_ms: ms(m.latency.mean()),
                    p50_ms: ms(m.latency.quantile(0.50)),
                    p95_ms: ms(m.latency.quantile(0.95)),
                    p99_ms: ms(m.latency.quantile(0.99)),
                    solutions: m.solutions.load(Ordering::Relaxed),
                    intersection_ops: m.intersection_ops.load(Ordering::Relaxed),
                    morsels: m.morsels.load(Ordering::Relaxed),
                    morsels_stolen: m.morsels_stolen.load(Ordering::Relaxed),
                }
            })
            .collect();
        StatsSnapshot {
            uptime_seconds: self.metrics.uptime().as_secs_f64(),
            store_flavor: self.store.flavor_name(),
            triples: self.store.triple_count(),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_evictions: self.cache.evictions(),
            cache_size: self.cache.len(),
            plans_prepared: self.plans_prepared.load(Ordering::Relaxed),
            engines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbohom_rdf::{vocab, Dataset};

    fn ub(l: &str) -> String {
        format!("http://ub.org/{l}")
    }

    fn service() -> QueryService {
        let mut ds = Dataset::new();
        for i in 0..3 {
            let s = ub(&format!("student{i}"));
            ds.insert_iris(&s, vocab::RDF_TYPE, &ub("Student"));
            ds.insert_iris(&s, &ub("memberOf"), &ub("dept0"));
        }
        QueryService::new(Arc::new(Store::from_dataset(ds)))
    }

    const Q: &str = r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
                       PREFIX ub: <http://ub.org/>
                       SELECT ?x WHERE { ?x rdf:type ub:Student . }"#;

    #[test]
    fn warm_path_skips_parse_and_transform_entirely() {
        let svc = service();
        let cold = svc.query(Q, QueryOptions::default()).unwrap();
        assert!(!cold.cache_hit);
        let warm = svc.query(Q, QueryOptions::default()).unwrap();
        assert!(warm.cache_hit);
        assert_eq!(warm.results.rows, cold.results.rows);
        assert_eq!(warm.fingerprint, cold.fingerprint);
        let stats = svc.stats();
        // The prepare half (parse + transform) ran exactly once.
        assert_eq!(stats.plans_prepared, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_size, 1);
    }

    #[test]
    fn spelling_variants_share_one_plan() {
        let svc = service();
        svc.query(Q, QueryOptions::default()).unwrap();
        // Different whitespace, prefix names and keyword case — same plan.
        let variant = "PREFIX t: <http://ub.org/>\nselect ?x\nwhere { ?x a t:Student . }";
        let r = svc.query(variant, QueryOptions::default()).unwrap();
        assert!(r.cache_hit);
        assert_eq!(svc.stats().plans_prepared, 1);
    }

    #[test]
    fn engines_get_separate_plans_and_metrics() {
        let svc = service();
        let a = svc.query(Q, QueryOptions::default()).unwrap();
        let b = svc
            .query(
                Q,
                QueryOptions {
                    engine: Some(EngineKind::MergeJoin),
                    ..QueryOptions::default()
                },
            )
            .unwrap();
        assert!(!b.cache_hit);
        assert_eq!(a.results.len(), b.results.len());
        let stats = svc.stats();
        assert_eq!(
            stats.engines[EngineKind::TurboHomPlusPlus.index()].queries,
            1
        );
        assert_eq!(stats.engines[EngineKind::MergeJoin.index()].queries, 1);
        assert_eq!(stats.plans_prepared, 2);
    }

    #[test]
    fn errors_are_counted_and_surfaced() {
        let svc = service();
        assert!(svc
            .query("SELECT WHERE {", QueryOptions::default())
            .is_err());
        let stats = svc.stats();
        assert_eq!(
            stats.engines[EngineKind::TurboHomPlusPlus.index()].errors,
            1
        );
        assert_eq!(
            stats.engines[EngineKind::TurboHomPlusPlus.index()].queries,
            0
        );
    }

    #[test]
    fn per_request_threads_are_clamped() {
        let svc = service();
        let r = svc
            .query(
                Q,
                QueryOptions {
                    threads: Some(1_000_000),
                    ..QueryOptions::default()
                },
            )
            .unwrap();
        assert_eq!(r.results.len(), 3);
    }

    #[test]
    fn profile_mode_returns_a_full_stage_breakdown() {
        let svc = service();
        let cold = svc
            .query(
                Q,
                QueryOptions {
                    profile: true,
                    ..QueryOptions::default()
                },
            )
            .unwrap();
        let report = cold.profile.as_ref().unwrap();
        assert_eq!(report.trace_id, cold.trace_id);
        // Cold request: all five pipeline stages, in order.
        let names: Vec<&str> = report.stages().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "fingerprint",
                "cache_lookup",
                "parse",
                "transform",
                "execute"
            ]
        );
        // The stage roll-up covers (almost) the whole request: stages are
        // what the request *does*, so their sum can only miss the small
        // gaps between spans.
        assert!(report.stage_total_ns() <= report.total_ns);
        // Detailed trace: the core recorded enumeration under execute.
        assert!(report.span_total_ns("enumeration") > 0);
        let fingerprint_span = report
            .spans
            .iter()
            .find(|s| s.name == "fingerprint")
            .unwrap();
        assert!(fingerprint_span
            .counters
            .iter()
            .any(|(n, _)| *n == "tokens"));

        // Warm request: no parse/transform stages, cache_lookup hit=1.
        let warm = svc
            .query(
                Q,
                QueryOptions {
                    profile: true,
                    ..QueryOptions::default()
                },
            )
            .unwrap();
        let report = warm.profile.as_ref().unwrap();
        let names: Vec<&str> = report.stages().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["fingerprint", "cache_lookup", "execute"]);
        let lookup = report
            .spans
            .iter()
            .find(|s| s.name == "cache_lookup")
            .unwrap();
        assert_eq!(lookup.counters, vec![("hit", 1)]);
        // Ids are distinct and monotonically assigned.
        assert!(warm.trace_id > cold.trace_id);
    }

    #[test]
    fn unprofiled_requests_skip_the_report_but_feed_stage_totals() {
        let svc = service();
        let r = svc.query(Q, QueryOptions::default()).unwrap();
        assert!(r.profile.is_none());
        assert!(r.trace_id > 0);
        // The coarse trace still fed the per-stage time totals.
        let totals = svc.metrics().stage_totals();
        assert!(totals.seconds("fingerprint") > 0.0);
        assert!(totals.seconds("execute") > 0.0);
        let exposition = svc.prometheus();
        assert!(exposition.contains("# TYPE turbohom_stage_seconds_total counter"));
    }

    #[test]
    fn slow_log_records_offenders_with_their_stage_breakdown() {
        let mut ds = Dataset::new();
        for i in 0..3 {
            let s = ub(&format!("student{i}"));
            ds.insert_iris(&s, vocab::RDF_TYPE, &ub("Student"));
        }
        // Threshold zero: every query is an offender.
        let svc = QueryService::with_config(
            Arc::new(Store::from_dataset(ds)),
            ServiceConfig {
                slow_query: Some(Duration::ZERO),
                slow_log_capacity: 4,
                ..ServiceConfig::default()
            },
        );
        let r = svc.query(Q, QueryOptions::default()).unwrap();
        let entries = svc.slow_log().snapshot();
        assert_eq!(entries.len(), 1);
        let entry = &entries[0];
        assert_eq!(entry.trace_id, r.trace_id);
        assert_eq!(entry.engine, EngineKind::TurboHomPlusPlus);
        assert!(!entry.cache_hit);
        assert_eq!(entry.solutions, 3);
        assert!(entry.canonical.contains("SELECT"));
        let stage_names: Vec<&str> = entry.stages_ms.iter().map(|(n, _)| *n).collect();
        assert!(stage_names.contains(&"parse"));
        assert!(stage_names.contains(&"execute"));
        assert!(svc.prometheus().contains("turbohom_slow_queries_total 1"));
    }

    #[test]
    fn disabled_slow_log_stays_empty() {
        let svc = QueryService::with_any_store(
            service().store().clone(),
            ServiceConfig {
                slow_query: None,
                ..ServiceConfig::default()
            },
        );
        svc.query(Q, QueryOptions::default()).unwrap();
        assert!(svc.slow_log().snapshot().is_empty());
        assert!(svc.slow_log().to_json().contains("\"threshold_ms\":null"));
    }

    #[test]
    fn prometheus_exposition_covers_cache_and_store_series() {
        let svc = service().with_dataset_label("test-ds");
        svc.query(Q, QueryOptions::default()).unwrap();
        svc.query(Q, QueryOptions::default()).unwrap();
        let out = svc.prometheus();
        assert!(out.contains("turbohom_plan_cache_hits_total 1\n"));
        assert!(out.contains("turbohom_plan_cache_misses_total 1\n"));
        assert!(out.contains("turbohom_plan_cache_size 1\n"));
        assert!(out.contains("turbohom_plans_prepared_total 1\n"));
        assert!(out.contains("turbohom_triples 6\n"));
        assert!(out.contains("turbohom_storage_backend{backend=\"heap\",snapshot=\"\"} 1\n"));
        assert!(out.contains("turbohom_queries_total{engine=\"turbohom++\",store=\"single\"} 2\n"));
        assert!(out.contains(
            "turbohom_query_latency_seconds_count{engine=\"turbohom++\",store=\"single\"} 2\n"
        ));
        assert_eq!(svc.dataset_label(), "test-ds");
    }

    #[test]
    fn stats_json_is_well_formed() {
        let svc = service();
        svc.query(Q, QueryOptions::default()).unwrap();
        let json = svc.stats().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"plan_cache\""));
        assert!(json.contains("\"turbohom++\""));
        assert!(json.contains("\"p99\""));
        // Satellite: the store flavor labels the snapshot and every engine.
        assert!(json.contains("\"store\":\"single\""));
        assert_eq!(svc.stats().store_flavor, "single");
        // Balanced braces (cheap sanity check without a JSON parser).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn explain_builds_the_plan_without_executing() {
        let svc = service();
        let r = svc.explain(Q, QueryOptions::default()).unwrap();
        assert!(!r.report.analyzed);
        assert_eq!(r.report.store_flavor, "single");
        assert!(r.report.to_json().contains("\"mode\":\"explain\""));
        // Nothing ran: no success metrics, no plan prepared, no cache entry.
        let stats = svc.stats();
        assert_eq!(
            stats.engines[EngineKind::TurboHomPlusPlus.index()].queries,
            0
        );
        assert_eq!(stats.plans_prepared, 0);
        assert_eq!(stats.cache_size, 0);
        // But the request is journaled with its trace id.
        let jsonl = svc.journal().to_jsonl();
        assert!(jsonl.contains("\"mode\":\"explain\""));
        assert!(jsonl.contains(&format!(
            "\"trace\":\"{}\"",
            crate::format_trace_id(r.trace_id)
        )));
    }

    #[test]
    fn analyze_executes_and_feeds_qerror_telemetry() {
        let svc = service();
        let r = svc
            .query(
                Q,
                QueryOptions {
                    analyze: true,
                    ..QueryOptions::default()
                },
            )
            .unwrap();
        assert_eq!(r.results.len(), 3);
        let report = r.explain.as_ref().unwrap();
        assert!(report.analyzed);
        assert!(report.max_qerror().is_some());
        // The per-step q-errors landed in the histogram …
        assert!(svc.metrics().qerror().count() > 0);
        let exposition = svc.prometheus();
        assert!(exposition.contains("# TYPE turbohom_estimate_qerror histogram"));
        assert!(exposition.contains("turbohom_estimate_qerror_count"));
        assert!(exposition.contains("turbohom_summary_prune_errors_total 0"));
        // … and the run still counted as a normal successful query.
        assert_eq!(
            svc.stats().engines[EngineKind::TurboHomPlusPlus.index()].queries,
            1
        );
    }

    #[test]
    fn journal_records_the_query_lifecycle_with_trace_ids() {
        let svc = service();
        let ok = svc.query(Q, QueryOptions::default()).unwrap();
        assert!(svc
            .query("SELECT WHERE {", QueryOptions::default())
            .is_err());
        let jsonl = svc.journal().to_jsonl();
        // Startup + admitted/cached/completed + admitted/failed.
        assert!(jsonl.contains("\"event\":\"store_loaded\""));
        assert!(jsonl.contains("\"event\":\"query_admitted\""));
        assert!(jsonl.contains("\"event\":\"plan_cached\""));
        assert!(jsonl.contains("\"event\":\"query_completed\""));
        assert!(jsonl.contains("\"event\":\"query_failed\""));
        let id = crate::format_trace_id(ok.trace_id);
        // The successful request's admitted/cached/completed lines share
        // one trace id.
        assert!(
            jsonl
                .lines()
                .filter(|l| l.contains(&format!("\"trace\":\"{id}\"")))
                .count()
                >= 3
        );
        assert!(svc.prometheus().contains("turbohom_journal_events_total"));
    }

    #[test]
    fn prometheus_engine_counters_carry_the_store_flavor() {
        let svc = service();
        svc.query(Q, QueryOptions::default()).unwrap();
        let out = svc.prometheus();
        assert!(out.contains("turbohom_queries_total{engine=\"turbohom++\",store=\"single\"} 1"));
        assert!(out.contains(
            "turbohom_query_latency_seconds_count{engine=\"turbohom++\",store=\"single\"} 1"
        ));
    }
}
