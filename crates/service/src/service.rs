//! The [`QueryService`]: a shared, thread-safe query front-end over one
//! [`Store`].
//!
//! Request path:
//!
//! 1. normalize + fingerprint the query text (cheap: one lexer pass),
//! 2. look the `(canonical, engine)` key up in the LRU plan cache,
//! 3. **hit** → jump straight to enumeration via [`Store::run_plan_with`]
//!    (no parsing, no transformation, and — via the plan's memoized
//!    matching order — no order determination either),
//! 4. **miss** → [`Store::prepare_plan`] (parse + transform), run it, and
//!    cache the plan for the next request.
//!
//! The service counts how many times the expensive prepare half actually
//! ran ([`StatsSnapshot::plans_prepared`]), which is what the warm-path
//! tests assert on: repeated queries must not re-parse or re-transform.

use crate::cache::{PlanCache, PlanKey};
use crate::metrics::ServiceMetrics;
use crate::slow::{SlowQueryEntry, SlowQueryLog};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use turbohom_engine::{
    json_escape, AnyStore, EngineKind, QueryResults, Store, StoreError, Trace, TraceReport,
};
use turbohom_sparql::{fingerprint, QueryFingerprint};

/// Configuration of a [`QueryService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Maximum number of cached plans (per-engine entries count separately).
    pub plan_cache_capacity: usize,
    /// Engine used when a request does not name one.
    pub default_engine: EngineKind,
    /// Upper bound for the per-request `threads` override (defends the
    /// thread pool against `threads=10000` requests).
    pub max_threads: usize,
    /// Queries at or above this latency land in the slow-query recorder
    /// (`Duration::ZERO` records everything, `None` disables it).
    pub slow_query: Option<Duration>,
    /// Ring capacity of the slow-query recorder.
    pub slow_log_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            plan_cache_capacity: 256,
            default_engine: EngineKind::TurboHomPlusPlus,
            max_threads: 64,
            slow_query: Some(Duration::from_millis(500)),
            slow_log_capacity: 32,
        }
    }
}

/// Per-request execution options.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryOptions {
    /// Engine to execute with (`None` = the service default).
    pub engine: Option<EngineKind>,
    /// Worker-thread override for this request only.
    pub threads: Option<usize>,
    /// PROFILE mode: collect a detailed trace (per-stage and per-worker
    /// spans) and return it in [`QueryResponse::profile`].
    pub profile: bool,
}

/// The outcome of one service query.
pub struct QueryResponse {
    /// The query results.
    pub results: QueryResults,
    /// The engine that answered.
    pub engine: EngineKind,
    /// Whether the plan came from the cache.
    pub cache_hit: bool,
    /// The 64-bit fingerprint of the normalized query.
    pub fingerprint: u64,
    /// Wall clock for the whole request (fingerprint + plan + run + render).
    pub elapsed: Duration,
    /// The request's trace id (`X-Trace-Id`; ties the response to the
    /// access log and slow-query recorder).
    pub trace_id: u64,
    /// The detailed trace, present when [`QueryOptions::profile`] was set.
    pub profile: Option<TraceReport>,
}

/// A point-in-time view of the service counters (served as `/stats`).
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Seconds since the service started.
    pub uptime_seconds: f64,
    /// Triples in the underlying store.
    pub triples: usize,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses.
    pub cache_misses: u64,
    /// Plans evicted from the cache.
    pub cache_evictions: u64,
    /// Plans currently cached.
    pub cache_size: usize,
    /// How many times the prepare half (parse + transform) actually ran.
    pub plans_prepared: u64,
    /// Per-engine counters, in [`EngineKind::all`] order.
    pub engines: Vec<EngineStats>,
}

/// Per-engine counters inside a [`StatsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStats {
    /// The engine.
    pub kind: EngineKind,
    /// Successfully answered queries.
    pub queries: u64,
    /// Failed queries.
    pub errors: u64,
    /// Queries per second over the uptime.
    pub qps: f64,
    /// Mean request latency in milliseconds.
    pub mean_ms: f64,
    /// Estimated 50th/95th/99th latency percentiles in milliseconds.
    pub p50_ms: f64,
    /// 95th percentile (ms).
    pub p95_ms: f64,
    /// 99th percentile (ms).
    pub p99_ms: f64,
    /// Solutions returned across all successful queries.
    pub solutions: u64,
    /// Cumulative `+INT` k-way intersections run by the matcher.
    pub intersection_ops: u64,
    /// Cumulative morsels executed by the work-stealing scheduler.
    pub morsels: u64,
    /// Cumulative morsels obtained by stealing.
    pub morsels_stolen: u64,
}

impl StatsSnapshot {
    /// Renders the snapshot as a JSON object (the `/stats` payload).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str(&format!(
            "{{\"uptime_seconds\":{:.3},\"triples\":{},\"plan_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"size\":{}}},\"plans_prepared\":{},\"engines\":{{",
            self.uptime_seconds,
            self.triples,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.cache_size,
            self.plans_prepared,
        ));
        for (i, e) in self.engines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"queries\":{},\"errors\":{},\"qps\":{:.3},\"latency_ms\":{{\"mean\":{:.3},\"p50\":{:.3},\"p95\":{:.3},\"p99\":{:.3}}},\"matcher\":{{\"solutions\":{},\"intersection_ops\":{},\"morsels\":{},\"morsels_stolen\":{}}}}}",
                json_escape(e.kind.name()),
                e.queries,
                e.errors,
                e.qps,
                e.mean_ms,
                e.p50_ms,
                e.p95_ms,
                e.p99_ms,
                e.solutions,
                e.intersection_ops,
                e.morsels,
                e.morsels_stolen,
            ));
        }
        out.push_str("}}");
        out
    }
}

/// A concurrent SPARQL query service over one shared store — a single
/// [`Store`] or a sharded scatter-gather store ([`AnyStore`]).
pub struct QueryService {
    store: AnyStore,
    config: ServiceConfig,
    cache: PlanCache,
    metrics: ServiceMetrics,
    plans_prepared: AtomicU64,
    /// Shards skipped by summary pruning / ownership routing, summed over
    /// every successful sharded query (`turbohom_shards_pruned_total`).
    shards_pruned: AtomicU64,
    /// Shards that actually executed, summed likewise.
    shards_executed: AtomicU64,
    slow_log: SlowQueryLog,
    next_trace_id: AtomicU64,
    dataset_label: String,
}

impl QueryService {
    /// Creates a service with default configuration.
    pub fn new(store: Arc<Store>) -> Self {
        Self::with_config(store, ServiceConfig::default())
    }

    /// Creates a service with the given configuration.
    pub fn with_config(store: Arc<Store>, config: ServiceConfig) -> Self {
        Self::with_any_store(AnyStore::Single(store), config)
    }

    /// Creates a service over either store flavor (the server uses this to
    /// boot `--shards=k`).
    pub fn with_any_store(store: AnyStore, config: ServiceConfig) -> Self {
        QueryService {
            store,
            cache: PlanCache::new(config.plan_cache_capacity),
            metrics: ServiceMetrics::new(),
            plans_prepared: AtomicU64::new(0),
            shards_pruned: AtomicU64::new(0),
            shards_executed: AtomicU64::new(0),
            slow_log: SlowQueryLog::new(config.slow_log_capacity, config.slow_query),
            next_trace_id: AtomicU64::new(1),
            dataset_label: "unnamed".into(),
            config,
        }
    }

    /// Sets the dataset label reported by `/healthz` (builder style, e.g.
    /// `"lubm-1"` or the N-Triples file name).
    pub fn with_dataset_label(mut self, label: impl Into<String>) -> Self {
        self.dataset_label = label.into();
        self
    }

    /// The dataset label reported by `/healthz`.
    pub fn dataset_label(&self) -> &str {
        &self.dataset_label
    }

    /// The shared store (single or sharded).
    pub fn store(&self) -> &AnyStore {
        &self.store
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The service metrics (counters, histograms, stage totals).
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// The slow-query recorder (served as `/debug/slow`).
    pub fn slow_log(&self) -> &SlowQueryLog {
        &self.slow_log
    }

    /// Seconds since the service started.
    pub fn uptime(&self) -> Duration {
        self.metrics.uptime()
    }

    /// Answers one query.
    ///
    /// Every request runs under a coarse trace (a handful of spans feeding
    /// the per-stage time totals in `/metrics` and the slow-query recorder);
    /// [`QueryOptions::profile`] upgrades it to a detailed trace whose
    /// report comes back in [`QueryResponse::profile`].
    pub fn query(&self, sparql: &str, options: QueryOptions) -> Result<QueryResponse, StoreError> {
        let engine = options.engine.unwrap_or(self.config.default_engine);
        let threads = options.threads.map(|t| t.clamp(1, self.config.max_threads));
        let trace_id = self.next_trace_id.fetch_add(1, Ordering::Relaxed);
        let trace = if options.profile {
            Trace::detailed(trace_id)
        } else {
            Trace::new(trace_id)
        };
        let start = Instant::now();
        let outcome = self.run(sparql, engine, threads, &trace);
        match outcome {
            Ok((results, cache_hit, fp)) => {
                let elapsed = start.elapsed();
                self.metrics.record_success(engine, elapsed, &results.stats);
                self.shards_pruned
                    .fetch_add(results.stats.shards_pruned as u64, Ordering::Relaxed);
                self.shards_executed
                    .fetch_add(results.stats.shards_executed as u64, Ordering::Relaxed);
                let report = trace.finish();
                self.metrics.record_stages(&report);
                if self.slow_log.is_slow(elapsed) {
                    self.record_slow(&report, fp.canonical, engine, cache_hit, elapsed, &results);
                }
                Ok(QueryResponse {
                    results,
                    engine,
                    cache_hit,
                    fingerprint: fp.hash,
                    elapsed,
                    trace_id,
                    profile: options.profile.then_some(report),
                })
            }
            Err(e) => {
                self.metrics.record_error(engine);
                Err(e)
            }
        }
    }

    fn run(
        &self,
        sparql: &str,
        engine: EngineKind,
        threads: Option<usize>,
        trace: &Trace,
    ) -> Result<(QueryResults, bool, QueryFingerprint), StoreError> {
        let fp = {
            let mut span = trace.span("fingerprint");
            let fp = fingerprint(sparql)?;
            span.counter("tokens", fp.tokens as u64);
            fp
        };
        let key = PlanKey {
            canonical: fp.canonical.clone(),
            kind: engine,
        };
        let cached = {
            let mut span = trace.span("cache_lookup");
            let cached = self.cache.get(&key);
            span.counter("hit", cached.is_some() as u64);
            cached
        };
        if let Some(plan) = cached {
            // Warm path: straight to enumeration.
            let results = self.store.run_plan_traced(&plan, threads, trace)?;
            return Ok((results, true, fp));
        }
        // Cold path: parse + transform, run, then publish the plan.
        let plan = self.store.prepare_plan_traced(sparql, engine, trace)?;
        self.plans_prepared.fetch_add(1, Ordering::Relaxed);
        let results = self.store.run_plan_traced(&plan, threads, trace)?;
        self.cache.insert(key, plan);
        Ok((results, false, fp))
    }

    /// Pushes one offender into the slow-query ring and logs it to stderr.
    fn record_slow(
        &self,
        report: &TraceReport,
        canonical: String,
        engine: EngineKind,
        cache_hit: bool,
        elapsed: Duration,
        results: &QueryResults,
    ) {
        let entry = SlowQueryEntry {
            trace_id: report.trace_id,
            canonical,
            engine,
            cache_hit,
            total_ms: elapsed.as_secs_f64() * 1000.0,
            stages_ms: report
                .stages()
                .into_iter()
                .map(|(name, ns)| (name, ns as f64 / 1e6))
                .collect(),
            solutions: results.stats.solutions,
            uptime_secs: self.metrics.uptime().as_secs_f64(),
        };
        let line = entry.to_log_line();
        if self.slow_log.record(entry) {
            eprintln!("{line}");
        }
    }

    /// Renders every counter in Prometheus text exposition format (the
    /// `/metrics` payload): engine counters and latency histograms, stage
    /// time totals, plan-cache and store series.
    pub fn prometheus(&self) -> String {
        let mut out = String::with_capacity(8192);
        self.metrics.render_prometheus(&mut out);
        out.push_str("# HELP turbohom_plan_cache_hits_total Plan-cache hits.\n");
        out.push_str("# TYPE turbohom_plan_cache_hits_total counter\n");
        out.push_str(&format!(
            "turbohom_plan_cache_hits_total {}\n",
            self.cache.hits()
        ));
        out.push_str("# HELP turbohom_plan_cache_misses_total Plan-cache misses.\n");
        out.push_str("# TYPE turbohom_plan_cache_misses_total counter\n");
        out.push_str(&format!(
            "turbohom_plan_cache_misses_total {}\n",
            self.cache.misses()
        ));
        out.push_str("# HELP turbohom_plan_cache_evictions_total Plans evicted from the cache.\n");
        out.push_str("# TYPE turbohom_plan_cache_evictions_total counter\n");
        out.push_str(&format!(
            "turbohom_plan_cache_evictions_total {}\n",
            self.cache.evictions()
        ));
        out.push_str("# HELP turbohom_plan_cache_size Plans currently cached.\n");
        out.push_str("# TYPE turbohom_plan_cache_size gauge\n");
        out.push_str(&format!("turbohom_plan_cache_size {}\n", self.cache.len()));
        out.push_str(
            "# HELP turbohom_plans_prepared_total How many times parse + transform actually ran.\n",
        );
        out.push_str("# TYPE turbohom_plans_prepared_total counter\n");
        out.push_str(&format!(
            "turbohom_plans_prepared_total {}\n",
            self.plans_prepared.load(Ordering::Relaxed)
        ));
        out.push_str("# HELP turbohom_triples Triples in the underlying store.\n");
        out.push_str("# TYPE turbohom_triples gauge\n");
        out.push_str(&format!("turbohom_triples {}\n", self.store.triple_count()));
        out.push_str(
            "# HELP turbohom_storage_backend Active storage backend (1 = active; the snapshot label is the file path, empty for the heap backend).\n",
        );
        out.push_str("# TYPE turbohom_storage_backend gauge\n");
        out.push_str(&format!(
            "turbohom_storage_backend{{backend=\"{}\",snapshot=\"{}\"}} 1\n",
            self.store.backend_name(),
            self.store
                .snapshot_path()
                .map(|p| p.display().to_string())
                .unwrap_or_default()
                .replace('\\', "\\\\")
                .replace('"', "\\\"")
        ));
        if let Some(shards) = self.store.shard_count() {
            out.push_str(
                "# HELP turbohom_shards Sharded-execution topology (1 = active; labels carry the configuration).\n",
            );
            out.push_str("# TYPE turbohom_shards gauge\n");
            out.push_str(&format!(
                "turbohom_shards{{shards=\"{}\",partitioner=\"{}\",halo=\"{}\"}} 1\n",
                shards,
                self.store.partitioner_name().unwrap_or(""),
                self.store.halo().unwrap_or(0),
            ));
        }
        out.push_str(
            "# HELP turbohom_shards_pruned_total Shards skipped by summary pruning / ownership routing.\n",
        );
        out.push_str("# TYPE turbohom_shards_pruned_total counter\n");
        out.push_str(&format!(
            "turbohom_shards_pruned_total {}\n",
            self.shards_pruned.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP turbohom_shards_executed_total Shards that executed queries on the sharded path.\n",
        );
        out.push_str("# TYPE turbohom_shards_executed_total counter\n");
        out.push_str(&format!(
            "turbohom_shards_executed_total {}\n",
            self.shards_executed.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP turbohom_slow_queries_total Queries recorded by the slow-query recorder.\n",
        );
        out.push_str("# TYPE turbohom_slow_queries_total counter\n");
        out.push_str(&format!(
            "turbohom_slow_queries_total {}\n",
            self.slow_log.recorded()
        ));
        out
    }

    /// Takes a snapshot of every counter (the `/stats` payload).
    pub fn stats(&self) -> StatsSnapshot {
        let engines = EngineKind::all()
            .into_iter()
            .map(|kind| {
                let m = self.metrics.engine(kind);
                let ms = |d: Duration| d.as_secs_f64() * 1000.0;
                EngineStats {
                    kind,
                    queries: m.queries.load(Ordering::Relaxed),
                    errors: m.errors.load(Ordering::Relaxed),
                    qps: self.metrics.qps(kind),
                    mean_ms: ms(m.latency.mean()),
                    p50_ms: ms(m.latency.quantile(0.50)),
                    p95_ms: ms(m.latency.quantile(0.95)),
                    p99_ms: ms(m.latency.quantile(0.99)),
                    solutions: m.solutions.load(Ordering::Relaxed),
                    intersection_ops: m.intersection_ops.load(Ordering::Relaxed),
                    morsels: m.morsels.load(Ordering::Relaxed),
                    morsels_stolen: m.morsels_stolen.load(Ordering::Relaxed),
                }
            })
            .collect();
        StatsSnapshot {
            uptime_seconds: self.metrics.uptime().as_secs_f64(),
            triples: self.store.triple_count(),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_evictions: self.cache.evictions(),
            cache_size: self.cache.len(),
            plans_prepared: self.plans_prepared.load(Ordering::Relaxed),
            engines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbohom_rdf::{vocab, Dataset};

    fn ub(l: &str) -> String {
        format!("http://ub.org/{l}")
    }

    fn service() -> QueryService {
        let mut ds = Dataset::new();
        for i in 0..3 {
            let s = ub(&format!("student{i}"));
            ds.insert_iris(&s, vocab::RDF_TYPE, &ub("Student"));
            ds.insert_iris(&s, &ub("memberOf"), &ub("dept0"));
        }
        QueryService::new(Arc::new(Store::from_dataset(ds)))
    }

    const Q: &str = r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
                       PREFIX ub: <http://ub.org/>
                       SELECT ?x WHERE { ?x rdf:type ub:Student . }"#;

    #[test]
    fn warm_path_skips_parse_and_transform_entirely() {
        let svc = service();
        let cold = svc.query(Q, QueryOptions::default()).unwrap();
        assert!(!cold.cache_hit);
        let warm = svc.query(Q, QueryOptions::default()).unwrap();
        assert!(warm.cache_hit);
        assert_eq!(warm.results.rows, cold.results.rows);
        assert_eq!(warm.fingerprint, cold.fingerprint);
        let stats = svc.stats();
        // The prepare half (parse + transform) ran exactly once.
        assert_eq!(stats.plans_prepared, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_size, 1);
    }

    #[test]
    fn spelling_variants_share_one_plan() {
        let svc = service();
        svc.query(Q, QueryOptions::default()).unwrap();
        // Different whitespace, prefix names and keyword case — same plan.
        let variant = "PREFIX t: <http://ub.org/>\nselect ?x\nwhere { ?x a t:Student . }";
        let r = svc.query(variant, QueryOptions::default()).unwrap();
        assert!(r.cache_hit);
        assert_eq!(svc.stats().plans_prepared, 1);
    }

    #[test]
    fn engines_get_separate_plans_and_metrics() {
        let svc = service();
        let a = svc.query(Q, QueryOptions::default()).unwrap();
        let b = svc
            .query(
                Q,
                QueryOptions {
                    engine: Some(EngineKind::MergeJoin),
                    ..QueryOptions::default()
                },
            )
            .unwrap();
        assert!(!b.cache_hit);
        assert_eq!(a.results.len(), b.results.len());
        let stats = svc.stats();
        assert_eq!(
            stats.engines[EngineKind::TurboHomPlusPlus.index()].queries,
            1
        );
        assert_eq!(stats.engines[EngineKind::MergeJoin.index()].queries, 1);
        assert_eq!(stats.plans_prepared, 2);
    }

    #[test]
    fn errors_are_counted_and_surfaced() {
        let svc = service();
        assert!(svc
            .query("SELECT WHERE {", QueryOptions::default())
            .is_err());
        let stats = svc.stats();
        assert_eq!(
            stats.engines[EngineKind::TurboHomPlusPlus.index()].errors,
            1
        );
        assert_eq!(
            stats.engines[EngineKind::TurboHomPlusPlus.index()].queries,
            0
        );
    }

    #[test]
    fn per_request_threads_are_clamped() {
        let svc = service();
        let r = svc
            .query(
                Q,
                QueryOptions {
                    engine: None,
                    threads: Some(1_000_000),
                    profile: false,
                },
            )
            .unwrap();
        assert_eq!(r.results.len(), 3);
    }

    #[test]
    fn profile_mode_returns_a_full_stage_breakdown() {
        let svc = service();
        let cold = svc
            .query(
                Q,
                QueryOptions {
                    profile: true,
                    ..QueryOptions::default()
                },
            )
            .unwrap();
        let report = cold.profile.as_ref().unwrap();
        assert_eq!(report.trace_id, cold.trace_id);
        // Cold request: all five pipeline stages, in order.
        let names: Vec<&str> = report.stages().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "fingerprint",
                "cache_lookup",
                "parse",
                "transform",
                "execute"
            ]
        );
        // The stage roll-up covers (almost) the whole request: stages are
        // what the request *does*, so their sum can only miss the small
        // gaps between spans.
        assert!(report.stage_total_ns() <= report.total_ns);
        // Detailed trace: the core recorded enumeration under execute.
        assert!(report.span_total_ns("enumeration") > 0);
        let fingerprint_span = report
            .spans
            .iter()
            .find(|s| s.name == "fingerprint")
            .unwrap();
        assert!(fingerprint_span
            .counters
            .iter()
            .any(|(n, _)| *n == "tokens"));

        // Warm request: no parse/transform stages, cache_lookup hit=1.
        let warm = svc
            .query(
                Q,
                QueryOptions {
                    profile: true,
                    ..QueryOptions::default()
                },
            )
            .unwrap();
        let report = warm.profile.as_ref().unwrap();
        let names: Vec<&str> = report.stages().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["fingerprint", "cache_lookup", "execute"]);
        let lookup = report
            .spans
            .iter()
            .find(|s| s.name == "cache_lookup")
            .unwrap();
        assert_eq!(lookup.counters, vec![("hit", 1)]);
        // Ids are distinct and monotonically assigned.
        assert!(warm.trace_id > cold.trace_id);
    }

    #[test]
    fn unprofiled_requests_skip_the_report_but_feed_stage_totals() {
        let svc = service();
        let r = svc.query(Q, QueryOptions::default()).unwrap();
        assert!(r.profile.is_none());
        assert!(r.trace_id > 0);
        // The coarse trace still fed the per-stage time totals.
        let totals = svc.metrics().stage_totals();
        assert!(totals.seconds("fingerprint") > 0.0);
        assert!(totals.seconds("execute") > 0.0);
        let exposition = svc.prometheus();
        assert!(exposition.contains("# TYPE turbohom_stage_seconds_total counter"));
    }

    #[test]
    fn slow_log_records_offenders_with_their_stage_breakdown() {
        let mut ds = Dataset::new();
        for i in 0..3 {
            let s = ub(&format!("student{i}"));
            ds.insert_iris(&s, vocab::RDF_TYPE, &ub("Student"));
        }
        // Threshold zero: every query is an offender.
        let svc = QueryService::with_config(
            Arc::new(Store::from_dataset(ds)),
            ServiceConfig {
                slow_query: Some(Duration::ZERO),
                slow_log_capacity: 4,
                ..ServiceConfig::default()
            },
        );
        let r = svc.query(Q, QueryOptions::default()).unwrap();
        let entries = svc.slow_log().snapshot();
        assert_eq!(entries.len(), 1);
        let entry = &entries[0];
        assert_eq!(entry.trace_id, r.trace_id);
        assert_eq!(entry.engine, EngineKind::TurboHomPlusPlus);
        assert!(!entry.cache_hit);
        assert_eq!(entry.solutions, 3);
        assert!(entry.canonical.contains("SELECT"));
        let stage_names: Vec<&str> = entry.stages_ms.iter().map(|(n, _)| *n).collect();
        assert!(stage_names.contains(&"parse"));
        assert!(stage_names.contains(&"execute"));
        assert!(svc.prometheus().contains("turbohom_slow_queries_total 1"));
    }

    #[test]
    fn disabled_slow_log_stays_empty() {
        let svc = QueryService::with_any_store(
            service().store().clone(),
            ServiceConfig {
                slow_query: None,
                ..ServiceConfig::default()
            },
        );
        svc.query(Q, QueryOptions::default()).unwrap();
        assert!(svc.slow_log().snapshot().is_empty());
        assert!(svc.slow_log().to_json().contains("\"threshold_ms\":null"));
    }

    #[test]
    fn prometheus_exposition_covers_cache_and_store_series() {
        let svc = service().with_dataset_label("test-ds");
        svc.query(Q, QueryOptions::default()).unwrap();
        svc.query(Q, QueryOptions::default()).unwrap();
        let out = svc.prometheus();
        assert!(out.contains("turbohom_plan_cache_hits_total 1\n"));
        assert!(out.contains("turbohom_plan_cache_misses_total 1\n"));
        assert!(out.contains("turbohom_plan_cache_size 1\n"));
        assert!(out.contains("turbohom_plans_prepared_total 1\n"));
        assert!(out.contains("turbohom_triples 6\n"));
        assert!(out.contains("turbohom_storage_backend{backend=\"heap\",snapshot=\"\"} 1\n"));
        assert!(out.contains("turbohom_queries_total{engine=\"turbohom++\"} 2\n"));
        assert!(out.contains("turbohom_query_latency_seconds_count{engine=\"turbohom++\"} 2\n"));
        assert_eq!(svc.dataset_label(), "test-ds");
    }

    #[test]
    fn stats_json_is_well_formed() {
        let svc = service();
        svc.query(Q, QueryOptions::default()).unwrap();
        let json = svc.stats().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"plan_cache\""));
        assert!(json.contains("\"turbohom++\""));
        assert!(json.contains("\"p99\""));
        // Balanced braces (cheap sanity check without a JSON parser).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }
}
