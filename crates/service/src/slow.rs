//! The slow-query recorder: a fixed-size ring buffer of the most recent
//! queries that crossed a latency threshold.
//!
//! The write path is designed so that *fast* queries (the overwhelming
//! majority) pay one comparison and nothing else. A slow query claims a
//! slot with a single `fetch_add` on the ring head and writes its entry
//! under that slot's own mutex — concurrent offenders hit different slots,
//! so recording never serializes the request path.
//!
//! Entries keep everything needed to reconstruct *why* a query was slow
//! without re-running it: the canonical (normalized) text, the engine, the
//! per-stage breakdown from the request's trace, and the trace id that ties
//! the entry to the access log. The service exposes the buffer at
//! `GET /debug/slow` and emits one structured stderr line per offender.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use turbohom_engine::{format_trace_id, json_escape, EngineKind};

/// Canonical query text is truncated to this many bytes in an entry (the
/// buffer must stay small even if someone sends 1 MiB queries).
const MAX_CANONICAL_LEN: usize = 512;

/// One recorded slow query.
#[derive(Debug, Clone)]
pub struct SlowQueryEntry {
    /// Trace id of the offending request (matches `X-Trace-Id`).
    pub trace_id: u64,
    /// Canonical (normalized) query text, truncated to 512 bytes.
    pub canonical: String,
    /// The engine that answered.
    pub engine: EngineKind,
    /// Whether the plan came from the cache.
    pub cache_hit: bool,
    /// Total request latency in milliseconds.
    pub total_ms: f64,
    /// Per-stage breakdown (stage name, milliseconds), pipeline order.
    pub stages_ms: Vec<(&'static str, f64)>,
    /// Solutions the query produced.
    pub solutions: usize,
    /// Service uptime (seconds) when the query finished — a poor man's
    /// timestamp that needs no clock beyond the service's own.
    pub uptime_secs: f64,
}

impl SlowQueryEntry {
    /// Renders the entry as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160 + self.canonical.len());
        out.push_str("{\"trace_id\":\"");
        out.push_str(&format_trace_id(self.trace_id));
        out.push_str("\",\"engine\":\"");
        out.push_str(self.engine.name());
        out.push_str("\",\"cache\":\"");
        out.push_str(if self.cache_hit { "HIT" } else { "MISS" });
        out.push_str(&format!(
            "\",\"total_ms\":{:.3},\"solutions\":{},\"uptime_secs\":{:.3},\"stages_ms\":{{",
            self.total_ms, self.solutions, self.uptime_secs
        ));
        for (i, (name, ms)) in self.stages_ms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{ms:.3}"));
        }
        out.push_str("},\"query\":\"");
        out.push_str(&json_escape(&self.canonical));
        out.push_str("\"}");
        out
    }

    /// The one-line structured log form (what goes to stderr).
    pub fn to_log_line(&self) -> String {
        let mut stages = String::new();
        for (i, (name, ms)) in self.stages_ms.iter().enumerate() {
            if i > 0 {
                stages.push(',');
            }
            stages.push_str(&format!("{name}:{ms:.3}"));
        }
        format!(
            "slow-query trace={} engine={} cache={} total_ms={:.3} solutions={} stages=[{}] query={:?}",
            format_trace_id(self.trace_id),
            self.engine.name(),
            if self.cache_hit { "HIT" } else { "MISS" },
            self.total_ms,
            self.solutions,
            stages,
            self.canonical,
        )
    }
}

/// A lock-free-on-the-fast-path ring buffer of slow queries.
pub struct SlowQueryLog {
    /// Queries at or above this duration are recorded; `None` disables the
    /// recorder entirely.
    threshold: Option<Duration>,
    slots: Vec<Mutex<Option<SlowQueryEntry>>>,
    head: AtomicU64,
}

impl SlowQueryLog {
    /// A recorder keeping the `capacity` most recent offenders at or above
    /// `threshold`. `Duration::ZERO` records every query (useful when
    /// debugging); `None` disables recording.
    pub fn new(capacity: usize, threshold: Option<Duration>) -> Self {
        let capacity = capacity.max(1);
        SlowQueryLog {
            threshold,
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// The configured threshold (`None` = disabled).
    pub fn threshold(&self) -> Option<Duration> {
        self.threshold
    }

    /// Number of ring slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// How many queries have been recorded in total (recent
    /// `min(recorded, capacity)` of them are still in the ring).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Returns whether `elapsed` crosses the recording threshold — the only
    /// check fast queries pay.
    pub fn is_slow(&self, elapsed: Duration) -> bool {
        self.threshold.is_some_and(|t| elapsed >= t)
    }

    /// Records one offender (the caller already checked
    /// [`is_slow`](Self::is_slow), but recording re-checks so a direct call
    /// cannot bypass the threshold), truncating its query text.
    /// Returns `true` if the entry was stored.
    pub fn record(&self, mut entry: SlowQueryEntry) -> bool {
        if !self.is_slow(Duration::from_secs_f64(entry.total_ms / 1000.0)) {
            return false;
        }
        if entry.canonical.len() > MAX_CANONICAL_LEN {
            let mut cut = MAX_CANONICAL_LEN;
            while !entry.canonical.is_char_boundary(cut) {
                cut -= 1;
            }
            entry.canonical.truncate(cut);
            entry.canonical.push('…');
        }
        let slot = self.head.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        *self.slots[slot].lock() = Some(entry);
        true
    }

    /// The current buffer contents, slowest first.
    pub fn snapshot(&self) -> Vec<SlowQueryEntry> {
        let mut entries: Vec<SlowQueryEntry> =
            self.slots.iter().filter_map(|s| s.lock().clone()).collect();
        entries.sort_by(|a, b| b.total_ms.total_cmp(&a.total_ms));
        entries
    }

    /// Renders the whole buffer as the `GET /debug/slow` JSON payload.
    pub fn to_json(&self) -> String {
        let entries = self.snapshot();
        let mut out = String::with_capacity(64 + entries.len() * 200);
        match self.threshold {
            Some(t) => out.push_str(&format!(
                "{{\"threshold_ms\":{:.3},",
                t.as_secs_f64() * 1000.0
            )),
            None => out.push_str("{\"threshold_ms\":null,"),
        }
        out.push_str(&format!(
            "\"capacity\":{},\"recorded\":{},\"entries\":[",
            self.capacity(),
            self.recorded()
        ));
        for (i, entry) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&entry.to_json());
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(trace_id: u64, total_ms: f64) -> SlowQueryEntry {
        SlowQueryEntry {
            trace_id,
            canonical: format!("SELECT ?x{trace_id}"),
            engine: EngineKind::TurboHomPlusPlus,
            cache_hit: trace_id.is_multiple_of(2),
            total_ms,
            stages_ms: vec![("parse", 0.1), ("execute", total_ms - 0.1)],
            solutions: 5,
            uptime_secs: 1.0,
        }
    }

    #[test]
    fn threshold_filters_fast_queries() {
        let log = SlowQueryLog::new(4, Some(Duration::from_millis(100)));
        assert!(!log.is_slow(Duration::from_millis(99)));
        assert!(log.is_slow(Duration::from_millis(100)));
        assert!(!log.record(entry(1, 50.0)));
        assert!(log.record(entry(2, 150.0)));
        assert_eq!(log.snapshot().len(), 1);
        assert_eq!(log.recorded(), 1);
    }

    #[test]
    fn disabled_log_records_nothing() {
        let log = SlowQueryLog::new(4, None);
        assert!(!log.is_slow(Duration::from_secs(100)));
        assert!(!log.record(entry(1, 1e6)));
        assert!(log.snapshot().is_empty());
    }

    #[test]
    fn zero_threshold_records_everything() {
        let log = SlowQueryLog::new(4, Some(Duration::ZERO));
        assert!(log.record(entry(1, 0.0)));
        assert_eq!(log.snapshot().len(), 1);
    }

    #[test]
    fn ring_wraps_keeping_the_most_recent() {
        let log = SlowQueryLog::new(2, Some(Duration::ZERO));
        for i in 1..=5u64 {
            assert!(log.record(entry(i, i as f64)));
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        let ids: Vec<u64> = snap.iter().map(|e| e.trace_id).collect();
        // Entries 4 and 5 survive; the snapshot is slowest-first.
        assert_eq!(ids, vec![5, 4]);
        assert_eq!(log.recorded(), 5);
    }

    #[test]
    fn snapshot_sorts_slowest_first() {
        let log = SlowQueryLog::new(8, Some(Duration::ZERO));
        for (id, ms) in [(1, 5.0), (2, 50.0), (3, 0.5)] {
            log.record(entry(id, ms));
        }
        let ms: Vec<f64> = log.snapshot().iter().map(|e| e.total_ms).collect();
        assert_eq!(ms, vec![50.0, 5.0, 0.5]);
    }

    #[test]
    fn long_queries_are_truncated_on_a_char_boundary() {
        let log = SlowQueryLog::new(1, Some(Duration::ZERO));
        let mut e = entry(1, 10.0);
        e.canonical = "é".repeat(400); // 800 bytes of 2-byte chars
        assert!(log.record(e));
        let stored = &log.snapshot()[0].canonical;
        assert!(stored.len() <= MAX_CANONICAL_LEN + '…'.len_utf8());
        assert!(stored.ends_with('…'));
    }

    #[test]
    fn json_and_log_line_are_well_formed() {
        let log = SlowQueryLog::new(2, Some(Duration::from_millis(1)));
        log.record(entry(0x2a, 12.5));
        let json = log.to_json();
        assert!(json.starts_with("{\"threshold_ms\":1.000,"));
        assert!(json.contains("\"trace_id\":\"000000000000002a\""));
        assert!(json.contains("\"stages_ms\":{\"parse\":0.100,\"execute\":12.400}"));
        assert!(json.ends_with("]}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let line = log.snapshot()[0].to_log_line();
        assert!(line.starts_with("slow-query trace=000000000000002a "));
        assert!(line.contains("total_ms=12.500"));
        assert!(line.contains("stages=[parse:0.100,execute:12.400]"));
        assert!(!line.contains('\n'));
    }
}
