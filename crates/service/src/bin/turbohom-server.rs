//! `turbohom-server` — serve SPARQL queries over HTTP.
//!
//! ```bash
//! # Serve a generated LUBM(1) store on the default address:
//! turbohom-server --lubm 1
//!
//! # Serve an N-Triples file with RDFS inference and a bigger plan cache:
//! turbohom-server --ntriples data.nt --inference --cache 1024 --bind 0.0.0.0:7878
//!
//! # Then:
//! curl 'http://127.0.0.1:7878/healthz'
//! curl 'http://127.0.0.1:7878/query' --data-urlencode 'query=SELECT ?x WHERE { ?x ?p ?o . }'
//! curl 'http://127.0.0.1:7878/query?profile=1' --data-urlencode 'query=…'   # span tree + stage timings
//! curl 'http://127.0.0.1:7878/stats'
//! curl 'http://127.0.0.1:7878/metrics'      # Prometheus text exposition
//! curl 'http://127.0.0.1:7878/debug/slow'   # slow-query recorder ring
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use turbohom_datasets::lubm::{LubmConfig, LubmGenerator};
use turbohom_engine::{EngineKind, Store, StoreOptions};
use turbohom_service::{HttpServer, QueryService, ServiceConfig};

struct Args {
    bind: String,
    lubm_scale: usize,
    ntriples: Option<String>,
    snapshot: Option<String>,
    save_snapshot: Option<String>,
    inference: bool,
    threads: usize,
    cache: usize,
    engine: EngineKind,
    slow_ms: Option<f64>,
    slow_capacity: usize,
    access_log: bool,
}

fn usage() -> &'static str {
    "usage: turbohom-server [OPTIONS]\n\
     \n\
     options:\n\
     \x20 --bind ADDR       listen address (default 127.0.0.1:7878)\n\
     \x20 --lubm N          serve a generated LUBM store at scale N (default 1)\n\
     \x20 --ntriples FILE   serve an N-Triples file instead of LUBM\n\
     \x20 --snapshot FILE   serve a snapshot file (memory-mapped, zero-copy)\n\
     \x20 --save-snapshot F write the loaded store to a snapshot file and exit\n\
     \x20 --inference       materialize the RDFS closure at load time\n\
     \x20 --threads N       default worker threads per query (default 1)\n\
     \x20 --cache N         plan-cache capacity (default 256)\n\
     \x20 --engine NAME     default engine: turbohom++ | turbohom | mergejoin | hashjoin\n\
     \x20 --slow-ms MS      record queries at or above MS milliseconds in\n\
     \x20                   /debug/slow and stderr; 0 records everything,\n\
     \x20                   `off` disables the recorder (default 500)\n\
     \x20 --slow-capacity N slow-query ring size (default 32)\n\
     \x20 --access-log      log one stderr line per request\n\
     \x20 --help            print this help"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        bind: "127.0.0.1:7878".into(),
        lubm_scale: 1,
        ntriples: None,
        snapshot: None,
        save_snapshot: None,
        inference: false,
        threads: 1,
        cache: 256,
        engine: EngineKind::TurboHomPlusPlus,
        slow_ms: Some(500.0),
        slow_capacity: 32,
        access_log: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--bind" => args.bind = value("--bind")?,
            "--lubm" => {
                args.lubm_scale = value("--lubm")?
                    .parse()
                    .map_err(|_| "--lubm expects an integer scale")?
            }
            "--ntriples" => args.ntriples = Some(value("--ntriples")?),
            "--snapshot" => args.snapshot = Some(value("--snapshot")?),
            "--save-snapshot" => args.save_snapshot = Some(value("--save-snapshot")?),
            "--inference" => args.inference = true,
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads expects an integer")?
            }
            "--cache" => {
                args.cache = value("--cache")?
                    .parse()
                    .map_err(|_| "--cache expects an integer")?
            }
            "--engine" => {
                args.engine = value("--engine")?
                    .parse::<EngineKind>()
                    .map_err(|e| e.to_string())?
            }
            "--slow-ms" => {
                let v = value("--slow-ms")?;
                args.slow_ms = if v.eq_ignore_ascii_case("off") {
                    None
                } else {
                    Some(
                        v.parse::<f64>()
                            .ok()
                            .filter(|ms| ms.is_finite() && *ms >= 0.0)
                            .ok_or("--slow-ms expects a non-negative number or `off`")?,
                    )
                };
            }
            "--slow-capacity" => {
                args.slow_capacity = value("--slow-capacity")?
                    .parse()
                    .map_err(|_| "--slow-capacity expects an integer")?
            }
            "--access-log" => args.access_log = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown option `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("turbohom-server: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.snapshot.is_some() && (args.ntriples.is_some() || args.save_snapshot.is_some()) {
        eprintln!(
            "turbohom-server: --snapshot cannot be combined with --ntriples or --save-snapshot"
        );
        return ExitCode::FAILURE;
    }

    let options = StoreOptions {
        inference: args.inference,
        threads: args.threads.max(1),
    };
    let load_started = std::time::Instant::now();
    let store = match (&args.snapshot, &args.ntriples) {
        (Some(path), _) => {
            eprintln!("mapping snapshot {path} ...");
            match Store::from_snapshot_with(std::path::Path::new(path), options.threads) {
                Ok(store) => store,
                Err(e) => {
                    eprintln!("turbohom-server: cannot load snapshot {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        (None, Some(path)) => {
            eprintln!("loading N-Triples from {path} ...");
            let input = match std::fs::read_to_string(path) {
                Ok(input) => input,
                Err(e) => {
                    eprintln!("turbohom-server: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match Store::from_ntriples_with(&input, options) {
                Ok(store) => store,
                Err(e) => {
                    eprintln!("turbohom-server: cannot parse {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        (None, None) => {
            eprintln!("generating LUBM({}) ...", args.lubm_scale);
            let dataset = LubmGenerator::new(LubmConfig::scale(args.lubm_scale)).generate();
            Store::from_dataset_with(dataset, options)
        }
    };
    let load_ms = load_started.elapsed().as_secs_f64() * 1000.0;
    eprintln!(
        "store ready: {} triples in {load_ms:.1} ms ({} backend{})",
        store.triple_count(),
        store.backend_name(),
        if store.is_mapped() { ", mmap" } else { "" },
    );

    if let Some(path) = &args.save_snapshot {
        let started = std::time::Instant::now();
        match store.save_snapshot(std::path::Path::new(path)) {
            Ok(bytes) => {
                println!(
                    "snapshot saved: {path} ({bytes} bytes, {} triples, {:.1} ms)",
                    store.triple_count(),
                    started.elapsed().as_secs_f64() * 1000.0,
                );
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("turbohom-server: cannot save snapshot {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let dataset_label = match (&args.snapshot, &args.ntriples) {
        (Some(path), _) => format!("snapshot:{path}"),
        (None, Some(path)) => path.clone(),
        (None, None) => format!("lubm-{}", args.lubm_scale),
    };
    let service = Arc::new(
        QueryService::with_config(
            Arc::new(store),
            ServiceConfig {
                plan_cache_capacity: args.cache,
                default_engine: args.engine,
                slow_query: args.slow_ms.map(|ms| Duration::from_secs_f64(ms / 1000.0)),
                slow_log_capacity: args.slow_capacity,
                ..ServiceConfig::default()
            },
        )
        .with_dataset_label(dataset_label),
    );
    let server = match HttpServer::bind(args.bind.as_str(), service) {
        Ok(server) => server.with_access_log(args.access_log),
        Err(e) => {
            eprintln!("turbohom-server: cannot bind {}: {e}", args.bind);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => eprintln!(
            "listening on http://{addr} (endpoints: /query /healthz /stats /metrics /debug/slow)"
        ),
        Err(_) => eprintln!("listening on {}", args.bind),
    }
    if let Err(e) = server.run() {
        eprintln!("turbohom-server: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
