//! `turbohom-server` — serve SPARQL queries over HTTP.
//!
//! ```bash
//! # Serve a generated LUBM(1) store on the default address:
//! turbohom-server --lubm 1
//!
//! # Serve an N-Triples file with RDFS inference and a bigger plan cache:
//! turbohom-server --ntriples data.nt --inference --cache 1024 --bind 0.0.0.0:7878
//!
//! # Then:
//! curl 'http://127.0.0.1:7878/healthz'
//! curl 'http://127.0.0.1:7878/query' --data-urlencode 'query=SELECT ?x WHERE { ?x ?p ?o . }'
//! curl 'http://127.0.0.1:7878/query?profile=1' --data-urlencode 'query=…'   # span tree + stage timings
//! curl 'http://127.0.0.1:7878/query?explain=1' --data-urlencode 'query=…'   # plan tree, not executed
//! curl 'http://127.0.0.1:7878/query?analyze=1' --data-urlencode 'query=…'   # plan tree + actuals + q-errors
//! curl 'http://127.0.0.1:7878/stats'
//! curl 'http://127.0.0.1:7878/metrics'      # Prometheus text exposition
//! curl 'http://127.0.0.1:7878/debug/slow'   # slow-query recorder ring
//! curl 'http://127.0.0.1:7878/debug/events' # structured event journal (JSONL)
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use turbohom_datasets::lubm::{LubmConfig, LubmGenerator};
use turbohom_engine::{
    AnyStore, EngineKind, PartitionerKind, ShardedOptions, ShardedStore, Store, StoreOptions,
    DEFAULT_HALO,
};
use turbohom_service::{HttpServer, QueryService, ServiceConfig};

struct Args {
    bind: String,
    lubm_scale: usize,
    ntriples: Option<String>,
    snapshot: Option<String>,
    save_snapshot: Option<String>,
    inference: bool,
    threads: usize,
    shards: usize,
    partitioner: PartitionerKind,
    halo: usize,
    cache: usize,
    engine: EngineKind,
    slow_ms: Option<f64>,
    slow_capacity: usize,
    journal: Option<String>,
    access_log: bool,
}

fn usage() -> &'static str {
    "usage: turbohom-server [OPTIONS]\n\
     \n\
     options:\n\
     \x20 --bind ADDR       listen address (default 127.0.0.1:7878)\n\
     \x20 --lubm N          serve a generated LUBM store at scale N (default 1)\n\
     \x20 --ntriples FILE   serve an N-Triples file instead of LUBM\n\
     \x20 --snapshot FILE   serve a snapshot file (memory-mapped, zero-copy)\n\
     \x20 --save-snapshot F write the loaded store to a snapshot file and exit\n\
     \x20 --inference       materialize the RDFS closure at load time\n\
     \x20 --threads N       default worker threads per query (default 1)\n\
     \x20 --shards N        partition the data across N shard stores and run\n\
     \x20                   queries scatter-gather (default 1 = single store)\n\
     \x20 --partitioner P   shard ownership: hash | greedy (default hash)\n\
     \x20 --halo N          boundary replication radius in triples (default 2)\n\
     \x20 --cache N         plan-cache capacity (default 256)\n\
     \x20 --engine NAME     default engine: turbohom++ | turbohom | mergejoin | hashjoin\n\
     \x20 --slow-ms MS      record queries at or above MS milliseconds in\n\
     \x20                   /debug/slow and stderr; 0 records everything,\n\
     \x20                   `off` disables the recorder (default 500)\n\
     \x20 --slow-capacity N slow-query ring size (default 32)\n\
     \x20 --journal FILE    tee every /debug/events journal event to FILE\n\
     \x20                   as JSONL (appended) for post-mortem analysis\n\
     \x20 --access-log      log one stderr line per request\n\
     \x20 --help            print this help"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        bind: "127.0.0.1:7878".into(),
        lubm_scale: 1,
        ntriples: None,
        snapshot: None,
        save_snapshot: None,
        inference: false,
        threads: 1,
        shards: 1,
        partitioner: PartitionerKind::Hash,
        halo: DEFAULT_HALO,
        cache: 256,
        engine: EngineKind::TurboHomPlusPlus,
        slow_ms: Some(500.0),
        slow_capacity: 32,
        journal: None,
        access_log: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--bind" => args.bind = value("--bind")?,
            "--lubm" => {
                args.lubm_scale = value("--lubm")?
                    .parse()
                    .map_err(|_| "--lubm expects an integer scale")?
            }
            "--ntriples" => args.ntriples = Some(value("--ntriples")?),
            "--snapshot" => args.snapshot = Some(value("--snapshot")?),
            "--save-snapshot" => args.save_snapshot = Some(value("--save-snapshot")?),
            "--inference" => args.inference = true,
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads expects an integer")?
            }
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or("--shards expects an integer >= 1")?
            }
            "--partitioner" => {
                args.partitioner = value("--partitioner")?
                    .parse::<PartitionerKind>()
                    .map_err(|e| e.to_string())?
            }
            "--halo" => {
                args.halo = value("--halo")?
                    .parse()
                    .map_err(|_| "--halo expects an integer")?
            }
            "--cache" => {
                args.cache = value("--cache")?
                    .parse()
                    .map_err(|_| "--cache expects an integer")?
            }
            "--engine" => {
                args.engine = value("--engine")?
                    .parse::<EngineKind>()
                    .map_err(|e| e.to_string())?
            }
            "--slow-ms" => {
                let v = value("--slow-ms")?;
                args.slow_ms = if v.eq_ignore_ascii_case("off") {
                    None
                } else {
                    Some(
                        v.parse::<f64>()
                            .ok()
                            .filter(|ms| ms.is_finite() && *ms >= 0.0)
                            .ok_or("--slow-ms expects a non-negative number or `off`")?,
                    )
                };
            }
            "--slow-capacity" => {
                args.slow_capacity = value("--slow-capacity")?
                    .parse()
                    .map_err(|_| "--slow-capacity expects an integer")?
            }
            "--journal" => args.journal = Some(value("--journal")?),
            "--access-log" => args.access_log = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown option `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("turbohom-server: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.snapshot.is_some() && (args.ntriples.is_some() || args.save_snapshot.is_some()) {
        eprintln!(
            "turbohom-server: --snapshot cannot be combined with --ntriples or --save-snapshot"
        );
        return ExitCode::FAILURE;
    }
    if args.snapshot.is_some() && args.shards > 1 {
        eprintln!(
            "turbohom-server: --shards cannot be combined with --snapshot \
             (the manifest records the shard layout)"
        );
        return ExitCode::FAILURE;
    }

    let options = StoreOptions {
        inference: args.inference,
        threads: args.threads.max(1),
    };
    let sharded_options = ShardedOptions {
        shards: args.shards,
        inference: args.inference,
        threads: args.threads.max(1),
        partitioner: args.partitioner,
        halo: args.halo,
    };
    let load_started = std::time::Instant::now();
    let (store, load_phase) = match (&args.snapshot, &args.ntriples) {
        (Some(path), _) => {
            let file = std::path::Path::new(path);
            if ShardedStore::is_manifest(file) {
                eprintln!("mapping shard manifest {path} ...");
                match ShardedStore::from_manifest(file, options.threads) {
                    Ok(store) => (AnyStore::Sharded(Arc::new(store)), "sharded_map"),
                    Err(e) => {
                        eprintln!("turbohom-server: cannot load shard manifest {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                eprintln!("mapping snapshot {path} ...");
                match Store::from_snapshot_with(file, options.threads) {
                    Ok(store) => (AnyStore::Single(Arc::new(store)), "map"),
                    Err(e) => {
                        eprintln!("turbohom-server: cannot load snapshot {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        (None, Some(path)) => {
            eprintln!("loading N-Triples from {path} ...");
            let input = match std::fs::read_to_string(path) {
                Ok(input) => input,
                Err(e) => {
                    eprintln!("turbohom-server: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if args.shards > 1 {
                match ShardedStore::from_ntriples_with(&input, sharded_options) {
                    Ok(store) => (AnyStore::Sharded(Arc::new(store)), "sharded_parse_build"),
                    Err(e) => {
                        eprintln!("turbohom-server: cannot parse {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                match Store::from_ntriples_with(&input, options) {
                    Ok(store) => (AnyStore::Single(Arc::new(store)), "parse_build"),
                    Err(e) => {
                        eprintln!("turbohom-server: cannot parse {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        (None, None) => {
            eprintln!("generating LUBM({}) ...", args.lubm_scale);
            let dataset = LubmGenerator::new(LubmConfig::scale(args.lubm_scale)).generate();
            if args.shards > 1 {
                match ShardedStore::from_dataset_with(dataset, sharded_options) {
                    Ok(store) => (AnyStore::Sharded(Arc::new(store)), "sharded_parse_build"),
                    Err(e) => {
                        eprintln!("turbohom-server: cannot partition LUBM dataset: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                (
                    AnyStore::Single(Arc::new(Store::from_dataset_with(dataset, options))),
                    "parse_build",
                )
            }
        }
    };
    let load_ms = load_started.elapsed().as_secs_f64() * 1000.0;
    let shard_note = match store.shard_count() {
        Some(k) => format!(
            ", {k} shards, {} partitioner",
            store.partitioner_name().unwrap_or("?")
        ),
        None => String::new(),
    };
    eprintln!(
        "store ready: {} triples in {load_ms:.1} ms ({load_phase}, {} backend{}{shard_note})",
        store.triple_count(),
        store.backend_name(),
        if store.is_mapped() { ", mmap" } else { "" },
    );

    if let Some(path) = &args.save_snapshot {
        let started = std::time::Instant::now();
        let saved = match &store {
            AnyStore::Single(s) => s.save_snapshot(std::path::Path::new(path)),
            AnyStore::Sharded(s) => s.save_snapshots(std::path::Path::new(path)),
        };
        match saved {
            Ok(bytes) => {
                println!(
                    "snapshot saved: {path} ({bytes} bytes, {} triples, {} file{}, {:.1} ms)",
                    store.triple_count(),
                    store.shard_count().map_or(1, |k| k + 1),
                    if store.shard_count().is_some() {
                        "s"
                    } else {
                        ""
                    },
                    started.elapsed().as_secs_f64() * 1000.0,
                );
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("turbohom-server: cannot save snapshot {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let dataset_label = match (&args.snapshot, &args.ntriples) {
        (Some(path), _) => format!("snapshot:{path}"),
        (None, Some(path)) => path.clone(),
        (None, None) => format!("lubm-{}", args.lubm_scale),
    };
    let mut service = QueryService::with_any_store(
        store,
        ServiceConfig {
            plan_cache_capacity: args.cache,
            default_engine: args.engine,
            slow_query: args.slow_ms.map(|ms| Duration::from_secs_f64(ms / 1000.0)),
            slow_log_capacity: args.slow_capacity,
            ..ServiceConfig::default()
        },
    )
    .with_dataset_label(dataset_label);
    if let Some(path) = &args.journal {
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            Ok(file) => service = service.with_journal_tee(file),
            Err(e) => {
                eprintln!("turbohom-server: cannot open journal file {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let service = Arc::new(service);
    let server = match HttpServer::bind(args.bind.as_str(), service) {
        Ok(server) => server.with_access_log(args.access_log),
        Err(e) => {
            eprintln!("turbohom-server: cannot bind {}: {e}", args.bind);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => eprintln!(
            "listening on http://{addr} (endpoints: /query /healthz /stats /metrics /debug/slow /debug/events)"
        ),
        Err(_) => eprintln!("listening on {}", args.bind),
    }
    if let Err(e) = server.run() {
        eprintln!("turbohom-server: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
