//! The LRU plan cache.
//!
//! Keys are the *canonical* normalized query text (see
//! [`turbohom_sparql::fingerprint`]) plus the engine kind — so every
//! spelling of a query shares one entry per engine, and a fingerprint hash
//! collision can never hand back the wrong plan (the full canonical text is
//! compared on lookup). Values are [`AnyPlan`] handles (an `Arc`'d plan for
//! either store flavor), shared with in-flight requests so eviction never
//! invalidates a running query.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use turbohom_engine::{AnyPlan, EngineKind};

/// The cache key: canonical query text + engine.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Canonical (normalized) query text.
    pub canonical: String,
    /// The engine the plan was prepared for.
    pub kind: EngineKind,
}

struct Entry {
    plan: AnyPlan,
    /// Logical timestamp of the last hit (monotone per-cache counter).
    last_used: u64,
}

/// What [`PlanCache::insert_tracked`] did.
pub struct InsertOutcome {
    /// The plan now cached under the key (the first writer wins a race).
    pub plan: AnyPlan,
    /// Whether this call stored the plan (false on races, existing entries
    /// and zero-capacity caches).
    pub inserted: bool,
    /// The entry evicted to make room, if any.
    pub evicted: Option<PlanKey>,
}

struct Inner {
    map: HashMap<PlanKey, Entry>,
    tick: u64,
}

/// A thread-safe least-recently-used cache of prepared query plans.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans (`0` disables
    /// caching: every lookup misses and nothing is stored).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up a plan, refreshing its recency on a hit.
    pub fn get(&self, key: &PlanKey) -> Option<AnyPlan> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.plan.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a plan, evicting the least-recently-used entry when full.
    /// Returns the plan that is now cached under `key` (an insert racing
    /// with another thread keeps the first plan, so callers agree).
    pub fn insert(&self, key: PlanKey, plan: AnyPlan) -> AnyPlan {
        self.insert_tracked(key, plan).plan
    }

    /// Like [`insert`](Self::insert), but also reports what happened so the
    /// caller can journal it: whether this call stored the plan, and which
    /// entry (if any) was evicted to make room.
    pub fn insert_tracked(&self, key: PlanKey, plan: AnyPlan) -> InsertOutcome {
        if self.capacity == 0 {
            return InsertOutcome {
                plan,
                inserted: false,
                evicted: None,
            };
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(existing) = inner.map.get(&key) {
            return InsertOutcome {
                plan: existing.plan.clone(),
                inserted: false,
                evicted: None,
            };
        }
        let mut evicted = None;
        if inner.map.len() >= self.capacity {
            // O(n) victim scan — plan caches are small (tens to hundreds of
            // entries), so a scan beats maintaining an intrusive list.
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                evicted = Some(victim);
            }
        }
        inner.map.insert(
            key,
            Entry {
                plan: plan.clone(),
                last_used: tick,
            },
        );
        InsertOutcome {
            plan,
            inserted: true,
            evicted,
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Returns `true` if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of cached plans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of lookups that found a plan.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of plans evicted to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use turbohom_engine::Store;

    fn plan_for(store: &Store, q: &str) -> AnyPlan {
        AnyPlan::Single(Arc::new(
            store.prepare_plan(q, EngineKind::TurboHomPlusPlus).unwrap(),
        ))
    }

    fn key(s: &str) -> PlanKey {
        PlanKey {
            canonical: s.into(),
            kind: EngineKind::TurboHomPlusPlus,
        }
    }

    fn store() -> Store {
        Store::from_ntriples("<http://a> <http://p> <http://b> .").unwrap()
    }

    #[test]
    fn hit_miss_and_counters() {
        let store = store();
        let cache = PlanCache::new(4);
        let q = "SELECT ?x WHERE { ?x <http://p> ?y . }";
        assert!(cache.get(&key(q)).is_none());
        cache.insert(key(q), plan_for(&store, q));
        assert!(cache.get(&key(q)).is_some());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn engine_kind_is_part_of_the_key() {
        let store = store();
        let cache = PlanCache::new(4);
        let q = "SELECT ?x WHERE { ?x <http://p> ?y . }";
        cache.insert(key(q), plan_for(&store, q));
        let other = PlanKey {
            canonical: q.into(),
            kind: EngineKind::MergeJoin,
        };
        assert!(cache.get(&other).is_none());
    }

    #[test]
    fn least_recently_used_entry_is_evicted() {
        let store = store();
        let cache = PlanCache::new(2);
        let (a, b, c) = ("q-a", "q-b", "q-c");
        let q = "SELECT ?x WHERE { ?x <http://p> ?y . }";
        cache.insert(key(a), plan_for(&store, q));
        cache.insert(key(b), plan_for(&store, q));
        assert!(cache.get(&key(a)).is_some()); // refresh a → b is now LRU
        cache.insert(key(c), plan_for(&store, q));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(a)).is_some());
        assert!(cache.get(&key(b)).is_none());
        assert!(cache.get(&key(c)).is_some());
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn racing_insert_keeps_the_first_plan() {
        let store = store();
        let cache = PlanCache::new(2);
        let q = "SELECT ?x WHERE { ?x <http://p> ?y . }";
        let first = cache.insert(key(q), plan_for(&store, q));
        let second = cache.insert(key(q), plan_for(&store, q));
        let (AnyPlan::Single(a), AnyPlan::Single(b)) = (&first, &second) else {
            panic!("single-store plans expected");
        };
        assert!(Arc::ptr_eq(a, b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn tracked_insert_reports_the_evicted_key() {
        let store = store();
        let cache = PlanCache::new(1);
        let q = "SELECT ?x WHERE { ?x <http://p> ?y . }";
        let first = cache.insert_tracked(key("a"), plan_for(&store, q));
        assert!(first.inserted);
        assert!(first.evicted.is_none());
        let second = cache.insert_tracked(key("b"), plan_for(&store, q));
        assert!(second.inserted);
        assert_eq!(second.evicted.unwrap().canonical, "a");
        // Re-inserting under an existing key stores (and evicts) nothing.
        let repeat = cache.insert_tracked(key("b"), plan_for(&store, q));
        assert!(!repeat.inserted);
        assert!(repeat.evicted.is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let store = store();
        let cache = PlanCache::new(0);
        let q = "SELECT ?x WHERE { ?x <http://p> ?y . }";
        cache.insert(key(q), plan_for(&store, q));
        assert!(cache.get(&key(q)).is_none());
        assert!(cache.is_empty());
    }
}
