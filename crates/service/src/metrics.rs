//! Service metrics: per-engine throughput counters and latency histograms.
//!
//! Everything is lock-free (`AtomicU64`) so the request path never contends:
//! recording a latency is one `fetch_add` into a log₂-bucketed histogram.
//! Quantiles (p50/p95/p99) are estimated from the bucket counts — each
//! bucket `i` covers latencies in `[2^(i-1), 2^i)` microseconds, so the
//! estimate is exact to within a factor of two, which is what a `/stats`
//! dashboard needs (the paper reports milliseconds; sub-bucket precision
//! would be noise).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use turbohom_engine::{EngineKind, MatchStats, TraceReport};

/// Number of log₂ buckets: covers 1 µs … ~2³⁸ µs (≈ 76 hours) per query.
const BUCKETS: usize = 40;

/// The pipeline stages whose cumulative time `/metrics` exposes as
/// `turbohom_stage_seconds_total{stage=…}`, in pipeline order. These are the
/// root span names the service layer records on every request's trace.
pub const STAGES: [&str; 6] = [
    "fingerprint",
    "cache_lookup",
    "parse",
    "summary_prune",
    "transform",
    "execute",
];

/// A log₂-bucketed latency histogram.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_micros: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        // Bucket i holds values < 2^i µs: 0µs → bucket 0, 1µs → 1, 2-3µs → 2…
        let idx = (u64::BITS - micros.leading_zeros()).min(BUCKETS as u32 - 1) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency, or zero when nothing was recorded.
    pub fn mean(&self) -> Duration {
        let count = self.count();
        if count == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.total_micros.load(Ordering::Relaxed) / count)
    }

    /// Estimates the latency at quantile `q` (in `[0, 1]`): the upper bound
    /// of the first bucket covering the q-th observation.
    pub fn quantile(&self, q: f64) -> Duration {
        let count = self.count();
        if count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Duration::from_micros(1u64 << i);
            }
        }
        Duration::from_micros(1u64 << (BUCKETS - 1))
    }

    /// Total observed time in microseconds (the Prometheus `_sum`).
    pub fn total_micros(&self) -> u64 {
        self.total_micros.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the raw per-bucket counts (bucket `i` holds
    /// observations `< 2^i` µs). Exposed for the Prometheus renderer and
    /// its tests.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Appends this histogram as a cumulative Prometheus `_bucket` series
    /// (plus `_sum` and `_count`) for metric `name` with `labels` (rendered
    /// inside `{}`, no trailing comma). Bucket `i`'s upper bound is `2^i` µs
    /// expressed in seconds; the saturating top bucket becomes `+Inf`.
    pub fn render_prometheus(&self, out: &mut String, name: &str, labels: &str) {
        let counts = self.bucket_counts();
        let mut cumulative = 0u64;
        for (i, count) in counts.iter().enumerate() {
            cumulative += count;
            if i + 1 == BUCKETS {
                out.push_str(&format!(
                    "{name}_bucket{{{labels},le=\"+Inf\"}} {cumulative}\n"
                ));
            } else {
                let le = (1u64 << i) as f64 / 1e6;
                out.push_str(&format!(
                    "{name}_bucket{{{labels},le=\"{le}\"}} {cumulative}\n"
                ));
            }
        }
        out.push_str(&format!(
            "{name}_sum{{{labels}}} {}\n",
            self.total_micros() as f64 / 1e6
        ));
        out.push_str(&format!("{name}_count{{{labels}}} {cumulative}\n"));
    }
}

/// Number of log₂ q-error buckets: covers ratios 1 … 2¹⁵ (an estimate more
/// than 32768× off lands in the saturating top bucket).
const QERROR_BUCKETS: usize = 16;

/// A log₂-bucketed histogram of estimate-vs-actual q-errors (ratios ≥ 1),
/// fed by `analyze=1` requests. Bucket `i` covers ratios in `[2^i, 2^(i+1))`
/// — a perfectly estimated step lands in bucket 0 (`le="2"`).
pub struct QErrorHistogram {
    buckets: [AtomicU64; QERROR_BUCKETS],
    count: AtomicU64,
    /// Sum in thousandths, so the atomic stays integer.
    sum_milli: AtomicU64,
}

impl Default for QErrorHistogram {
    fn default() -> Self {
        QErrorHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_milli: AtomicU64::new(0),
        }
    }
}

impl QErrorHistogram {
    /// Records one per-step q-error (clamped to ≥ 1).
    pub fn record(&self, qerror: f64) {
        let q = if qerror.is_finite() {
            qerror.max(1.0)
        } else {
            1.0
        };
        let idx = (q.log2() as usize).min(QERROR_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_milli
            .fetch_add((q * 1000.0).min(u64::MAX as f64) as u64, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Appends the histogram as a cumulative Prometheus `_bucket` series
    /// (plus `_sum` and `_count`) for metric `name`. Bucket `i`'s upper
    /// bound is `2^(i+1)`; the saturating top bucket becomes `+Inf`.
    pub fn render_prometheus(&self, out: &mut String, name: &str) {
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if i + 1 == QERROR_BUCKETS {
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
            } else {
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                    1u64 << (i + 1)
                ));
            }
        }
        out.push_str(&format!(
            "{name}_sum {}\n",
            self.sum_milli.load(Ordering::Relaxed) as f64 / 1000.0
        ));
        out.push_str(&format!("{name}_count {cumulative}\n"));
    }
}

/// Cumulative wall-clock time per pipeline stage, fed by every request's
/// trace (coarse traces are always on, so these are exact totals, not
/// samples). Lock-free like everything else here.
pub struct StageTotals {
    nanos: [AtomicU64; STAGES.len()],
}

impl Default for StageTotals {
    fn default() -> Self {
        StageTotals {
            nanos: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl StageTotals {
    /// Adds `nanos` to `stage`'s total. Unknown stage names (e.g. a span a
    /// future layer invents) are ignored rather than panicking.
    pub fn record(&self, stage: &str, nanos: u64) {
        if let Some(i) = STAGES.iter().position(|s| *s == stage) {
            self.nanos[i].fetch_add(nanos, Ordering::Relaxed);
        }
    }

    /// Cumulative seconds spent in `stage` across all requests.
    pub fn seconds(&self, stage: &str) -> f64 {
        STAGES
            .iter()
            .position(|s| *s == stage)
            .map_or(0.0, |i| self.nanos[i].load(Ordering::Relaxed) as f64 / 1e9)
    }
}

/// Counters and latency for one engine kind.
#[derive(Default)]
pub struct EngineMetrics {
    /// Successfully answered queries.
    pub queries: AtomicU64,
    /// Queries that returned an error.
    pub errors: AtomicU64,
    /// Latency of successful queries (wall clock across the whole request:
    /// fingerprint + plan lookup/preparation + enumeration + rendering).
    pub latency: LatencyHistogram,
    /// Solutions returned across all successful queries.
    pub solutions: AtomicU64,
    /// Cumulative k-way intersections run by the `+INT` joinability test
    /// (all-zero for the join baselines, which never run the matcher).
    pub intersection_ops: AtomicU64,
    /// Cumulative morsels executed by the work-stealing scheduler (stays
    /// zero while requests run single-threaded).
    pub morsels: AtomicU64,
    /// Cumulative morsels obtained by stealing — a high ratio of stolen to
    /// total morsels means the per-region work is heavily skewed.
    pub morsels_stolen: AtomicU64,
}

/// All service metrics: one [`EngineMetrics`] per engine plus per-stage
/// time totals and uptime.
pub struct ServiceMetrics {
    per_engine: [EngineMetrics; EngineKind::COUNT],
    stages: StageTotals,
    /// Per-step estimate-vs-actual q-errors from `analyze=1` requests.
    qerror: QErrorHistogram,
    /// Live shards that contributed zero rows (summary-pruning misses),
    /// exported as `turbohom_summary_prune_errors_total`.
    summary_prune_errors: AtomicU64,
    started: Instant,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceMetrics {
    /// Creates empty metrics; uptime starts now.
    pub fn new() -> Self {
        ServiceMetrics {
            per_engine: Default::default(),
            stages: StageTotals::default(),
            qerror: QErrorHistogram::default(),
            summary_prune_errors: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Records the per-step q-errors of one `analyze=1` request.
    pub fn record_qerrors(&self, qerrors: &[f64]) {
        for &q in qerrors {
            self.qerror.record(q);
        }
    }

    /// The q-error histogram.
    pub fn qerror(&self) -> &QErrorHistogram {
        &self.qerror
    }

    /// Counts `n` false-live shards (live verdict, zero rows) from one
    /// `analyze=1` request.
    pub fn record_false_lives(&self, n: u64) {
        if n > 0 {
            self.summary_prune_errors.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Total summary-pruning misses observed by `analyze=1` requests.
    pub fn summary_prune_errors(&self) -> u64 {
        self.summary_prune_errors.load(Ordering::Relaxed)
    }

    /// The metrics of one engine.
    pub fn engine(&self, kind: EngineKind) -> &EngineMetrics {
        &self.per_engine[kind.index()]
    }

    /// Records a successful query with the matcher's per-stage counters.
    pub fn record_success(&self, kind: EngineKind, latency: Duration, stats: &MatchStats) {
        let m = self.engine(kind);
        m.queries.fetch_add(1, Ordering::Relaxed);
        m.latency.record(latency);
        m.solutions
            .fetch_add(stats.solutions as u64, Ordering::Relaxed);
        m.intersection_ops
            .fetch_add(stats.intersection_ops as u64, Ordering::Relaxed);
        m.morsels.fetch_add(stats.morsels as u64, Ordering::Relaxed);
        m.morsels_stolen
            .fetch_add(stats.morsels_stolen as u64, Ordering::Relaxed);
    }

    /// Records a failed query.
    pub fn record_error(&self, kind: EngineKind) {
        self.engine(kind).errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds a finished request trace into the per-stage time totals.
    pub fn record_stages(&self, report: &TraceReport) {
        for (name, nanos) in report.stages() {
            self.stages.record(name, nanos);
        }
    }

    /// The cumulative per-stage time totals.
    pub fn stage_totals(&self) -> &StageTotals {
        &self.stages
    }

    /// Seconds since the service started.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Total successful queries across all engines.
    pub fn total_queries(&self) -> u64 {
        self.per_engine
            .iter()
            .map(|m| m.queries.load(Ordering::Relaxed))
            .sum()
    }

    /// Queries per second over the whole uptime, per engine.
    pub fn qps(&self, kind: EngineKind) -> f64 {
        let secs = self.uptime().as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.engine(kind).queries.load(Ordering::Relaxed) as f64 / secs
    }

    /// Appends everything this struct tracks in Prometheus text exposition
    /// format (version 0.0.4): uptime, per-engine counters (labeled with
    /// `store` — the `"single"`/`"sharded"` flavor, so dashboards never
    /// blur the two execution paths), per-stage time totals, one latency
    /// histogram per engine, the `analyze=1` q-error histogram, and the
    /// summary-prune-error counter. The service layer appends its own
    /// cache/store series after this.
    pub fn render_prometheus(&self, out: &mut String, store: &str) {
        out.push_str("# HELP turbohom_uptime_seconds Seconds since the service started.\n");
        out.push_str("# TYPE turbohom_uptime_seconds gauge\n");
        out.push_str(&format!(
            "turbohom_uptime_seconds {}\n",
            self.uptime().as_secs_f64()
        ));

        let counter =
            |out: &mut String, name: &str, help: &str, value: fn(&EngineMetrics) -> u64| {
                out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
                for kind in EngineKind::all() {
                    out.push_str(&format!(
                        "{name}{{engine=\"{}\",store=\"{store}\"}} {}\n",
                        kind.name(),
                        value(self.engine(kind))
                    ));
                }
            };
        counter(
            out,
            "turbohom_queries_total",
            "Successfully answered queries.",
            |m| m.queries.load(Ordering::Relaxed),
        );
        counter(
            out,
            "turbohom_query_errors_total",
            "Queries that returned an error.",
            |m| m.errors.load(Ordering::Relaxed),
        );
        counter(
            out,
            "turbohom_solutions_total",
            "Solutions returned across all successful queries.",
            |m| m.solutions.load(Ordering::Relaxed),
        );
        counter(
            out,
            "turbohom_intersection_ops_total",
            "Cumulative k-way intersections run by the +INT joinability test.",
            |m| m.intersection_ops.load(Ordering::Relaxed),
        );
        counter(
            out,
            "turbohom_morsels_total",
            "Cumulative morsels executed by the work-stealing scheduler.",
            |m| m.morsels.load(Ordering::Relaxed),
        );
        counter(
            out,
            "turbohom_morsels_stolen_total",
            "Cumulative morsels obtained by stealing.",
            |m| m.morsels_stolen.load(Ordering::Relaxed),
        );

        out.push_str(
            "# HELP turbohom_stage_seconds_total Cumulative wall-clock seconds per pipeline stage.\n",
        );
        out.push_str("# TYPE turbohom_stage_seconds_total counter\n");
        for stage in STAGES {
            out.push_str(&format!(
                "turbohom_stage_seconds_total{{stage=\"{stage}\"}} {}\n",
                self.stages.seconds(stage)
            ));
        }

        out.push_str(
            "# HELP turbohom_query_latency_seconds Request latency of successful queries.\n",
        );
        out.push_str("# TYPE turbohom_query_latency_seconds histogram\n");
        for kind in EngineKind::all() {
            self.engine(kind).latency.render_prometheus(
                out,
                "turbohom_query_latency_seconds",
                &format!("engine=\"{}\",store=\"{store}\"", kind.name()),
            );
        }

        out.push_str(
            "# HELP turbohom_estimate_qerror Per-step estimate-vs-actual q-error (analyze=1 requests).\n",
        );
        out.push_str("# TYPE turbohom_estimate_qerror histogram\n");
        self.qerror
            .render_prometheus(out, "turbohom_estimate_qerror");

        out.push_str(
            "# HELP turbohom_summary_prune_errors_total Live shards that contributed zero rows (summary-pruning misses seen by analyze=1).\n",
        );
        out.push_str("# TYPE turbohom_summary_prune_errors_total counter\n");
        out.push_str(&format!(
            "turbohom_summary_prune_errors_total {}\n",
            self.summary_prune_errors()
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2_and_estimates_quantiles() {
        let h = LatencyHistogram::default();
        // 90 fast observations (~8 µs), 10 slow (~1000 µs).
        for _ in 0..90 {
            h.record(Duration::from_micros(8));
        }
        for _ in 0..10 {
            h.record(Duration::from_micros(1000));
        }
        assert_eq!(h.count(), 100);
        // p50 and p90 land in the 8µs bucket (upper bound 16µs);
        // p95/p99 land in the 1000µs bucket (upper bound 1024µs).
        assert_eq!(h.quantile(0.50), Duration::from_micros(16));
        assert_eq!(h.quantile(0.90), Duration::from_micros(16));
        assert_eq!(h.quantile(0.95), Duration::from_micros(1024));
        assert_eq!(h.quantile(0.99), Duration::from_micros(1024));
        let mean = h.mean();
        assert!(mean > Duration::from_micros(90) && mean < Duration::from_micros(120));
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn extreme_latencies_clamp_into_the_last_bucket() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_secs(1_000_000));
        assert_eq!(h.count(), 1);
        assert!(h.quantile(1.0) > Duration::from_secs(1));
        // The saturating top bucket holds the observation …
        assert_eq!(h.bucket_counts()[BUCKETS - 1], 1);
        // … and the quantile estimate is its (huge) upper bound, not +∞.
        assert_eq!(
            h.quantile(1.0),
            Duration::from_micros(1u64 << (BUCKETS - 1))
        );
    }

    #[test]
    fn single_observation_dominates_every_quantile() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(100));
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), Duration::from_micros(100));
        // 100 µs lands in bucket 7 (64–127 µs), upper bound 128 µs; with one
        // observation every quantile — including the extremes — reports it.
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Duration::from_micros(128), "q={q}");
        }
    }

    #[test]
    fn quantile_extremes_hit_first_and_last_occupied_buckets() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(1000));
        // q=0.0 clamps to the first observation, q=1.0 covers the last.
        assert_eq!(h.quantile(0.0), Duration::from_micros(2));
        assert_eq!(h.quantile(1.0), Duration::from_micros(1024));
        // Out-of-range inputs clamp instead of panicking.
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        assert_eq!(h.quantile(7.0), h.quantile(1.0));
    }

    #[test]
    fn prometheus_buckets_are_cumulative_and_end_in_inf() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(3)); // bucket 2
        h.record(Duration::from_micros(3)); // bucket 2
        h.record(Duration::from_micros(100)); // bucket 7
        let mut out = String::new();
        h.render_prometheus(&mut out, "x_seconds", "engine=\"e\"");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), BUCKETS + 2);
        // Buckets are cumulative: 0 until 4 µs, 2 from there, 3 from 128 µs.
        assert!(lines.contains(&"x_seconds_bucket{engine=\"e\",le=\"0.000002\"} 0"));
        assert!(lines.contains(&"x_seconds_bucket{engine=\"e\",le=\"0.000004\"} 2"));
        assert!(lines.contains(&"x_seconds_bucket{engine=\"e\",le=\"0.000064\"} 2"));
        assert!(lines.contains(&"x_seconds_bucket{engine=\"e\",le=\"0.000128\"} 3"));
        assert_eq!(
            lines[BUCKETS - 1],
            "x_seconds_bucket{engine=\"e\",le=\"+Inf\"} 3"
        );
        assert_eq!(lines[BUCKETS], "x_seconds_sum{engine=\"e\"} 0.000106");
        assert_eq!(lines[BUCKETS + 1], "x_seconds_count{engine=\"e\"} 3");
        // Cumulative counts never decrease.
        let mut last = 0u64;
        for line in &lines[..BUCKETS] {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn stage_totals_accumulate_known_stages_and_ignore_others() {
        let totals = StageTotals::default();
        totals.record("parse", 1_500_000_000);
        totals.record("parse", 500_000_000);
        totals.record("no-such-stage", u64::MAX);
        assert_eq!(totals.seconds("parse"), 2.0);
        assert_eq!(totals.seconds("execute"), 0.0);
        assert_eq!(totals.seconds("no-such-stage"), 0.0);
    }

    #[test]
    fn service_exposition_has_every_metric_family() {
        let m = ServiceMetrics::new();
        m.record_success(
            EngineKind::TurboHomPlusPlus,
            Duration::from_micros(50),
            &MatchStats {
                solutions: 2,
                ..MatchStats::default()
            },
        );
        m.record_error(EngineKind::HashJoin);
        m.record_qerrors(&[1.0, 3.0]);
        m.record_false_lives(2);
        let mut out = String::new();
        m.render_prometheus(&mut out, "single");
        for family in [
            "turbohom_uptime_seconds",
            "turbohom_queries_total",
            "turbohom_query_errors_total",
            "turbohom_solutions_total",
            "turbohom_intersection_ops_total",
            "turbohom_morsels_total",
            "turbohom_morsels_stolen_total",
            "turbohom_stage_seconds_total",
            "turbohom_query_latency_seconds",
            "turbohom_estimate_qerror",
            "turbohom_summary_prune_errors_total",
        ] {
            assert!(
                out.contains(&format!("# TYPE {family} ")),
                "missing TYPE line for {family}"
            );
        }
        assert!(out.contains("turbohom_queries_total{engine=\"turbohom++\",store=\"single\"} 1"));
        assert!(out.contains("turbohom_query_errors_total{engine=\"hashjoin\",store=\"single\"} 1"));
        assert!(out.contains("turbohom_solutions_total{engine=\"turbohom++\",store=\"single\"} 2"));
        assert!(out.contains("turbohom_stage_seconds_total{stage=\"execute\"} 0"));
        assert!(out.contains(
            "turbohom_query_latency_seconds_count{engine=\"turbohom++\",store=\"single\"} 1"
        ));
        assert!(out.contains("turbohom_estimate_qerror_count 2"));
        assert!(out.contains("turbohom_summary_prune_errors_total 2"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in out.lines().filter(|l| !l.starts_with('#')) {
            let (series, value) = line.rsplit_once(' ').unwrap();
            assert!(!series.is_empty());
            assert!(value.parse::<f64>().is_ok(), "bad value in line: {line}");
        }
    }

    #[test]
    fn qerror_histogram_buckets_by_log2_ratio() {
        let h = QErrorHistogram::default();
        h.record(1.0); // bucket 0 (le=2)
        h.record(1.9); // bucket 0
        h.record(5.0); // bucket 2 (le=8)
        h.record(0.5); // clamps to 1 → bucket 0
        h.record(f64::INFINITY); // clamps to 1 instead of overflowing
        h.record(1e12); // saturates into the top (+Inf) bucket
        assert_eq!(h.count(), 6);
        let mut out = String::new();
        h.render_prometheus(&mut out, "q");
        assert!(out.contains("q_bucket{le=\"2\"} 4"));
        assert!(out.contains("q_bucket{le=\"4\"} 4"));
        assert!(out.contains("q_bucket{le=\"8\"} 5"));
        assert!(out.contains("q_bucket{le=\"+Inf\"} 6"));
        assert!(out.contains("q_count 6"));
        // Cumulative counts never decrease.
        let mut last = 0u64;
        for line in out.lines().filter(|l| l.starts_with("q_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn per_engine_counters_are_independent() {
        let m = ServiceMetrics::new();
        let stats = MatchStats {
            solutions: 3,
            intersection_ops: 7,
            morsels: 4,
            morsels_stolen: 1,
            ..MatchStats::default()
        };
        m.record_success(
            EngineKind::TurboHomPlusPlus,
            Duration::from_micros(5),
            &stats,
        );
        m.record_success(
            EngineKind::TurboHomPlusPlus,
            Duration::from_micros(5),
            &stats,
        );
        m.record_error(EngineKind::MergeJoin);
        assert_eq!(
            m.engine(EngineKind::TurboHomPlusPlus)
                .queries
                .load(Ordering::Relaxed),
            2
        );
        assert_eq!(
            m.engine(EngineKind::MergeJoin)
                .errors
                .load(Ordering::Relaxed),
            1
        );
        assert_eq!(m.engine(EngineKind::HashJoin).latency.count(), 0);
        assert_eq!(m.total_queries(), 2);
        assert!(m.qps(EngineKind::TurboHomPlusPlus) > 0.0);
        // The matcher counters accumulate across requests.
        let t = m.engine(EngineKind::TurboHomPlusPlus);
        assert_eq!(t.solutions.load(Ordering::Relaxed), 6);
        assert_eq!(t.intersection_ops.load(Ordering::Relaxed), 14);
        assert_eq!(t.morsels.load(Ordering::Relaxed), 8);
        assert_eq!(t.morsels_stolen.load(Ordering::Relaxed), 2);
        assert_eq!(
            m.engine(EngineKind::MergeJoin)
                .solutions
                .load(Ordering::Relaxed),
            0
        );
    }
}
