//! Service metrics: per-engine throughput counters and latency histograms.
//!
//! Everything is lock-free (`AtomicU64`) so the request path never contends:
//! recording a latency is one `fetch_add` into a log₂-bucketed histogram.
//! Quantiles (p50/p95/p99) are estimated from the bucket counts — each
//! bucket `i` covers latencies in `[2^(i-1), 2^i)` microseconds, so the
//! estimate is exact to within a factor of two, which is what a `/stats`
//! dashboard needs (the paper reports milliseconds; sub-bucket precision
//! would be noise).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use turbohom_engine::{EngineKind, MatchStats};

/// Number of log₂ buckets: covers 1 µs … ~2³⁸ µs (≈ 76 hours) per query.
const BUCKETS: usize = 40;

/// A log₂-bucketed latency histogram.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_micros: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        // Bucket i holds values < 2^i µs: 0µs → bucket 0, 1µs → 1, 2-3µs → 2…
        let idx = (u64::BITS - micros.leading_zeros()).min(BUCKETS as u32 - 1) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency, or zero when nothing was recorded.
    pub fn mean(&self) -> Duration {
        let count = self.count();
        if count == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.total_micros.load(Ordering::Relaxed) / count)
    }

    /// Estimates the latency at quantile `q` (in `[0, 1]`): the upper bound
    /// of the first bucket covering the q-th observation.
    pub fn quantile(&self, q: f64) -> Duration {
        let count = self.count();
        if count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Duration::from_micros(1u64 << i);
            }
        }
        Duration::from_micros(1u64 << (BUCKETS - 1))
    }
}

/// Counters and latency for one engine kind.
#[derive(Default)]
pub struct EngineMetrics {
    /// Successfully answered queries.
    pub queries: AtomicU64,
    /// Queries that returned an error.
    pub errors: AtomicU64,
    /// Latency of successful queries (wall clock across the whole request:
    /// fingerprint + plan lookup/preparation + enumeration + rendering).
    pub latency: LatencyHistogram,
    /// Solutions returned across all successful queries.
    pub solutions: AtomicU64,
    /// Cumulative k-way intersections run by the `+INT` joinability test
    /// (all-zero for the join baselines, which never run the matcher).
    pub intersection_ops: AtomicU64,
    /// Cumulative morsels executed by the work-stealing scheduler (stays
    /// zero while requests run single-threaded).
    pub morsels: AtomicU64,
    /// Cumulative morsels obtained by stealing — a high ratio of stolen to
    /// total morsels means the per-region work is heavily skewed.
    pub morsels_stolen: AtomicU64,
}

/// All service metrics: one [`EngineMetrics`] per engine plus uptime.
pub struct ServiceMetrics {
    per_engine: [EngineMetrics; EngineKind::COUNT],
    started: Instant,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceMetrics {
    /// Creates empty metrics; uptime starts now.
    pub fn new() -> Self {
        ServiceMetrics {
            per_engine: Default::default(),
            started: Instant::now(),
        }
    }

    /// The metrics of one engine.
    pub fn engine(&self, kind: EngineKind) -> &EngineMetrics {
        &self.per_engine[kind.index()]
    }

    /// Records a successful query with the matcher's per-stage counters.
    pub fn record_success(&self, kind: EngineKind, latency: Duration, stats: &MatchStats) {
        let m = self.engine(kind);
        m.queries.fetch_add(1, Ordering::Relaxed);
        m.latency.record(latency);
        m.solutions
            .fetch_add(stats.solutions as u64, Ordering::Relaxed);
        m.intersection_ops
            .fetch_add(stats.intersection_ops as u64, Ordering::Relaxed);
        m.morsels.fetch_add(stats.morsels as u64, Ordering::Relaxed);
        m.morsels_stolen
            .fetch_add(stats.morsels_stolen as u64, Ordering::Relaxed);
    }

    /// Records a failed query.
    pub fn record_error(&self, kind: EngineKind) {
        self.engine(kind).errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Seconds since the service started.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Total successful queries across all engines.
    pub fn total_queries(&self) -> u64 {
        self.per_engine
            .iter()
            .map(|m| m.queries.load(Ordering::Relaxed))
            .sum()
    }

    /// Queries per second over the whole uptime, per engine.
    pub fn qps(&self, kind: EngineKind) -> f64 {
        let secs = self.uptime().as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.engine(kind).queries.load(Ordering::Relaxed) as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2_and_estimates_quantiles() {
        let h = LatencyHistogram::default();
        // 90 fast observations (~8 µs), 10 slow (~1000 µs).
        for _ in 0..90 {
            h.record(Duration::from_micros(8));
        }
        for _ in 0..10 {
            h.record(Duration::from_micros(1000));
        }
        assert_eq!(h.count(), 100);
        // p50 and p90 land in the 8µs bucket (upper bound 16µs);
        // p95/p99 land in the 1000µs bucket (upper bound 1024µs).
        assert_eq!(h.quantile(0.50), Duration::from_micros(16));
        assert_eq!(h.quantile(0.90), Duration::from_micros(16));
        assert_eq!(h.quantile(0.95), Duration::from_micros(1024));
        assert_eq!(h.quantile(0.99), Duration::from_micros(1024));
        let mean = h.mean();
        assert!(mean > Duration::from_micros(90) && mean < Duration::from_micros(120));
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn extreme_latencies_clamp_into_the_last_bucket() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_secs(1_000_000));
        assert_eq!(h.count(), 1);
        assert!(h.quantile(1.0) > Duration::from_secs(1));
    }

    #[test]
    fn per_engine_counters_are_independent() {
        let m = ServiceMetrics::new();
        let stats = MatchStats {
            solutions: 3,
            intersection_ops: 7,
            morsels: 4,
            morsels_stolen: 1,
            ..MatchStats::default()
        };
        m.record_success(
            EngineKind::TurboHomPlusPlus,
            Duration::from_micros(5),
            &stats,
        );
        m.record_success(
            EngineKind::TurboHomPlusPlus,
            Duration::from_micros(5),
            &stats,
        );
        m.record_error(EngineKind::MergeJoin);
        assert_eq!(
            m.engine(EngineKind::TurboHomPlusPlus)
                .queries
                .load(Ordering::Relaxed),
            2
        );
        assert_eq!(
            m.engine(EngineKind::MergeJoin)
                .errors
                .load(Ordering::Relaxed),
            1
        );
        assert_eq!(m.engine(EngineKind::HashJoin).latency.count(), 0);
        assert_eq!(m.total_queries(), 2);
        assert!(m.qps(EngineKind::TurboHomPlusPlus) > 0.0);
        // The matcher counters accumulate across requests.
        let t = m.engine(EngineKind::TurboHomPlusPlus);
        assert_eq!(t.solutions.load(Ordering::Relaxed), 6);
        assert_eq!(t.intersection_ops.load(Ordering::Relaxed), 14);
        assert_eq!(t.morsels.load(Ordering::Relaxed), 8);
        assert_eq!(t.morsels_stolen.load(Ordering::Relaxed), 2);
        assert_eq!(
            m.engine(EngineKind::MergeJoin)
                .solutions
                .load(Ordering::Relaxed),
            0
        );
    }
}
