//! `turbohom-service` — a concurrent SPARQL query service over one shared
//! [`Store`](turbohom_engine::Store).
//!
//! The embedded [`Store::execute`](turbohom_engine::Store::execute) API
//! re-parses and re-transforms a query on every call. This crate adds the
//! request-path machinery a server needs on top of the prepare/run split in
//! `turbohom-engine`:
//!
//! * [`QueryService`] — owns an `Arc<Store>`, answers queries from any
//!   number of threads,
//! * a **plan cache** ([`cache::PlanCache`]) — an LRU keyed by the
//!   normalized query fingerprint (see `turbohom_sparql::fingerprint`), so a
//!   repeated query skips parsing, transformation and matching-order
//!   determination and goes straight to enumeration,
//! * **metrics** ([`metrics::ServiceMetrics`]) — per-engine QPS and latency
//!   histograms (p50/p95/p99) plus cache hit/miss counters, served as JSON,
//! * **observability** — every request runs under a span trace
//!   (`turbohom-trace`): `profile=1` returns the full span tree inline,
//!   `explain=1` returns the structured plan tree without executing,
//!   `analyze=1` executes and annotates that tree with actuals (feeding the
//!   estimate-vs-actual q-error histogram), [`metrics::ServiceMetrics`]
//!   renders Prometheus text exposition, a [`slow::SlowQueryLog`] ring keeps
//!   the slowest offenders, and an [`journal::EventJournal`] ring records
//!   typed lifecycle events (query admitted/completed, plan cached/evicted,
//!   store loaded, shards pruned, slow query) correlated by trace id,
//! * an **HTTP/1.1 endpoint** ([`HttpServer`]) on `std::net::TcpListener` —
//!   `GET`/`POST /query` returning SPARQL-JSON, `/healthz`, `/stats`,
//!   `/metrics`, `/debug/slow`, `/debug/events` — and the `turbohom-server`
//!   binary wiring it to a LUBM or N-Triples store.
//!
//! ```
//! use std::sync::Arc;
//! use turbohom_engine::Store;
//! use turbohom_service::{QueryOptions, QueryService};
//!
//! let store = Store::from_ntriples(
//!     "<http://ex.org/a> <http://ex.org/p> <http://ex.org/b> .",
//! )
//! .unwrap();
//! let service = QueryService::new(Arc::new(store));
//!
//! let q = "SELECT ?x WHERE { ?x <http://ex.org/p> ?y . }";
//! let cold = service.query(q, QueryOptions::default()).unwrap();
//! assert!(!cold.cache_hit);
//! let warm = service.query(q, QueryOptions::default()).unwrap();
//! assert!(warm.cache_hit); // parse + transform skipped
//! assert_eq!(warm.results.len(), 1);
//! ```

pub mod cache;
pub mod http;
pub mod journal;
pub mod metrics;
pub mod service;
pub mod slow;

pub use cache::{InsertOutcome, PlanCache, PlanKey};
pub use http::{HttpServer, ServerHandle};
pub use journal::{EventJournal, JournalEntry, JournalEvent};
pub use metrics::{EngineMetrics, LatencyHistogram, QErrorHistogram, ServiceMetrics, StageTotals};
pub use service::{
    EngineStats, ExplainResponse, QueryOptions, QueryResponse, QueryService, ServiceConfig,
    StatsSnapshot,
};
pub use slow::{SlowQueryEntry, SlowQueryLog};
// Re-exported so HTTP-layer consumers can work with profile/explain reports
// and trace ids without a direct engine/trace dependency.
pub use turbohom_engine::{format_trace_id, ExplainReport, Trace, TraceReport};

/// The service is shared across worker threads; keep that provable.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<QueryService>();
    assert_send_sync::<PlanCache>();
    assert_send_sync::<ServiceMetrics>();
    assert_send_sync::<SlowQueryLog>();
    assert_send_sync::<EventJournal>();
};
