//! A minimal HTTP/1.1 front-end for the [`QueryService`] — `std::net` only,
//! no external dependencies (the build environment is offline).
//!
//! Endpoints (mirroring the SPARQL-protocol shape oxigraph's server exposes):
//!
//! * `GET /query?query=…&engine=…&threads=…&profile=…&explain=…&analyze=…`
//!   — execute a query; returns `application/sparql-results+json` plus
//!   `X-Cache: HIT|MISS`, `X-Engine`, `X-Fingerprint` and `X-Trace-Id`
//!   headers. With `profile=1` the JSON gains a top-level `"profile"`
//!   object: the request's span tree and per-stage timings. With
//!   `explain=1` the query is **not executed**: the response is the
//!   structured plan tree (`turbohom-explain/1` JSON). With `analyze=1`
//!   the query executes outside the plan cache and the SPARQL-JSON gains a
//!   top-level `"explain"` object: the plan tree annotated with actuals
//!   (per-step rows and q-errors, per-shard rows, matcher counters).
//! * `POST /query` — same; the query comes either as an
//!   `application/x-www-form-urlencoded` body (`query=…`) or raw as
//!   `application/sparql-query`.
//! * `GET /healthz` — liveness probe (`200` once the store is loaded) with
//!   uptime and engine/dataset identity.
//! * `GET /stats` — the [`StatsSnapshot`](crate::StatsSnapshot) as JSON.
//! * `GET /metrics` — Prometheus text exposition (version 0.0.4).
//! * `GET /debug/slow` — the slow-query recorder ring as JSON.
//! * `GET /debug/events` — the structured event journal as JSONL (one JSON
//!   object per line, oldest first, each carrying a trace id where one
//!   exists).
//!
//! Every endpoint also answers `HEAD` with the same headers (including
//! `Content-Length`) and no body. The optional access log writes one stderr
//! line per request: method, path, status, duration and trace id.
//!
//! Concurrency model: blocking accept loop, one thread per connection,
//! connections closed after each response. That is deliberately boring —
//! the interesting shared state (store, plan cache, metrics) is all inside
//! `QueryService`, which is what the concurrency tests hammer.

use crate::service::{QueryOptions, QueryService};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use turbohom_engine::{format_trace_id, json_escape, EngineKind};

/// Maximum accepted size of a request head or body (1 MiB, like oxigraph's
/// `MAX_SPARQL_BODY_SIZE`).
const MAX_REQUEST_SIZE: usize = 1 << 20;

/// The HTTP server: a bound listener plus the shared service.
pub struct HttpServer {
    listener: TcpListener,
    service: Arc<QueryService>,
    access_log: bool,
}

/// Handle to a server running in background threads (used by tests and by
/// graceful shutdown).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds to `addr` (e.g. `"127.0.0.1:7878"`; port `0` picks a free one).
    pub fn bind(addr: impl ToSocketAddrs, service: Arc<QueryService>) -> io::Result<HttpServer> {
        Ok(HttpServer {
            listener: TcpListener::bind(addr)?,
            service,
            access_log: false,
        })
    }

    /// Enables the per-request access log (one stderr line per request:
    /// method, path, status, duration, trace id).
    pub fn with_access_log(mut self, enabled: bool) -> Self {
        self.access_log = enabled;
        self
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves forever on the current thread (the `turbohom-server` binary).
    pub fn run(self) -> io::Result<()> {
        let access_log = self.access_log;
        for stream in self.listener.incoming() {
            // A failed accept (EMFILE under load, ECONNABORTED on a reset
            // connection) sheds that one connection, not the server.
            let Ok(stream) = stream else { continue };
            let service = Arc::clone(&self.service);
            std::thread::spawn(move || handle_connection(stream, &service, access_log));
        }
        Ok(())
    }

    /// Serves on a background accept thread and returns a stoppable handle.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let access_log = self.access_log;
        let accept_thread = std::thread::spawn(move || {
            for stream in self.listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let service = Arc::clone(&self.service);
                std::thread::spawn(move || handle_connection(stream, &service, access_log));
            }
        });
        Ok(ServerHandle {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }
}

impl ServerHandle {
    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread. In-flight
    /// request threads finish on their own.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// One parsed request.
struct Request {
    method: String,
    path: String,
    query_string: String,
    content_type: String,
    body: Vec<u8>,
}

/// One routed response plus the metadata the access log needs.
struct Routed {
    bytes: Vec<u8>,
    status: u16,
    /// Set only by `/query` (the one endpoint that runs under a trace).
    trace_id: Option<u64>,
}

impl Routed {
    fn new(status: u16, bytes: Vec<u8>) -> Routed {
        Routed {
            bytes,
            status,
            trace_id: None,
        }
    }
}

fn handle_connection(stream: TcpStream, service: &QueryService, access_log: bool) {
    let started = Instant::now();
    // A stalled or malicious client must not pin this thread (slowloris) …
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(std::time::Duration::from_secs(30)));
    let reading = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    // … and an endless request line must not buffer unboundedly: `take`
    // bounds the total bytes one request may occupy before parsing rejects
    // it via the head/body size checks.
    let mut reader = BufReader::new(reading.take(2 * MAX_REQUEST_SIZE as u64));
    let mut stream = stream;
    let (mut response, method, path) = match read_request(&mut reader) {
        Ok(request) => {
            let mut response = respond(&request, service);
            if request.method == "HEAD" {
                // RFC 9110: a HEAD response carries the headers (including
                // Content-Length) but no content.
                truncate_to_head(&mut response.bytes);
            }
            (response, request.method, request.path)
        }
        Err(e) => (
            Routed::new(400, error_response(400, &format!("bad request: {e}"))),
            "-".to_string(),
            "-".to_string(),
        ),
    };
    let _ = stream.write_all(&response.bytes);
    let _ = stream.flush();
    if access_log {
        eprintln!(
            "access method={method} path={path} status={} dur_ms={:.3} trace={}",
            response.status,
            started.elapsed().as_secs_f64() * 1000.0,
            response
                .trace_id
                .take()
                .map_or_else(|| "-".into(), format_trace_id),
        );
    }
}

/// Cuts a serialized response after the blank line separating head and body.
fn truncate_to_head(response: &mut Vec<u8>) {
    if let Some(end) = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
    {
        response.truncate(end);
    }
}

/// Reads and parses one HTTP/1.1 request (head + Content-Length body).
fn read_request(reader: &mut BufReader<io::Take<TcpStream>>) -> Result<Request, String> {
    let mut request_line = String::new();
    reader
        .read_line(&mut request_line)
        .map_err(|e| e.to_string())?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let target = parts.next().ok_or("missing request target")?.to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol {version}"));
    }
    let (path, query_string) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };

    let mut content_length = 0usize;
    let mut content_type = String::new();
    let mut head_size = request_line.len();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| e.to_string())?;
        head_size += line.len();
        if head_size > MAX_REQUEST_SIZE {
            return Err("request head too large".into());
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            match name.to_ascii_lowercase().as_str() {
                "content-length" => {
                    content_length = value.parse().map_err(|_| "bad Content-Length")?;
                }
                "content-type" => {
                    content_type = value.to_ascii_lowercase();
                }
                _ => {}
            }
        }
    }
    if content_length > MAX_REQUEST_SIZE {
        return Err("request body too large".into());
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| e.to_string())?;
    Ok(Request {
        method,
        path,
        query_string,
        content_type,
        body,
    })
}

/// Routes one request to its endpoint.
fn respond(request: &Request, service: &QueryService) -> Routed {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET" | "HEAD", "/healthz") => {
            let snapshot = service
                .store()
                .snapshot_path()
                .map(|p| format!("\"{}\"", json_escape(&p.display().to_string())))
                .unwrap_or_else(|| "null".into());
            let shards = service
                .store()
                .shard_count()
                .map_or_else(|| "null".into(), |n| n.to_string());
            let partitioning = service
                .store()
                .partitioner_name()
                .map_or_else(|| "null".into(), |p| format!("\"{p}\""));
            let body = format!(
                "{{\"status\":\"ok\",\"triples\":{},\"uptime_secs\":{:.3},\"engine\":\"{}\",\"dataset\":\"{}\",\"backend\":\"{}\",\"snapshot\":{},\"shards\":{},\"partitioning\":{}}}",
                service.store().triple_count(),
                service.uptime().as_secs_f64(),
                json_escape(service.config().default_engine.name()),
                json_escape(service.dataset_label()),
                service.store().backend_name(),
                snapshot,
                shards,
                partitioning,
            );
            Routed::new(200, json_response(200, &body, &[]))
        }
        ("GET" | "HEAD", "/stats") => {
            Routed::new(200, json_response(200, &service.stats().to_json(), &[]))
        }
        ("GET" | "HEAD", "/metrics") => Routed::new(
            200,
            build_response(200, "text/plain; version=0.0.4", &service.prometheus(), &[]),
        ),
        ("GET" | "HEAD", "/debug/slow") => {
            Routed::new(200, json_response(200, &service.slow_log().to_json(), &[]))
        }
        ("GET" | "HEAD", "/debug/events") => Routed::new(
            200,
            build_response(
                200,
                "application/x-ndjson",
                &service.journal().to_jsonl(),
                &[],
            ),
        ),
        ("GET" | "POST", "/query") => respond_query(request, service),
        ("GET" | "HEAD", "/") => Routed::new(
            200,
            json_response(
                200,
                "{\"service\":\"turbohom\",\"endpoints\":[\"/query\",\"/healthz\",\"/stats\",\"/metrics\",\"/debug/slow\",\"/debug/events\"]}",
                &[],
            ),
        ),
        (
            _,
            "/healthz" | "/stats" | "/metrics" | "/debug/slow" | "/debug/events" | "/query" | "/",
        ) => Routed::new(
            405,
            error_response(405, &format!("method {} not allowed", request.method)),
        ),
        _ => Routed::new(
            404,
            error_response(404, &format!("no such endpoint: {}", request.path)),
        ),
    }
}

/// The `/query` endpoint: parameter extraction + execution + serialization.
fn respond_query(request: &Request, service: &QueryService) -> Routed {
    let bad = |message: &str| Routed::new(400, error_response(400, message));
    let mut params = parse_query_string(&request.query_string);
    if request.method == "POST" {
        if request
            .content_type
            .starts_with("application/x-www-form-urlencoded")
        {
            let body = String::from_utf8_lossy(&request.body).into_owned();
            params.extend(parse_query_string(&body));
        } else {
            // Raw query body (application/sparql-query or unspecified).
            match String::from_utf8(request.body.clone()) {
                Ok(q) => params.push(("query".into(), q)),
                Err(_) => return bad("query body is not valid UTF-8"),
            }
        }
    }
    let param = |name: &str| {
        params
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    let Some(sparql) = param("query") else {
        return bad("missing `query` parameter");
    };
    let engine = match param("engine") {
        None => None,
        Some(name) => match name.parse::<EngineKind>() {
            Ok(kind) => Some(kind),
            Err(e) => return bad(&e.to_string()),
        },
    };
    let threads = match param("threads") {
        None => None,
        Some(t) => match t.parse::<usize>() {
            Ok(t) if t >= 1 => Some(t),
            _ => return bad("`threads` must be a positive integer"),
        },
    };
    let bool_param = |name: &str| match param(name).map(str::to_ascii_lowercase).as_deref() {
        None | Some("0") | Some("false") | Some("no") | Some("") => Ok(false),
        Some("1") | Some("true") | Some("yes") => Ok(true),
        Some(_) => Err(format!(
            "`{name}` must be a boolean (1/0, true/false, yes/no)"
        )),
    };
    let (profile, explain, analyze) = match (
        bool_param("profile"),
        bool_param("explain"),
        bool_param("analyze"),
    ) {
        (Ok(p), Ok(e), Ok(a)) => (p, e, a),
        (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => return bad(&e),
    };
    if explain && analyze {
        return bad("`explain` and `analyze` are mutually exclusive (explain never executes)");
    }
    if explain {
        // EXPLAIN: build and return the plan tree without executing.
        return match service.explain(
            sparql,
            QueryOptions {
                engine,
                threads,
                ..QueryOptions::default()
            },
        ) {
            Ok(response) => {
                let headers = [
                    ("X-Engine", response.engine.to_string()),
                    ("X-Fingerprint", format!("{:016x}", response.fingerprint)),
                    ("X-Trace-Id", format_trace_id(response.trace_id)),
                ];
                Routed {
                    bytes: json_response(200, &response.report.to_json(), &headers),
                    status: 200,
                    trace_id: Some(response.trace_id),
                }
            }
            Err(e) => bad(&e.to_string()),
        };
    }
    match service.query(
        sparql,
        QueryOptions {
            engine,
            threads,
            profile,
            analyze,
        },
    ) {
        Ok(response) => {
            let cache = if response.cache_hit { "HIT" } else { "MISS" };
            let headers = [
                ("X-Cache", cache.to_string()),
                ("X-Engine", response.engine.to_string()),
                ("X-Fingerprint", format!("{:016x}", response.fingerprint)),
                ("X-Trace-Id", format_trace_id(response.trace_id)),
            ];
            let mut body = response.results.to_sparql_json();
            // Splice the profile / explain reports in as top-level members,
            // next to the standard "head"/"results" pair.
            if let Some(report) = &response.profile {
                debug_assert!(body.ends_with('}'));
                body.truncate(body.len() - 1);
                body.push_str(",\"profile\":");
                body.push_str(&report.to_json());
                body.push('}');
            }
            if let Some(report) = &response.explain {
                debug_assert!(body.ends_with('}'));
                body.truncate(body.len() - 1);
                body.push_str(",\"explain\":");
                body.push_str(&report.to_json());
                body.push('}');
            }
            Routed {
                bytes: sparql_json_response(&body, &headers),
                status: 200,
                trace_id: Some(response.trace_id),
            }
        }
        Err(e) => bad(&e.to_string()),
    }
}

/// Splits and percent-decodes an `application/x-www-form-urlencoded` string.
pub fn parse_query_string(qs: &str) -> Vec<(String, String)> {
    qs.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (percent_decode(k), percent_decode(v))
        })
        .collect()
}

/// Decodes `%XX` escapes and `+`-as-space.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                match (
                    bytes.get(i + 1).and_then(|b| (*b as char).to_digit(16)),
                    bytes.get(i + 2).and_then(|b| (*b as char).to_digit(16)),
                ) {
                    (Some(hi), Some(lo)) => {
                        out.push((hi * 16 + lo) as u8);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Builds a full HTTP response with a JSON body.
fn json_response(status: u16, body: &str, extra_headers: &[(&str, String)]) -> Vec<u8> {
    build_response(status, "application/json", body, extra_headers)
}

/// Builds a `200` response carrying SPARQL-JSON results.
fn sparql_json_response(body: &str, extra_headers: &[(&str, String)]) -> Vec<u8> {
    build_response(200, "application/sparql-results+json", body, extra_headers)
}

/// Builds an error response with a JSON `{"error": …}` body.
fn error_response(status: u16, message: &str) -> Vec<u8> {
    let body = format!("{{\"error\":\"{}\"}}", json_escape(message));
    build_response(status, "application/json", &body, &[])
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    }
}

fn build_response(
    status: u16,
    content_type: &str,
    body: &str,
    extra_headers: &[(&str, String)],
) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\nServer: turbohom\r\n",
        status_text(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_string_parsing_decodes_escapes() {
        let params = parse_query_string("query=SELECT%20%3Fx&engine=turbohom%2B%2B&a=b+c");
        assert_eq!(
            params,
            vec![
                ("query".into(), "SELECT ?x".into()),
                ("engine".into(), "turbohom++".into()),
                ("a".into(), "b c".into()),
            ]
        );
        assert!(parse_query_string("").is_empty());
    }

    #[test]
    fn percent_decode_edge_cases() {
        assert_eq!(percent_decode("a%2Bb"), "a+b");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("%3f"), "?");
    }

    #[test]
    fn responses_have_correct_framing() {
        let r = String::from_utf8(json_response(200, "{}", &[])).unwrap();
        assert!(r.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(r.contains("Content-Length: 2\r\n"));
        assert!(r.ends_with("\r\n\r\n{}"));
        let e = String::from_utf8(error_response(404, "nope \"x\"")).unwrap();
        assert!(e.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(e.contains(r#"{"error":"nope \"x\""}"#));
    }
}
