//! End-to-end service tests: a real `HttpServer` on a LUBM(1) store, hit by
//! concurrent clients over TCP, checked byte-for-byte against the embedded
//! `Store::execute` API (the ISSUE 2 acceptance criterion).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use turbohom_datasets::lubm::{self, LubmConfig, LubmGenerator};
use turbohom_engine::{EngineKind, Store};
use turbohom_service::{HttpServer, QueryOptions, QueryService, ServerHandle, ServiceConfig};

fn lubm_service() -> (Arc<QueryService>, ServerHandle) {
    lubm_service_with(ServiceConfig::default())
}

fn lubm_service_with(config: ServiceConfig) -> (Arc<QueryService>, ServerHandle) {
    let dataset = LubmGenerator::new(LubmConfig::scale(1)).generate();
    let store = Arc::new(Store::from_dataset(dataset));
    let service = Arc::new(QueryService::with_config(store, config).with_dataset_label("lubm-1"));
    let server = HttpServer::bind("127.0.0.1:0", Arc::clone(&service)).unwrap();
    let handle = server.spawn().unwrap();
    (service, handle)
}

/// Sends one raw HTTP request and returns (status line, headers, body).
fn http_request(addr: std::net::SocketAddr, request: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a blank line");
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_string(), headers.to_string(), body.to_string())
}

/// Percent-encodes a query so it survives a GET query string.
fn urlencode(s: &str) -> String {
    let mut out = String::new();
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

fn get_query(addr: std::net::SocketAddr, sparql: &str, engine: &str) -> (String, String, String) {
    let request = format!(
        "GET /query?query={}&engine={} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n",
        urlencode(sparql),
        urlencode(engine),
    );
    http_request(addr, &request)
}

#[test]
fn concurrent_clients_get_results_identical_to_the_embedded_api() {
    let (service, handle) = lubm_service();
    let addr = handle.addr();

    // Expected bytes come from the embedded API on the same store.
    let queries: Vec<_> = lubm::queries().into_iter().take(7).collect();
    let expected: Vec<String> = queries
        .iter()
        .map(|q| {
            let results = service
                .store()
                .execute(&q.sparql, EngineKind::TurboHomPlusPlus)
                .unwrap();
            assert!(!results.is_empty(), "{} should have solutions", q.id);
            results.to_sparql_json()
        })
        .collect();

    // Four clients, each issuing Q1–Q7 twice (the second sweep hits the
    // plan cache), all against the shared service.
    std::thread::scope(|scope| {
        for _client in 0..4 {
            let queries = &queries;
            let expected = &expected;
            scope.spawn(move || {
                for _round in 0..2 {
                    for (q, want) in queries.iter().zip(expected) {
                        let (status, headers, body) = get_query(addr, &q.sparql, "turbohom++");
                        assert_eq!(status, "HTTP/1.1 200 OK", "{}: {body}", q.id);
                        assert!(
                            headers.contains("application/sparql-results+json"),
                            "{}: {headers}",
                            q.id
                        );
                        assert_eq!(&body, want, "{} differs over HTTP", q.id);
                    }
                }
            });
        }
    });

    // 4 clients × 2 rounds × 7 queries = 56 requests over 7 distinct plans:
    // at least the whole second sweep hit the cache.
    let stats = service.stats();
    assert_eq!(
        stats.engines[EngineKind::TurboHomPlusPlus.index()].queries,
        56
    );
    assert!(stats.cache_hits >= 28, "hits = {}", stats.cache_hits);
    assert_eq!(stats.cache_size, 7);
    // Concurrent misses on the same fresh key may each prepare once, but
    // never more than once per request of the first sweep.
    assert!(stats.plans_prepared >= 7 && stats.plans_prepared <= 28);

    handle.shutdown();
}

#[test]
fn warm_requests_skip_parse_and_transform() {
    let (service, handle) = lubm_service();
    let q = &lubm::queries()[0].sparql;

    let cold = service.query(q, QueryOptions::default()).unwrap();
    assert!(!cold.cache_hit);
    assert_eq!(service.stats().plans_prepared, 1);

    // Ten warm runs: the prepare counter must not move.
    for _ in 0..10 {
        let warm = service.query(q, QueryOptions::default()).unwrap();
        assert!(warm.cache_hit);
        assert_eq!(warm.results.rows, cold.results.rows);
    }
    let stats = service.stats();
    assert_eq!(stats.plans_prepared, 1);
    assert_eq!(stats.cache_hits, 10);

    handle.shutdown();
}

#[test]
fn http_engine_parameter_and_stats_endpoint() {
    let (_service, handle) = lubm_service();
    let addr = handle.addr();
    let q = &lubm::queries()[0].sparql;

    // The same query through two engines gives the same bindings.
    let (s1, h1, b1) = get_query(addr, q, "turbohom++");
    let (s2, h2, b2) = get_query(addr, q, "MERGE-JOIN");
    assert_eq!(s1, "HTTP/1.1 200 OK");
    assert_eq!(s2, "HTTP/1.1 200 OK");
    assert!(h1.contains("X-Engine: turbohom++"), "{h1}");
    assert!(h2.contains("X-Engine: mergejoin"), "{h2}");
    assert!(h1.contains("X-Cache: MISS"));
    assert_eq!(b1, b2);

    // Repeat → cache hit surfaces in the header and in /stats.
    let (_, h3, _) = get_query(addr, q, "turbohom++");
    assert!(h3.contains("X-Cache: HIT"), "{h3}");

    let (status, _, stats_body) = http_request(
        addr,
        "GET /stats HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(stats_body.contains("\"hits\":1"), "{stats_body}");
    assert!(stats_body.contains("\"mergejoin\""));

    let (status, _, health) = http_request(
        addr,
        "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(health.contains("\"status\":\"ok\""));

    // HEAD gets the same headers (including Content-Length) but no body.
    let (status, headers, body) = http_request(
        addr,
        "HEAD /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(headers.contains("Content-Length"), "{headers}");
    assert!(body.is_empty(), "HEAD must not carry content: {body:?}");

    handle.shutdown();
}

#[test]
fn post_bodies_and_error_statuses() {
    let (_service, handle) = lubm_service();
    let addr = handle.addr();

    // POST with a urlencoded form body.
    let form = format!("query={}", urlencode("SELECT ?s WHERE { ?s ?p ?o . }"));
    let request = format!(
        "POST /query HTTP/1.1\r\nHost: x\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{form}",
        form.len(),
    );
    let (status, _, body) = http_request(addr, &request);
    assert_eq!(status, "HTTP/1.1 200 OK", "{body}");

    // POST with a raw SPARQL body.
    let sparql = "SELECT ?s WHERE { ?s ?p ?o . }";
    let request = format!(
        "POST /query HTTP/1.1\r\nHost: x\r\nContent-Type: application/sparql-query\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{sparql}",
        sparql.len(),
    );
    let (status, _, _) = http_request(addr, &request);
    assert_eq!(status, "HTTP/1.1 200 OK");

    // Malformed SPARQL → 400 with a JSON error.
    let (status, _, body) = get_query(addr, "SELECT WHERE {", "turbohom++");
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    assert!(body.contains("\"error\""));

    // Unknown engine → 400.
    let (status, _, body) = get_query(addr, "SELECT ?s WHERE { ?s ?p ?o . }", "sparqlotron");
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    assert!(body.contains("sparqlotron"));

    // Unknown path → 404; bad method → 405.
    let (status, _, _) = http_request(
        addr,
        "GET /nope HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    let (status, _, _) = http_request(
        addr,
        "DELETE /query HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, "HTTP/1.1 405 Method Not Allowed");

    // Missing query parameter → 400.
    let (status, _, body) = http_request(
        addr,
        "GET /query HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    assert!(body.contains("missing `query`"));

    handle.shutdown();
}

/// Extracts the first JSON number following `"key":` in `json`.
fn json_number(json: &str, key: &str) -> f64 {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle).map(|i| i + needle.len()).unwrap();
    let rest = &json[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && c != '.' && c != '-')
        .unwrap_or(rest.len());
    rest[..end].parse().unwrap()
}

#[test]
fn profile_mode_returns_stage_timings_that_cover_the_request() {
    let (_service, handle) = lubm_service();
    let addr = handle.addr();
    let q = &lubm::queries()[1].sparql; // Q2: a triangle query, real work

    let request = format!(
        "GET /query?query={}&profile=1&threads=2 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        urlencode(q),
    );
    // The stage-sum invariant below is about the tracer, not the OS
    // scheduler: when the whole workspace test suite runs in parallel, a
    // preemption *between* two spans can open a gap the roll-up honestly
    // doesn't cover. Take the best of a few attempts before judging.
    let (mut headers, mut body) = (String::new(), String::new());
    let (mut stage_sum, mut total_us) = (0.0f64, f64::MAX);
    for _attempt in 0..5 {
        let (status, h, b) = http_request(addr, &request);
        assert_eq!(status, "HTTP/1.1 200 OK", "{b}");
        assert!(h.contains("X-Trace-Id: "), "{h}");

        // The SPARQL-JSON body gained a top-level profile block with the
        // span tree and per-stage timings.
        assert!(b.contains("\"head\"") && b.contains("\"results\""));
        let profile_at = b.find("\"profile\":{").expect("profile block present");
        let profile = &b[profile_at..];
        for stage in [
            "fingerprint",
            "cache_lookup",
            "parse",
            "transform",
            "execute",
        ] {
            assert!(profile.contains(&format!("\"{stage}\"")), "missing {stage}");
        }
        // Detailed spans from the matching core, parented under execute.
        assert!(profile.contains("\"candidate_regions\""));
        assert!(profile.contains("\"matching_order\""));
        assert!(profile.contains("\"enumeration\""));

        total_us = json_number(profile, "total_us");
        let stages_start = profile.find("\"stages\":{").unwrap() + "\"stages\":{".len();
        let stages_end = stages_start + profile[stages_start..].find('}').unwrap();
        stage_sum = profile[stages_start..stages_end]
            .split(',')
            .map(|pair| pair.split_once(':').unwrap().1.parse::<f64>().unwrap())
            .sum();
        headers = h;
        body = b;
        if stage_sum >= 0.9 * total_us {
            break;
        }
    }

    // Acceptance check: the stage timings sum to (within 10% of) the total
    // request latency — the stages *are* the request, so the roll-up may
    // only miss inter-span gaps.
    assert!(
        stage_sum >= 0.9 * total_us && stage_sum <= 1.01 * total_us,
        "stage sum {stage_sum}µs vs total {total_us}µs"
    );
    let profile = &body[body.find("\"profile\":{").unwrap()..];

    // The trace id in the header matches the one in the body.
    let header_id = headers
        .lines()
        .find_map(|l| l.strip_prefix("X-Trace-Id: "))
        .unwrap();
    assert!(profile.contains(&format!("\"trace_id\":\"{header_id}\"")));

    // Without profile=…, no profile block (and the response still carries a
    // trace id — coarse tracing is always on).
    let (status, headers, body) = get_query(addr, q, "turbohom++");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(headers.contains("X-Trace-Id: "));
    assert!(!body.contains("\"profile\""));

    // A non-boolean profile value → 400.
    let request = format!(
        "GET /query?query={}&profile=maybe HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        urlencode(q),
    );
    let (status, _, _) = http_request(addr, &request);
    assert_eq!(status, "HTTP/1.1 400 Bad Request");

    handle.shutdown();
}

#[test]
fn metrics_endpoint_serves_prometheus_exposition() {
    let (_service, handle) = lubm_service();
    let addr = handle.addr();
    let q = &lubm::queries()[0].sparql;
    get_query(addr, q, "turbohom++");
    get_query(addr, q, "turbohom++");

    let (status, headers, body) = http_request(
        addr,
        "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(headers.contains("Content-Type: text/plain; version=0.0.4"));
    assert!(body.contains("# TYPE turbohom_queries_total counter"));
    assert!(body.contains("turbohom_queries_total{engine=\"turbohom++\",store=\"single\"} 2"));
    assert!(body.contains("# TYPE turbohom_query_latency_seconds histogram"));
    assert!(body.contains("le=\"+Inf\""));
    assert!(body.contains("turbohom_plan_cache_hits_total 1"));
    assert!(body.contains("turbohom_stage_seconds_total{stage=\"execute\"}"));
    assert!(body.contains("turbohom_triples "));

    handle.shutdown();
}

#[test]
fn slow_query_recorder_surfaces_offenders_at_debug_slow() {
    // Threshold zero: every query is recorded.
    let (_service, handle) = lubm_service_with(ServiceConfig {
        slow_query: Some(Duration::ZERO),
        slow_log_capacity: 8,
        ..ServiceConfig::default()
    });
    let addr = handle.addr();
    let q = &lubm::queries()[0].sparql;
    let (_, headers, _) = get_query(addr, q, "turbohom++");
    let trace_id = headers
        .lines()
        .find_map(|l| l.strip_prefix("X-Trace-Id: "))
        .unwrap()
        .to_string();

    let (status, _, body) = http_request(
        addr,
        "GET /debug/slow HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains("\"threshold_ms\":0.000"));
    assert!(body.contains(&format!("\"trace_id\":\"{trace_id}\"")));
    assert!(body.contains("\"stages_ms\":{"));
    assert!(body.contains("\"execute\":"));
    assert!(body.contains("\"engine\":\"turbohom++\""));

    handle.shutdown();
}

#[test]
fn healthz_reports_identity_and_head_works_everywhere() {
    let (_service, handle) = lubm_service();
    let addr = handle.addr();

    let (status, _, health) = http_request(
        addr,
        "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(health.contains("\"status\":\"ok\""));
    assert!(health.contains("\"uptime_secs\":"));
    assert!(health.contains("\"engine\":\"turbohom++\""));
    assert!(health.contains("\"dataset\":\"lubm-1\""));
    assert!(health.contains("\"backend\":\"heap\""));
    assert!(health.contains("\"snapshot\":null"));
    assert!(json_number(&health, "uptime_secs") >= 0.0);

    // HEAD returns headers + Content-Length and no body, on every GET
    // endpoint (the satellite hardening check: `/` and `/stats` included).
    let content_length = |headers: &str| -> usize {
        headers
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .parse()
            .unwrap()
    };
    for path in [
        "/",
        "/healthz",
        "/stats",
        "/metrics",
        "/debug/slow",
        "/debug/events",
    ] {
        let (status, headers, body) = http_request(
            addr,
            &format!("HEAD {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"),
        );
        assert_eq!(status, "HTTP/1.1 200 OK", "{path}");
        assert!(
            content_length(&headers) > 0,
            "{path} must advertise its body length"
        );
        assert!(body.is_empty(), "HEAD {path} must not carry content");
        // A GET's advertised length matches its own body. (Not compared to
        // the HEAD's length: bodies embedding the uptime legitimately change
        // width between two requests.)
        let (_, get_headers, get_body) = http_request(
            addr,
            &format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"),
        );
        assert_eq!(get_body.len(), content_length(&get_headers), "{path}");
    }

    // The root endpoint lists the new surfaces.
    let (_, _, root) = http_request(
        addr,
        "GET / HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert!(root.contains("/metrics") && root.contains("/debug/slow"));
    assert!(root.contains("/debug/events"));

    handle.shutdown();
}

#[test]
fn explain_over_http_returns_the_plan_tree_without_executing() {
    let (service, handle) = lubm_service();
    let addr = handle.addr();
    let q = &lubm::queries()[0].sparql;

    let request = format!(
        "GET /query?query={}&engine={}&explain=1 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        urlencode(q),
        urlencode("turbohom++"),
    );
    let (status, headers, body) = http_request(addr, &request);
    assert_eq!(status, "HTTP/1.1 200 OK", "{body}");
    assert!(headers.contains("X-Trace-Id: "));
    assert!(headers.contains("X-Engine: turbohom++"));
    assert!(body.contains("\"schema\":\"turbohom-explain/1\""));
    assert!(body.contains("\"mode\":\"explain\""));
    assert!(body.contains("\"store\":\"single\""));
    assert!(body.contains("\"steps\":[{\"position\":0"));
    assert!(body.contains("\"estimate\":"));
    // Nothing executed: no SPARQL bindings, no execution counters moved.
    assert!(!body.contains("\"bindings\""));
    let stats = service.stats();
    assert_eq!(
        stats.engines[EngineKind::TurboHomPlusPlus.index()].queries,
        0
    );
    assert_eq!(stats.plans_prepared, 0);
    assert_eq!(stats.cache_size, 0);

    // explain and analyze together are rejected.
    let request = format!(
        "GET /query?query={}&explain=1&analyze=1 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        urlencode(q),
    );
    let (status, _, _) = http_request(addr, &request);
    assert_eq!(status, "HTTP/1.1 400 Bad Request");

    handle.shutdown();
}

#[test]
fn analyze_over_http_splices_actuals_and_feeds_qerror_metrics() {
    let (service, handle) = lubm_service();
    let addr = handle.addr();
    let q = &lubm::queries()[1].sparql; // Q2: multi-step plan with real joins

    let request = format!(
        "GET /query?query={}&engine={}&analyze=1 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        urlencode(q),
        urlencode("turbohom++"),
    );
    let (status, _, body) = http_request(addr, &request);
    assert_eq!(status, "HTTP/1.1 200 OK", "{body}");
    // The SPARQL-JSON body carries the bindings plus the annotated tree.
    assert!(body.contains("\"bindings\""));
    assert!(body.contains(",\"explain\":{"));
    assert!(body.contains("\"mode\":\"analyze\""));
    assert!(body.contains("\"actual\""));
    // The actuals match what the embedded API returns for the same query.
    let want = service
        .store()
        .execute(q, EngineKind::TurboHomPlusPlus)
        .unwrap()
        .len();
    assert!(
        body.contains(&format!("\"actual\":{{\"solutions\":{want}")),
        "{body}"
    );

    // One analyze query is enough to populate the q-error histogram.
    let (_, _, metrics) = http_request(
        addr,
        "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert!(metrics.contains("# TYPE turbohom_estimate_qerror histogram"));
    assert!(metrics.contains("turbohom_estimate_qerror_count"));
    assert!(!metrics.contains("turbohom_estimate_qerror_count 0\n"));
    assert!(metrics.contains("turbohom_summary_prune_errors_total"));

    handle.shutdown();
}

#[test]
fn debug_events_serves_the_journal_as_jsonl_with_trace_ids() {
    let (_service, handle) = lubm_service();
    let addr = handle.addr();
    let q = &lubm::queries()[0].sparql;
    let (_, headers, _) = get_query(addr, q, "turbohom++");
    let trace_id = headers
        .lines()
        .find_map(|l| l.strip_prefix("X-Trace-Id: "))
        .unwrap()
        .to_string();

    let (status, headers, body) = http_request(
        addr,
        "GET /debug/events HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(headers.contains("Content-Type: application/x-ndjson"));
    // One JSON object per line, each carrying a monotone sequence number.
    assert!(body.ends_with('\n'));
    for line in body.lines() {
        assert!(
            line.starts_with("{\"seq\":") && line.ends_with('}'),
            "{line}"
        );
    }
    // The lifecycle is there, correlated by the request's trace id.
    assert!(body.contains("\"event\":\"store_loaded\""));
    assert!(body.contains("\"event\":\"query_admitted\""));
    assert!(body.contains("\"event\":\"plan_cached\""));
    assert!(body.contains("\"event\":\"query_completed\""));
    let correlated = body
        .lines()
        .filter(|l| l.contains(&format!("\"trace\":\"{trace_id}\"")))
        .count();
    assert!(
        correlated >= 3,
        "{correlated} events for {trace_id}:\n{body}"
    );

    handle.shutdown();
}
