//! End-to-end service tests: a real `HttpServer` on a LUBM(1) store, hit by
//! concurrent clients over TCP, checked byte-for-byte against the embedded
//! `Store::execute` API (the ISSUE 2 acceptance criterion).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use turbohom_datasets::lubm::{self, LubmConfig, LubmGenerator};
use turbohom_engine::{EngineKind, Store};
use turbohom_service::{HttpServer, QueryOptions, QueryService, ServerHandle};

fn lubm_service() -> (Arc<QueryService>, ServerHandle) {
    let dataset = LubmGenerator::new(LubmConfig::scale(1)).generate();
    let store = Arc::new(Store::from_dataset(dataset));
    let service = Arc::new(QueryService::new(store));
    let server = HttpServer::bind("127.0.0.1:0", Arc::clone(&service)).unwrap();
    let handle = server.spawn().unwrap();
    (service, handle)
}

/// Sends one raw HTTP request and returns (status line, headers, body).
fn http_request(addr: std::net::SocketAddr, request: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a blank line");
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_string(), headers.to_string(), body.to_string())
}

/// Percent-encodes a query so it survives a GET query string.
fn urlencode(s: &str) -> String {
    let mut out = String::new();
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

fn get_query(addr: std::net::SocketAddr, sparql: &str, engine: &str) -> (String, String, String) {
    let request = format!(
        "GET /query?query={}&engine={} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n",
        urlencode(sparql),
        urlencode(engine),
    );
    http_request(addr, &request)
}

#[test]
fn concurrent_clients_get_results_identical_to_the_embedded_api() {
    let (service, handle) = lubm_service();
    let addr = handle.addr();

    // Expected bytes come from the embedded API on the same store.
    let queries: Vec<_> = lubm::queries().into_iter().take(7).collect();
    let expected: Vec<String> = queries
        .iter()
        .map(|q| {
            let results = service
                .store()
                .execute(&q.sparql, EngineKind::TurboHomPlusPlus)
                .unwrap();
            assert!(!results.is_empty(), "{} should have solutions", q.id);
            results.to_sparql_json()
        })
        .collect();

    // Four clients, each issuing Q1–Q7 twice (the second sweep hits the
    // plan cache), all against the shared service.
    std::thread::scope(|scope| {
        for _client in 0..4 {
            let queries = &queries;
            let expected = &expected;
            scope.spawn(move || {
                for _round in 0..2 {
                    for (q, want) in queries.iter().zip(expected) {
                        let (status, headers, body) = get_query(addr, &q.sparql, "turbohom++");
                        assert_eq!(status, "HTTP/1.1 200 OK", "{}: {body}", q.id);
                        assert!(
                            headers.contains("application/sparql-results+json"),
                            "{}: {headers}",
                            q.id
                        );
                        assert_eq!(&body, want, "{} differs over HTTP", q.id);
                    }
                }
            });
        }
    });

    // 4 clients × 2 rounds × 7 queries = 56 requests over 7 distinct plans:
    // at least the whole second sweep hit the cache.
    let stats = service.stats();
    assert_eq!(
        stats.engines[EngineKind::TurboHomPlusPlus.index()].queries,
        56
    );
    assert!(stats.cache_hits >= 28, "hits = {}", stats.cache_hits);
    assert_eq!(stats.cache_size, 7);
    // Concurrent misses on the same fresh key may each prepare once, but
    // never more than once per request of the first sweep.
    assert!(stats.plans_prepared >= 7 && stats.plans_prepared <= 28);

    handle.shutdown();
}

#[test]
fn warm_requests_skip_parse_and_transform() {
    let (service, handle) = lubm_service();
    let q = &lubm::queries()[0].sparql;

    let cold = service.query(q, QueryOptions::default()).unwrap();
    assert!(!cold.cache_hit);
    assert_eq!(service.stats().plans_prepared, 1);

    // Ten warm runs: the prepare counter must not move.
    for _ in 0..10 {
        let warm = service.query(q, QueryOptions::default()).unwrap();
        assert!(warm.cache_hit);
        assert_eq!(warm.results.rows, cold.results.rows);
    }
    let stats = service.stats();
    assert_eq!(stats.plans_prepared, 1);
    assert_eq!(stats.cache_hits, 10);

    handle.shutdown();
}

#[test]
fn http_engine_parameter_and_stats_endpoint() {
    let (_service, handle) = lubm_service();
    let addr = handle.addr();
    let q = &lubm::queries()[0].sparql;

    // The same query through two engines gives the same bindings.
    let (s1, h1, b1) = get_query(addr, q, "turbohom++");
    let (s2, h2, b2) = get_query(addr, q, "MERGE-JOIN");
    assert_eq!(s1, "HTTP/1.1 200 OK");
    assert_eq!(s2, "HTTP/1.1 200 OK");
    assert!(h1.contains("X-Engine: turbohom++"), "{h1}");
    assert!(h2.contains("X-Engine: mergejoin"), "{h2}");
    assert!(h1.contains("X-Cache: MISS"));
    assert_eq!(b1, b2);

    // Repeat → cache hit surfaces in the header and in /stats.
    let (_, h3, _) = get_query(addr, q, "turbohom++");
    assert!(h3.contains("X-Cache: HIT"), "{h3}");

    let (status, _, stats_body) = http_request(
        addr,
        "GET /stats HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(stats_body.contains("\"hits\":1"), "{stats_body}");
    assert!(stats_body.contains("\"mergejoin\""));

    let (status, _, health) = http_request(
        addr,
        "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(health.contains("\"status\":\"ok\""));

    // HEAD gets the same headers (including Content-Length) but no body.
    let (status, headers, body) = http_request(
        addr,
        "HEAD /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(headers.contains("Content-Length"), "{headers}");
    assert!(body.is_empty(), "HEAD must not carry content: {body:?}");

    handle.shutdown();
}

#[test]
fn post_bodies_and_error_statuses() {
    let (_service, handle) = lubm_service();
    let addr = handle.addr();

    // POST with a urlencoded form body.
    let form = format!("query={}", urlencode("SELECT ?s WHERE { ?s ?p ?o . }"));
    let request = format!(
        "POST /query HTTP/1.1\r\nHost: x\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{form}",
        form.len(),
    );
    let (status, _, body) = http_request(addr, &request);
    assert_eq!(status, "HTTP/1.1 200 OK", "{body}");

    // POST with a raw SPARQL body.
    let sparql = "SELECT ?s WHERE { ?s ?p ?o . }";
    let request = format!(
        "POST /query HTTP/1.1\r\nHost: x\r\nContent-Type: application/sparql-query\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{sparql}",
        sparql.len(),
    );
    let (status, _, _) = http_request(addr, &request);
    assert_eq!(status, "HTTP/1.1 200 OK");

    // Malformed SPARQL → 400 with a JSON error.
    let (status, _, body) = get_query(addr, "SELECT WHERE {", "turbohom++");
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    assert!(body.contains("\"error\""));

    // Unknown engine → 400.
    let (status, _, body) = get_query(addr, "SELECT ?s WHERE { ?s ?p ?o . }", "sparqlotron");
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    assert!(body.contains("sparqlotron"));

    // Unknown path → 404; bad method → 405.
    let (status, _, _) = http_request(
        addr,
        "GET /nope HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    let (status, _, _) = http_request(
        addr,
        "DELETE /query HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, "HTTP/1.1 405 Method Not Allowed");

    // Missing query parameter → 400.
    let (status, _, body) = http_request(
        addr,
        "GET /query HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    assert!(body.contains("missing `query`"));

    handle.shutdown();
}
