//! Criterion benchmarks for the LUBM workload (the Table 2 / Table 3 /
//! Figure 6 experiments): all 14 queries, every engine, one scale factor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use turbohom_bench::lubm_store;
use turbohom_datasets::lubm;
use turbohom_engine::EngineKind;

fn lubm_queries(c: &mut Criterion) {
    let store = lubm_store(4);
    let queries = lubm::queries();
    let mut group = c.benchmark_group("lubm_table3");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));
    for query in &queries {
        for kind in EngineKind::all() {
            group.bench_with_input(
                BenchmarkId::new(kind.label(), &query.id),
                &query.sparql,
                |b, sparql| {
                    b.iter(|| store.execute(sparql, kind).unwrap().len());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, lubm_queries);
criterion_main!(benches);
