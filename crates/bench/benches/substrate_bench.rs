//! Criterion micro-benchmarks for the substrates: dictionary encoding,
//! sorted-set kernels (the heart of the +INT optimization), CSR construction
//! and the two data-graph transformations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use turbohom_datasets::lubm::{LubmConfig, LubmGenerator};
use turbohom_graph::{ops, VertexId};
use turbohom_rdf::{Dictionary, Term};
use turbohom_transform::{direct_transform, type_aware_transform};

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));
}

fn dictionary_encoding(c: &mut Criterion) {
    let terms: Vec<Term> = (0..20_000)
        .map(|i| Term::iri(format!("http://bench.example.org/entity/{i}")))
        .collect();
    let mut group = c.benchmark_group("substrate_dictionary");
    configure(&mut group);
    group.bench_function("encode_20k_terms", |b| {
        b.iter(|| {
            let mut dict = Dictionary::with_capacity(terms.len());
            for t in &terms {
                dict.encode(t);
            }
            dict.len()
        });
    });
    group.finish();
}

fn sorted_set_kernels(c: &mut Criterion) {
    let large: Vec<VertexId> = (0..100_000).map(|i| VertexId(i * 2)).collect();
    let small: Vec<VertexId> = (0..1_000).map(|i| VertexId(i * 173)).collect();
    let medium: Vec<VertexId> = (0..50_000).map(|i| VertexId(i * 3)).collect();
    let mut group = c.benchmark_group("substrate_set_kernels");
    configure(&mut group);
    group.bench_function("intersect_skewed_galloping", |b| {
        b.iter(|| ops::intersect_adaptive(&small, &large).len());
    });
    group.bench_function("intersect_balanced_merge", |b| {
        b.iter(|| ops::intersect_adaptive(&medium, &large).len());
    });
    group.bench_function("intersect_3way", |b| {
        b.iter(|| ops::intersect_k(&[&small, &medium, &large]).len());
    });
    group.bench_function("union", |b| {
        b.iter(|| ops::union_sorted(&small, &medium).len());
    });
    group.finish();
}

fn transformations(c: &mut Criterion) {
    let dataset = LubmGenerator::new(LubmConfig::scale(4)).generate();
    let mut group = c.benchmark_group("substrate_transformations");
    configure(&mut group);
    group.bench_with_input(
        BenchmarkId::new("direct_transform", dataset.len()),
        &dataset,
        |b, ds| {
            b.iter(|| direct_transform(ds).graph.edge_count());
        },
    );
    group.bench_with_input(
        BenchmarkId::new("type_aware_transform", dataset.len()),
        &dataset,
        |b, ds| {
            b.iter(|| type_aware_transform(ds).graph.edge_count());
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    dictionary_encoding,
    sorted_set_kernels,
    transformations
);
criterion_main!(benches);
