//! Criterion benchmarks for the YAGO-like, BTC-like and BSBM-like workloads
//! (the Table 4 / Table 5 / Table 6 experiments).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use turbohom_bench::{bsbm_store, btc_store, yago_store};
use turbohom_datasets::{bsbm, btc, yago, BenchmarkQuery};
use turbohom_engine::{EngineKind, Store};

fn bench_workload(
    c: &mut Criterion,
    group_name: &str,
    store: &Store,
    queries: &[BenchmarkQuery],
    engines: &[EngineKind],
) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));
    for query in queries {
        for kind in engines {
            group.bench_with_input(
                BenchmarkId::new(kind.label(), &query.id),
                &query.sparql,
                |b, sparql| {
                    b.iter(|| store.execute(sparql, *kind).unwrap().len());
                },
            );
        }
    }
    group.finish();
}

fn yago_queries(c: &mut Criterion) {
    let store = yago_store(1);
    bench_workload(
        c,
        "yago_table4",
        &store,
        &yago::queries(),
        &[EngineKind::TurboHomPlusPlus, EngineKind::MergeJoin],
    );
}

fn btc_queries(c: &mut Criterion) {
    let store = btc_store(1);
    bench_workload(
        c,
        "btc_table5",
        &store,
        &btc::queries(),
        &[EngineKind::TurboHomPlusPlus, EngineKind::MergeJoin],
    );
}

fn bsbm_queries(c: &mut Criterion) {
    let store = bsbm_store(1);
    bench_workload(
        c,
        "bsbm_table6",
        &store,
        &bsbm::queries(),
        &[EngineKind::TurboHomPlusPlus, EngineKind::HashJoin],
    );
}

criterion_group!(benches, yago_queries, btc_queries, bsbm_queries);
criterion_main!(benches);
