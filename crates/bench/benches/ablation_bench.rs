//! Criterion benchmarks for the design-choice ablations:
//!
//! * direct vs type-aware transformation (Table 7 / Figure 6),
//! * the four optimizations applied separately on Q2 / Q9 (Figure 15),
//! * parallel execution with 1–8 threads (Figure 16),
//! * the matching-order example of Figure 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use turbohom_bench::{lubm_parallel_store, lubm_store};
use turbohom_core::{OptimizationName, Optimizations, TurboHomConfig};
use turbohom_datasets::{lubm, micro};
use turbohom_engine::{EngineKind, Store};

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));
}

/// Table 7: the same (unoptimized) engine over the direct vs the type-aware
/// transformed graph.
fn transformation_ablation(c: &mut Criterion) {
    let store = lubm_store(4);
    let queries = lubm::queries();
    let config = TurboHomConfig::default().with_optimizations(Optimizations::none());
    let mut group = c.benchmark_group("table7_transformation");
    configure(&mut group);
    for query in queries
        .iter()
        .filter(|q| ["Q2", "Q6", "Q9", "Q13", "Q14"].contains(&q.id.as_str()))
    {
        group.bench_with_input(
            BenchmarkId::new("direct", &query.id),
            &query.sparql,
            |b, s| {
                b.iter(|| store.execute_turbohom(s, config, true).unwrap().len());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("type-aware", &query.id),
            &query.sparql,
            |b, s| {
                b.iter(|| store.execute_turbohom(s, config, false).unwrap().len());
            },
        );
    }
    group.finish();
}

/// Figure 15: each optimization applied separately on Q2 and Q9.
fn optimization_ablation(c: &mut Criterion) {
    let store = lubm_store(8);
    let queries: Vec<_> = lubm::queries()
        .into_iter()
        .filter(|q| q.id == "Q2" || q.id == "Q9")
        .collect();
    let mut group = c.benchmark_group("figure15_optimizations");
    configure(&mut group);
    for query in &queries {
        group.bench_with_input(
            BenchmarkId::new("no-optimizations", &query.id),
            &query.sparql,
            |b, s| {
                let config = TurboHomConfig::default().with_optimizations(Optimizations::none());
                b.iter(|| store.execute_turbohom(s, config, false).unwrap().len());
            },
        );
        for opt in OptimizationName::all() {
            group.bench_with_input(
                BenchmarkId::new(opt.label(), &query.id),
                &query.sparql,
                |b, s| {
                    let config =
                        TurboHomConfig::default().with_optimizations(Optimizations::only(opt));
                    b.iter(|| store.execute_turbohom(s, config, false).unwrap().len());
                },
            );
        }
        group.bench_with_input(
            BenchmarkId::new("all-optimizations", &query.id),
            &query.sparql,
            |b, s| {
                let config = TurboHomConfig::default().with_optimizations(Optimizations::all());
                b.iter(|| store.execute_turbohom(s, config, false).unwrap().len());
            },
        );
    }
    group.finish();
}

/// Figure 16: parallel speed-up on Q2 / Q9.
fn parallel_speedup(c: &mut Criterion) {
    let store = lubm_parallel_store(16, 1);
    let queries: Vec<_> = lubm::queries()
        .into_iter()
        .filter(|q| q.id == "Q2" || q.id == "Q9")
        .collect();
    let mut group = c.benchmark_group("figure16_parallel");
    configure(&mut group);
    for query in &queries {
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("{}threads", threads), &query.id),
                &query.sparql,
                |b, s| {
                    let config = TurboHomConfig::turbohom_plus_plus().with_threads(threads);
                    b.iter(|| store.execute_turbohom(s, config, false).unwrap().len());
                },
            );
        }
    }
    group.finish();
}

/// Figure 2: the matching-order example — region-driven ordering vs the
/// join-based engines on the skewed star graph. The skew (few X/Z, many Y)
/// is exactly what blows up a bad join/matching order, so the Y fan-out is
/// kept moderate here to keep the baseline's intermediate results bounded;
/// the `experiments` harness and the integration tests exercise larger
/// instances.
fn matching_order_example(c: &mut Criterion) {
    let store = Store::from_dataset(micro::figure2(10, 400, 5));
    let query = micro::figure2_query();
    let mut group = c.benchmark_group("figure2_matching_order");
    configure(&mut group);
    for kind in [EngineKind::TurboHomPlusPlus, EngineKind::MergeJoin] {
        group.bench_function(kind.label(), |b| {
            b.iter(|| store.execute(&query.sparql, kind).unwrap().len());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    transformation_ablation,
    optimization_ablation,
    parallel_speedup,
    matching_order_example
);
criterion_main!(benches);
