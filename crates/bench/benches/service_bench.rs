//! Service-path throughput: cold (parse + transform every call, via
//! `Store::execute`) versus warm (plan-cache hit, straight to enumeration)
//! versus concurrent warm traffic from several client threads.
//!
//! The cold/warm pair quantifies what the plan cache buys per request; the
//! concurrent group checks that the shared service scales instead of
//! serializing on a lock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;
use turbohom_bench::lubm_store;
use turbohom_datasets::lubm;
use turbohom_service::{QueryOptions, QueryService};

fn service_throughput(c: &mut Criterion) {
    let store = Arc::new(lubm_store(4));
    let service = Arc::new(QueryService::new(Arc::clone(&store)));
    let queries: Vec<_> = lubm::queries().into_iter().take(7).collect();

    let mut group = c.benchmark_group("service_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));

    for query in &queries {
        // Cold path: the embedded API re-parses and re-transforms per call.
        group.bench_with_input(
            BenchmarkId::new("cold_execute", &query.id),
            &query.sparql,
            |b, sparql| {
                b.iter(|| {
                    store
                        .execute(sparql, turbohom_engine::EngineKind::TurboHomPlusPlus)
                        .unwrap()
                        .len()
                });
            },
        );
        // Warm path: plan-cache hit, enumeration only.
        service
            .query(&query.sparql, QueryOptions::default())
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new("warm_service", &query.id),
            &query.sparql,
            |b, sparql| {
                b.iter(|| {
                    let response = service.query(sparql, QueryOptions::default()).unwrap();
                    assert!(response.cache_hit);
                    response.results.len()
                });
            },
        );
    }

    // Concurrent warm traffic: 4 client threads sweep all 7 queries.
    group.bench_function("concurrent_4x7_warm", |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let service = &service;
                    let queries = &queries;
                    scope.spawn(move || {
                        let mut total = 0usize;
                        for q in queries {
                            total += service
                                .query(&q.sparql, QueryOptions::default())
                                .unwrap()
                                .results
                                .len();
                        }
                        total
                    });
                }
            });
        });
    });
    group.finish();
}

criterion_group!(benches, service_throughput);
criterion_main!(benches);
