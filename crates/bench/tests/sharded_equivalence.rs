//! LUBM(1) sharded scatter-gather differential: for every shard count the
//! coordinator must return byte-identical SPARQL-JSON to the single-store
//! path for every benchmark query on every engine.

use turbohom_bench::{lubm_store, sharded_lubm_store};
use turbohom_datasets::lubm;
use turbohom_engine::EngineKind;

#[test]
fn lubm1_sharded_matches_single_store_for_every_benchmark_query() {
    let single = lubm_store(1);
    for shards in [1usize, 4, 8] {
        let sharded = sharded_lubm_store(1, shards);
        assert_eq!(sharded.shard_count(), shards);
        assert_eq!(sharded.triple_count(), single.triple_count());
        for q in &lubm::queries() {
            for kind in EngineKind::all() {
                let a = single.execute(&q.sparql, kind).unwrap();
                let b = sharded.execute(&q.sparql, kind).unwrap();
                assert_eq!(
                    a.to_sparql_json(),
                    b.to_sparql_json(),
                    "{kind} disagrees between single store and k={shards} on {}",
                    q.id
                );
            }
        }
    }
}

#[test]
fn lubm1_selective_queries_prune_shards_at_k8() {
    // The ISSUE 9 acceptance criterion: at k=8 at least one selective query
    // executes on strictly fewer than 8 shards. Constant-anchor queries
    // (Q1/Q3/Q7 among them) route to the anchor's owner shard, so they must
    // all report pruned shards.
    let sharded = sharded_lubm_store(1, 8);
    for q in lubm::queries()
        .iter()
        .filter(|q| ["Q1", "Q3", "Q7"].contains(&q.id.as_str()))
    {
        let result = sharded
            .execute(&q.sparql, EngineKind::TurboHomPlusPlus)
            .unwrap();
        assert!(
            result.stats.shards_executed < 8,
            "{} ran on all 8 shards",
            q.id
        );
        assert!(result.stats.shards_pruned > 0, "{} pruned nothing", q.id);
    }
}
