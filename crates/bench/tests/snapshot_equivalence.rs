//! LUBM(1) snapshot round-trip: the snapshot backend must return
//! byte-identical SPARQL-JSON to the heap backend for every benchmark query
//! on every engine.

use turbohom_bench::lubm_store;
use turbohom_datasets::lubm;
use turbohom_engine::{EngineKind, Store};

#[test]
fn lubm1_snapshot_matches_heap_for_every_benchmark_query() {
    let heap = lubm_store(1);
    let dir = std::env::temp_dir().join("turbohom-bench-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("lubm1-equivalence.snap");
    heap.save_snapshot(&path).unwrap();
    let snap = Store::from_snapshot(&path).unwrap();
    assert_eq!(snap.triple_count(), heap.triple_count());

    for q in &lubm::queries() {
        for kind in EngineKind::all() {
            let a = heap.execute(&q.sparql, kind).unwrap();
            let b = snap.execute(&q.sparql, kind).unwrap();
            assert_eq!(
                a.to_sparql_json(),
                b.to_sparql_json(),
                "{} disagrees between backends on {}",
                kind,
                q.id
            );
        }
    }
    std::fs::remove_file(&path).ok();
}
