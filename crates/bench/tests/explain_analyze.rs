//! EXPLAIN/ANALYZE integration on LUBM(1): golden plan trees (stable
//! matching order + estimates), cross-engine actual-vs-result agreement,
//! and the sharded Q1 acceptance criterion (7 of 8 shards skipped with the
//! deciding check named).

use turbohom_bench::{lubm_store, sharded_lubm_store};
use turbohom_datasets::lubm;
use turbohom_engine::EngineKind;

fn query(id: &str) -> String {
    lubm::queries()
        .iter()
        .find(|q| q.id == id)
        .unwrap_or_else(|| panic!("no LUBM query {id}"))
        .sparql
        .clone()
}

/// The explain tree is deterministic: same store, same query, same JSON —
/// matching order, per-step estimates, candidate counts and all. Blessed
/// copies live next to this test; regenerate with `BLESS=1 cargo test -p
/// turbohom-bench --test explain_analyze` after an intentional plan change.
#[test]
fn explain_trees_for_q2_and_q7_match_the_golden_files() {
    let store = lubm_store(1);
    for (id, golden) in [
        ("Q2", include_str!("golden/lubm1_q2_explain.json")),
        ("Q7", include_str!("golden/lubm1_q7_explain.json")),
    ] {
        let got = store
            .explain(&query(id), EngineKind::TurboHomPlusPlus)
            .unwrap()
            .to_json();
        if std::env::var_os("BLESS").is_some() {
            let path = format!(
                "{}/tests/golden/lubm1_{}_explain.json",
                env!("CARGO_MANIFEST_DIR"),
                id.to_lowercase()
            );
            std::fs::write(path, format!("{got}\n")).unwrap();
            continue;
        }
        assert_eq!(
            got,
            golden.trim_end(),
            "{id} explain tree drifted — if intentional, re-bless with BLESS=1"
        );
        // And explaining twice is identical (no hidden iteration-order leak).
        let again = store
            .explain(&query(id), EngineKind::TurboHomPlusPlus)
            .unwrap()
            .to_json();
        assert_eq!(got, again, "{id} explain is not deterministic");
    }
}

/// ANALYZE must not change what a query returns, and its actuals must agree
/// with the result set — for every benchmark query on every engine, on both
/// store flavors.
#[test]
fn analyze_actuals_match_result_sizes_for_every_engine() {
    let single = lubm_store(1);
    let sharded = sharded_lubm_store(1, 4);
    for q in &lubm::queries() {
        for kind in EngineKind::all() {
            let expected = single.execute(&q.sparql, kind).unwrap().len();

            let (results, report) = single.analyze(&q.sparql, kind, None).unwrap();
            assert!(report.analyzed, "{} {kind}", q.id);
            assert_eq!(report.store_flavor, "single");
            assert_eq!(
                results.len(),
                expected,
                "{} {kind} analyze changed rows",
                q.id
            );
            let actual = report.actual.as_ref().unwrap();
            assert_eq!(actual.solutions as usize, expected, "{} {kind}", q.id);

            let (results, report) = sharded.analyze(&q.sparql, kind, None).unwrap();
            assert!(report.analyzed, "{} {kind} sharded", q.id);
            assert_eq!(report.store_flavor, "sharded");
            assert_eq!(
                results.len(),
                expected,
                "{} {kind} sharded analyze changed rows",
                q.id
            );
            let actual = report.actual.as_ref().unwrap();
            assert_eq!(
                actual.solutions as usize, expected,
                "{} {kind} sharded",
                q.id
            );
            // Shard row counts partition the result set.
            let shard_rows: u64 = report.shards.iter().filter_map(|s| s.rows).sum();
            assert_eq!(shard_rows as usize, expected, "{} {kind} shard rows", q.id);
        }
    }
}

/// ISSUE 10 acceptance: EXPLAIN on LUBM(1) Q1 with 8 shards shows exactly
/// one live shard; the 7 skipped ones each name the check that decided it.
#[test]
fn q1_explain_at_8_shards_skips_7_and_names_the_deciding_check() {
    let sharded = sharded_lubm_store(1, 8);
    let report = sharded
        .explain(&query("Q1"), EngineKind::TurboHomPlusPlus)
        .unwrap();
    assert_eq!(report.store_flavor, "sharded");
    assert_eq!(report.shards.len(), 8);
    let live: Vec<_> = report
        .shards
        .iter()
        .filter(|s| s.verdict == "live")
        .collect();
    assert_eq!(live.len(), 1, "Q1 should execute on exactly one shard");
    assert!(
        !live[0].components.is_empty(),
        "live shard has no plan tree"
    );
    for s in report.shards.iter().filter(|s| s.verdict != "live") {
        assert!(
            s.check.is_some(),
            "shard {} skipped without naming its deciding check",
            s.shard
        );
        assert!(s.term.is_some(), "shard {} names no deciding term", s.shard);
    }
    // The explain tree never executed anything: ANALYZE-only fields stay
    // empty.
    assert!(!report.analyzed);
    assert!(report.actual.is_none());
    assert!(report.shards.iter().all(|s| s.rows.is_none()));
}
