//! Shared harness utilities for the experiment reproduction.
//!
//! The paper's measurement protocol (Section 7.1): every query is executed
//! five times with a warm cache, the best and worst runs are dropped, and
//! the remaining three are averaged; dictionary look-up time is excluded
//! (our engines time only the pattern matching). [`measure`] implements that
//! protocol; [`Workloads`] builds the stores for each benchmark dataset at
//! the laptop-sized scale factors used throughout DESIGN.md §2.

use std::time::Duration;
use turbohom_core::TurboHomConfig;
use turbohom_datasets::{bsbm, btc, lubm, yago, BenchmarkQuery};
use turbohom_engine::{
    EngineKind, QueryResults, ShardedOptions, ShardedStore, Store, StoreOptions,
};

pub mod recorder;

/// The LUBM scale factors standing in for LUBM80 / LUBM800 / LUBM8000.
pub const LUBM_SCALES: [(&str, usize); 3] = [("LUBM-S", 2), ("LUBM-M", 8), ("LUBM-L", 32)];

/// Executes a closure following the paper's 5-run / drop-best-and-worst /
/// average-the-rest protocol and returns the averaged duration together with
/// the result of the last run.
pub fn measure<F>(run: F) -> (Duration, QueryResults)
where
    F: FnMut() -> QueryResults,
{
    let (runs, last) = measure_runs(run);
    (protocol_average(&runs), last)
}

/// Executes a closure five times and returns the raw per-run durations (in
/// execution order) together with the result of the last run. The flight
/// recorder persists the raw runs; [`measure`] reduces them with the paper's
/// protocol.
pub fn measure_runs<F>(mut run: F) -> ([Duration; 5], QueryResults)
where
    F: FnMut() -> QueryResults,
{
    let mut durations = [Duration::ZERO; 5];
    let mut last = QueryResults::default();
    for slot in &mut durations {
        let result = run();
        *slot = result.elapsed;
        last = result;
    }
    (durations, last)
}

/// The paper's reduction: drop the best and the worst of five runs, average
/// the remaining three.
pub fn protocol_average(runs: &[Duration; 5]) -> Duration {
    let mut sorted = *runs;
    sorted.sort();
    let kept = &sorted[1..4];
    kept.iter().sum::<Duration>() / kept.len() as u32
}

/// The median of five runs (the flight recorder's headline number — a single
/// order statistic is more robust to scheduler noise than a mean).
pub fn protocol_median(runs: &[Duration; 5]) -> Duration {
    let mut sorted = *runs;
    sorted.sort();
    sorted[2]
}

/// Runs `query` on `store` with `kind`, measured per the paper's protocol.
pub fn measure_engine(
    store: &Store,
    query: &BenchmarkQuery,
    kind: EngineKind,
) -> (Duration, usize) {
    let (elapsed, result) = measure(|| {
        store
            .execute(&query.sparql, kind)
            .unwrap_or_else(|e| panic!("{} failed on {}: {e}", kind.label(), query.id))
    });
    (elapsed, result.len())
}

/// Runs `query` with an explicit TurboHOM configuration (ablations, threads).
pub fn measure_turbohom(
    store: &Store,
    query: &BenchmarkQuery,
    config: TurboHomConfig,
    force_direct: bool,
) -> (Duration, usize) {
    let (elapsed, result) = measure(|| {
        store
            .execute_turbohom(&query.sparql, config, force_direct)
            .unwrap_or_else(|e| panic!("TurboHOM failed on {}: {e}", query.id))
    });
    (elapsed, result.len())
}

/// Formats a duration in milliseconds with three decimals (the paper's unit).
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1000.0)
}

/// Builds the LUBM store at one scale factor (the generator already
/// materializes the RDFS closure, matching the paper's loading protocol).
pub fn lubm_store(scale: usize) -> Store {
    let dataset = lubm::LubmGenerator::new(lubm::LubmConfig::scale(scale)).generate();
    Store::from_dataset_with(dataset, StoreOptions::default())
}

/// Builds the LUBM store partitioned across `shards` shard stores (hash
/// ownership, default halo — the configuration the sharded benchmark column
/// and the differential tests measure).
pub fn sharded_lubm_store(scale: usize, shards: usize) -> ShardedStore {
    let dataset = lubm::LubmGenerator::new(lubm::LubmConfig::scale(scale)).generate();
    ShardedStore::from_dataset_with(
        dataset,
        ShardedOptions {
            shards,
            ..ShardedOptions::default()
        },
    )
    .expect("LUBM partitions cleanly")
}

/// A larger LUBM configuration used for the parallel-speed-up experiment
/// (bigger departments so Q2/Q9 run long enough for threading to matter).
pub fn lubm_parallel_store(universities: usize, threads: usize) -> Store {
    let config = lubm::LubmConfig {
        universities,
        departments_per_university: 6,
        undergraduates_per_department: 80,
        graduates_per_department: 48,
        courses_per_department: 12,
        graduate_courses_per_department: 8,
        ..lubm::LubmConfig::default()
    };
    let dataset = lubm::LubmGenerator::new(config).generate();
    Store::from_dataset_with(
        dataset,
        StoreOptions {
            inference: false,
            threads,
        },
    )
}

/// Builds the YAGO-like store.
pub fn yago_store(scale: usize) -> Store {
    let dataset = yago::YagoGenerator::new(yago::YagoConfig::scale(scale)).generate();
    Store::from_dataset_with(
        dataset,
        StoreOptions {
            inference: true,
            threads: 1,
        },
    )
}

/// Builds the BTC-like store (no inference, as in the paper).
pub fn btc_store(scale: usize) -> Store {
    let dataset = btc::BtcGenerator::new(btc::BtcConfig::scale(scale)).generate();
    Store::from_dataset_with(dataset, StoreOptions::default())
}

/// Builds the BSBM-like store.
pub fn bsbm_store(scale: usize) -> Store {
    let dataset = bsbm::BsbmGenerator::new(bsbm::BsbmConfig::scale(scale)).generate();
    Store::from_dataset_with(dataset, StoreOptions::default())
}

/// All benchmark workloads, built once and shared between experiments.
pub struct Workloads {
    /// LUBM stores at the three scale factors, smallest first.
    pub lubm: Vec<(&'static str, Store)>,
    /// The YAGO-like store.
    pub yago: Store,
    /// The BTC-like store.
    pub btc: Store,
    /// The BSBM-like store.
    pub bsbm: Store,
}

impl Workloads {
    /// Builds every workload (a few seconds of generation time).
    pub fn build() -> Self {
        Workloads {
            lubm: LUBM_SCALES
                .iter()
                .map(|(name, scale)| (*name, lubm_store(*scale)))
                .collect(),
            yago: yago_store(2),
            btc: btc_store(2),
            bsbm: bsbm_store(2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_implements_the_papers_five_run_protocol() {
        // Feed `measure` five synthetic runs with known durations and check
        // the Section 7.1 protocol: run five times, drop the best and the
        // worst run, average the remaining three.
        let synthetic = [5u64, 1, 3, 2, 9]; // milliseconds, deliberately unsorted
        let mut call = 0usize;
        let (avg, last) = measure(|| {
            let result = QueryResults {
                solution_count: call, // marks which run produced it
                elapsed: Duration::from_millis(synthetic[call]),
                ..QueryResults::default()
            };
            call += 1;
            result
        });
        assert_eq!(call, 5, "the protocol must execute exactly five runs");
        // Dropping best (1ms) and worst (9ms) keeps {2, 3, 5}ms.
        let expected =
            (Duration::from_millis(2) + Duration::from_millis(3) + Duration::from_millis(5)) / 3;
        assert_eq!(avg, expected);
        // The returned result is the one from the last run.
        assert_eq!(last.len(), 4);
    }

    #[test]
    fn measure_follows_drop_best_and_worst_protocol() {
        let store = lubm_store(1);
        let queries = lubm::queries();
        let (elapsed, count) = measure_engine(&store, &queries[0], EngineKind::TurboHomPlusPlus);
        assert!(count > 0);
        assert!(elapsed > Duration::ZERO);
        assert!(!ms(elapsed).is_empty());
    }

    #[test]
    fn stores_build_for_every_workload() {
        assert!(lubm_store(1).triple_count() > 1000);
        assert!(yago_store(1).triple_count() > 1000);
        assert!(btc_store(1).triple_count() > 1000);
        assert!(bsbm_store(1).triple_count() > 1000);
    }
}
