//! The benchmark flight recorder: persistent `BENCH_<dataset>.json` files.
//!
//! Every `experiments -- record` run writes one [`BenchRecord`]: the raw
//! five-run timings, the median and the paper-protocol average per
//! (query, engine) pair, plus the matcher's per-stage counters
//! ([`turbohom_engine::MatchStats`]) so a perf regression can be attributed
//! to a stage ("candidate regions exploded" vs "intersections got slower")
//! without re-running anything.
//!
//! The regression gate compares two records *hardware-normalized*: CI
//! machines differ, so absolute thresholds are useless. Instead the gate
//! computes the ratio `new/old` for every comparable query, takes the median
//! ratio as the machine-speed factor, and only fails queries that regressed
//! by more than `tolerance` beyond that factor. A uniformly 2× slower
//! machine shifts every ratio equally and passes; one query regressing 2×
//! while the rest hold still fails.
//!
//! Serialization is hand-rolled (the workspace deliberately has no JSON
//! dependency); the parser below accepts exactly the subset of JSON the
//! writer emits (and ordinary whitespace), which is all the gate needs.

use turbohom_engine::{json_escape, MatchStats};

/// Pairs where either median is below this floor are skipped by the gate:
/// sub-50µs timings are dominated by clock and allocator noise.
pub const GATE_NOISE_FLOOR_MS: f64 = 0.05;

/// Default gate tolerance: fail a query whose normalized ratio exceeds the
/// median machine factor by more than 25%.
pub const GATE_DEFAULT_TOLERANCE: f64 = 1.25;

/// A failing query must also exceed its normalized expectation by this many
/// milliseconds in absolute terms. A 25% relative regression on a 0.1ms
/// query is ~25µs — scheduling jitter, not a code regression — while on any
/// query slow enough to matter the slack is negligible.
pub const GATE_ABSOLUTE_SLACK_MS: f64 = 0.1;

/// One (query, engine) measurement: five raw runs plus per-stage counters.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRun {
    /// The benchmark query id (e.g. `Q2`).
    pub id: String,
    /// The engine's machine-readable name (`EngineKind::name`).
    pub engine: String,
    /// The five raw run durations, milliseconds, in execution order.
    pub runs_ms: Vec<f64>,
    /// Median of the five runs (the gate's headline number).
    pub median_ms: f64,
    /// The paper's Section 7.1 reduction: drop best and worst, average.
    pub avg_ms: f64,
    /// Number of solutions (cross-engine agreement is checked at record
    /// time, so this is also a correctness witness).
    pub solutions: usize,
    /// Matcher counters of the last run (all-zero for join baselines).
    pub stats: MatchStats,
    /// Per-stage wall-clock breakdown (stage name, milliseconds) from one
    /// traced run outside the five measured ones, in pipeline order. Empty
    /// when not recorded (records written before the column existed parse
    /// fine — the reader treats the key as optional).
    pub stages_ms: Vec<(String, f64)>,
    /// Maximum per-step estimate-vs-actual q-error from one ANALYZE run
    /// outside the five measured ones (`max(est/actual, actual/est)` over
    /// the matching-order steps). `None` when not recorded — join baselines
    /// have no per-step estimates, and records written before the column
    /// existed parse fine.
    pub qerror: Option<f64>,
}

/// A scheduler A/B data point: the same query and thread count under the
/// morsel-driven and the legacy chunked scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerRun {
    /// The benchmark query id.
    pub id: String,
    /// Worker threads used for both sides.
    pub threads: usize,
    /// Median elapsed time under the morsel work-stealing scheduler.
    pub morsel_ms: f64,
    /// Median elapsed time under the legacy chunked scheduler.
    pub chunked_ms: f64,
    /// Morsels executed (morsel side).
    pub morsels: usize,
    /// Morsels obtained by stealing (morsel side).
    pub morsels_stolen: usize,
}

/// One recorded benchmark session: everything `BENCH_<dataset>.json` holds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchRecord {
    /// Dataset label, e.g. `LUBM1`.
    pub dataset: String,
    /// Triples loaded (after inference).
    pub triples: usize,
    /// Worker threads used for the per-engine measurements.
    pub threads: usize,
    /// Per-(query, engine) measurements.
    pub queries: Vec<QueryRun>,
    /// The same queries measured through the sharded scatter-gather path
    /// (empty if not recorded; the regression gate only compares `queries`,
    /// so this column is informational). The interesting stats here are
    /// `shards_executed` / `shards_pruned`.
    pub sharded: Vec<QueryRun>,
    /// Shards used for the `sharded` measurements (0 when not recorded).
    pub shard_count: usize,
    /// Morsel-vs-chunked scheduler comparison (empty if not recorded).
    pub scheduler_comparison: Vec<SchedulerRun>,
    /// Store-load timings in milliseconds: `parse_build` (generate/parse the
    /// triples and build every index on the heap) vs `snapshot_map` (open a
    /// saved snapshot zero-copy). Empty when not recorded — records written
    /// before the column existed parse fine, the reader treats the key as
    /// optional.
    pub load_ms: Vec<(String, f64)>,
}

fn push_query_runs(out: &mut String, runs: &[QueryRun]) {
    for (i, q) in runs.iter().enumerate() {
        out.push_str("    {\"id\": \"");
        out.push_str(&json_escape(&q.id));
        out.push_str("\", \"engine\": \"");
        out.push_str(&json_escape(&q.engine));
        out.push_str("\", \"runs_ms\": [");
        for (j, r) in q.runs_ms.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            push_f64(out, *r);
        }
        out.push_str("], \"median_ms\": ");
        push_f64(out, q.median_ms);
        out.push_str(", \"avg_ms\": ");
        push_f64(out, q.avg_ms);
        out.push_str(&format!(", \"solutions\": {}, \"stats\": ", q.solutions));
        push_stats(out, &q.stats);
        if !q.stages_ms.is_empty() {
            out.push_str(", \"stages_ms\": {");
            for (j, (name, ms)) in q.stages_ms.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\": ", json_escape(name)));
                push_f64(out, *ms);
            }
            out.push('}');
        }
        if let Some(qerr) = q.qerror {
            out.push_str(", \"qerror\": ");
            push_f64(out, qerr);
        }
        out.push('}');
        if i + 1 < runs.len() {
            out.push(',');
        }
        out.push('\n');
    }
}

fn push_f64(out: &mut String, v: f64) {
    // Emit finite numbers only; JSON has no NaN/Inf.
    if v.is_finite() {
        out.push_str(&format!("{v:.6}"));
    } else {
        out.push('0');
    }
}

fn push_stats(out: &mut String, s: &MatchStats) {
    out.push_str(&format!(
        "{{\"candidate_regions\":{},\"nonempty_regions\":{},\"candidate_vertices\":{},\
         \"explored_vertices\":{},\"isjoinable_probes\":{},\"intersection_ops\":{},\
         \"search_recursions\":{},\"matching_orders_computed\":{},\"solutions\":{},\
         \"morsels\":{},\"morsels_stolen\":{},\"shards_executed\":{},\"shards_pruned\":{}}}",
        s.candidate_regions,
        s.nonempty_regions,
        s.candidate_vertices,
        s.explored_vertices,
        s.isjoinable_probes,
        s.intersection_ops,
        s.search_recursions,
        s.matching_orders_computed,
        s.solutions,
        s.morsels,
        s.morsels_stolen,
        s.shards_executed,
        s.shards_pruned,
    ));
}

impl BenchRecord {
    /// Serializes the record as pretty-stable JSON (keys in fixed order, so
    /// committed baselines diff cleanly).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024 + self.queries.len() * 256);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"turbohom-bench/1\",\n");
        out.push_str(&format!(
            "  \"dataset\": \"{}\",\n",
            json_escape(&self.dataset)
        ));
        out.push_str(&format!("  \"triples\": {},\n", self.triples));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(
            "  \"protocol\": \"5 warm runs; median_ms = middle run, avg_ms = drop best/worst then average\",\n",
        );
        if !self.load_ms.is_empty() {
            out.push_str("  \"load_ms\": {");
            for (i, (name, ms)) in self.load_ms.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": ", json_escape(name)));
                push_f64(&mut out, *ms);
            }
            out.push_str("},\n");
        }
        out.push_str("  \"queries\": [\n");
        push_query_runs(&mut out, &self.queries);
        out.push_str("  ],\n");
        if !self.sharded.is_empty() {
            out.push_str(&format!("  \"shard_count\": {},\n", self.shard_count));
            out.push_str("  \"sharded\": [\n");
            push_query_runs(&mut out, &self.sharded);
            out.push_str("  ],\n");
        }
        out.push_str("  \"scheduler_comparison\": [\n");
        for (i, s) in self.scheduler_comparison.iter().enumerate() {
            out.push_str("    {\"id\": \"");
            out.push_str(&json_escape(&s.id));
            out.push_str(&format!("\", \"threads\": {}, \"morsel_ms\": ", s.threads));
            push_f64(&mut out, s.morsel_ms);
            out.push_str(", \"chunked_ms\": ");
            push_f64(&mut out, s.chunked_ms);
            out.push_str(&format!(
                ", \"morsels\": {}, \"morsels_stolen\": {}}}",
                s.morsels, s.morsels_stolen
            ));
            if i + 1 < self.scheduler_comparison.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a record previously written by [`to_json`](Self::to_json).
    pub fn from_json(input: &str) -> Result<Self, String> {
        let value = Json::parse(input)?;
        let obj = value.as_object().ok_or("top level must be an object")?;
        let mut record = BenchRecord {
            dataset: get_str(obj, "dataset")?,
            triples: get_usize(obj, "triples")?,
            threads: get_usize(obj, "threads")?,
            // Optional column: absent in records written before snapshots.
            load_ms: match find(obj, "load_ms").and_then(|v| v.as_object()) {
                Some(entries) => entries
                    .iter()
                    .map(|(name, v)| {
                        v.as_f64()
                            .map(|ms| (name.clone(), ms))
                            .ok_or("load_ms values must be numbers".to_string())
                    })
                    .collect::<Result<_, _>>()?,
                None => Vec::new(),
            },
            ..BenchRecord::default()
        };
        for q in get_array(obj, "queries")? {
            record.queries.push(parse_query_run(q)?);
        }
        // Optional section: absent in records written before sharded
        // execution existed.
        if let Some(sharded) = find(obj, "sharded").and_then(|v| v.as_array()) {
            for q in sharded {
                record.sharded.push(parse_query_run(q)?);
            }
            record.shard_count = find(obj, "shard_count")
                .and_then(|v| v.as_f64())
                .map(|v| v as usize)
                .unwrap_or(0);
        }
        for s in get_array(obj, "scheduler_comparison")? {
            let s = s.as_object().ok_or("scheduler entry must be an object")?;
            record.scheduler_comparison.push(SchedulerRun {
                id: get_str(s, "id")?,
                threads: get_usize(s, "threads")?,
                morsel_ms: get_f64(s, "morsel_ms")?,
                chunked_ms: get_f64(s, "chunked_ms")?,
                morsels: get_usize(s, "morsels")?,
                morsels_stolen: get_usize(s, "morsels_stolen")?,
            });
        }
        Ok(record)
    }

    /// The recorded median for one (query, engine) pair.
    pub fn median_ms(&self, id: &str, engine: &str) -> Option<f64> {
        self.queries
            .iter()
            .find(|q| q.id == id && q.engine == engine)
            .map(|q| q.median_ms)
    }
}

fn parse_query_run(value: &Json) -> Result<QueryRun, String> {
    let q = value.as_object().ok_or("query entry must be an object")?;
    let stats_obj = find(q, "stats")
        .and_then(|v| v.as_object())
        .ok_or("query entry missing stats")?;
    Ok(QueryRun {
        id: get_str(q, "id")?,
        engine: get_str(q, "engine")?,
        runs_ms: get_array(q, "runs_ms")?
            .iter()
            .map(|v| v.as_f64().ok_or("runs_ms must be numbers"))
            .collect::<Result<_, _>>()?,
        median_ms: get_f64(q, "median_ms")?,
        avg_ms: get_f64(q, "avg_ms")?,
        solutions: get_usize(q, "solutions")?,
        stats: parse_stats(stats_obj)?,
        // Optional column: absent in records written before the stage
        // breakdown existed.
        stages_ms: match find(q, "stages_ms").and_then(|v| v.as_object()) {
            Some(entries) => entries
                .iter()
                .map(|(name, v)| {
                    v.as_f64()
                        .map(|ms| (name.clone(), ms))
                        .ok_or("stages_ms values must be numbers".to_string())
                })
                .collect::<Result<_, _>>()?,
            None => Vec::new(),
        },
        // Optional column: absent in records written before ANALYZE existed
        // and for engines without per-step estimates.
        qerror: find(q, "qerror").and_then(|v| v.as_f64()),
    })
}

fn parse_stats(obj: &[(String, Json)]) -> Result<MatchStats, String> {
    let field = |name: &str| -> Result<usize, String> { get_usize(obj, name) };
    // Optional: absent in records written before sharded execution existed.
    let optional = |name: &str| -> usize {
        find(obj, name)
            .and_then(|v| v.as_f64())
            .map(|v| v as usize)
            .unwrap_or(0)
    };
    Ok(MatchStats {
        candidate_regions: field("candidate_regions")?,
        nonempty_regions: field("nonempty_regions")?,
        candidate_vertices: field("candidate_vertices")?,
        explored_vertices: field("explored_vertices")?,
        isjoinable_probes: field("isjoinable_probes")?,
        intersection_ops: field("intersection_ops")?,
        search_recursions: field("search_recursions")?,
        matching_orders_computed: field("matching_orders_computed")?,
        solutions: field("solutions")?,
        morsels: field("morsels")?,
        morsels_stolen: field("morsels_stolen")?,
        shards_executed: optional("shards_executed"),
        shards_pruned: optional("shards_pruned"),
        ..MatchStats::default()
    })
}

// ---- regression gate ---------------------------------------------------

/// The gate's verdict over one baseline/current record pair.
#[derive(Debug, Clone, Default)]
pub struct GateOutcome {
    /// (query, engine) pairs compared.
    pub compared: usize,
    /// Pairs skipped because either side was under the noise floor or the
    /// pair was missing from one record.
    pub skipped: usize,
    /// The median `new/old` ratio — the machine-speed normalization factor.
    pub median_ratio: f64,
    /// Human-readable descriptions of the failing pairs (empty = pass).
    pub failures: Vec<String>,
}

impl GateOutcome {
    /// `true` when no query regressed beyond the tolerance.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compares `current` against `baseline`, hardware-normalized (see the
/// module docs). `tolerance` is the allowed slowdown factor *beyond* the
/// median machine factor, e.g. `1.25` for the CI default of 25%.
pub fn regression_gate(
    baseline: &BenchRecord,
    current: &BenchRecord,
    tolerance: f64,
) -> GateOutcome {
    let mut ratios: Vec<(String, f64, f64, f64)> = Vec::new();
    let mut outcome = GateOutcome::default();
    for q in &current.queries {
        let Some(old) = baseline.median_ms(&q.id, &q.engine) else {
            outcome.skipped += 1;
            continue;
        };
        if old < GATE_NOISE_FLOOR_MS || q.median_ms < GATE_NOISE_FLOOR_MS {
            outcome.skipped += 1;
            continue;
        }
        ratios.push((
            format!("{} / {}", q.id, q.engine),
            old,
            q.median_ms,
            q.median_ms / old,
        ));
    }
    outcome.compared = ratios.len();
    if ratios.is_empty() {
        outcome.median_ratio = 1.0;
        return outcome;
    }
    let mut sorted: Vec<f64> = ratios.iter().map(|r| r.3).collect();
    sorted.sort_by(|a, b| a.total_cmp(b));
    outcome.median_ratio = sorted[sorted.len() / 2];
    let cutoff = tolerance * outcome.median_ratio;
    for (label, old, new, ratio) in ratios {
        // Fail only when the regression is both relatively (beyond the
        // tolerated, machine-normalized ratio) and absolutely (beyond the
        // jitter slack) significant.
        let excess_ms = new - old * outcome.median_ratio;
        if ratio > cutoff && excess_ms > GATE_ABSOLUTE_SLACK_MS {
            outcome.failures.push(format!(
                "{label}: {old:.3}ms -> {new:.3}ms ({ratio:.2}x, cutoff {cutoff:.2}x at median ratio {:.2})",
                outcome.median_ratio
            ));
        }
    }
    outcome
}

// ---- minimal JSON ------------------------------------------------------

/// The JSON subset the writer emits: objects, arrays, strings, numbers.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A string (escapes decoded).
    Str(String),
    /// Any number (always read as `f64`).
    Num(f64),
    /// An ordered list.
    Arr(Vec<Json>),
    /// An object as an ordered key/value list (no hashing needed).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

fn find<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_str(obj: &[(String, Json)], key: &str) -> Result<String, String> {
    find(obj, key)
        .and_then(|v| v.as_str())
        .map(String::from)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn get_f64(obj: &[(String, Json)], key: &str) -> Result<f64, String> {
    find(obj, key)
        .and_then(|v| v.as_f64())
        .ok_or_else(|| format!("missing numeric field `{key}`"))
}

fn get_usize(obj: &[(String, Json)], key: &str) -> Result<usize, String> {
    get_f64(obj, key).map(|v| v as usize)
}

fn get_array<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a [Json], String> {
    find(obj, key)
        .and_then(|v| v.as_array())
        .ok_or_else(|| format!("missing array field `{key}`"))
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos}", pos = *pos)),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut entries = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(entries));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        entries.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            _ => {
                // Copy one UTF-8 scalar (may be multi-byte).
                let len = utf8_len(c);
                let chunk = bytes
                    .get(*pos..*pos + len)
                    .ok_or("truncated UTF-8 sequence")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += len;
            }
        }
    }
    Err("unterminated string".into())
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while let Some(&c) = bytes.get(*pos) {
        if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    std::str::from_utf8(&bytes[start..*pos])
        .map_err(|e| e.to_string())?
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> BenchRecord {
        BenchRecord {
            dataset: "LUBM1".into(),
            triples: 12345,
            threads: 1,
            queries: vec![
                QueryRun {
                    id: "Q1".into(),
                    engine: "turbohom++".into(),
                    runs_ms: vec![0.5, 0.4, 0.6, 0.45, 0.55],
                    median_ms: 0.5,
                    avg_ms: 0.5,
                    solutions: 4,
                    stats: MatchStats {
                        candidate_regions: 7,
                        intersection_ops: 3,
                        morsels: 2,
                        morsels_stolen: 1,
                        ..MatchStats::default()
                    },
                    stages_ms: vec![
                        ("parse".into(), 0.01),
                        ("transform".into(), 0.02),
                        ("execute".into(), 0.45),
                    ],
                    qerror: Some(1.25),
                },
                QueryRun {
                    id: "Q2".into(),
                    engine: "mergejoin".into(),
                    runs_ms: vec![1.0; 5],
                    median_ms: 1.0,
                    avg_ms: 1.0,
                    solutions: 0,
                    stats: MatchStats::default(),
                    stages_ms: Vec::new(),
                    qerror: None,
                },
            ],
            sharded: vec![QueryRun {
                id: "Q1".into(),
                engine: "turbohom++".into(),
                runs_ms: vec![0.3; 5],
                median_ms: 0.3,
                avg_ms: 0.3,
                solutions: 4,
                stats: MatchStats {
                    solutions: 4,
                    shards_executed: 3,
                    shards_pruned: 5,
                    ..MatchStats::default()
                },
                stages_ms: Vec::new(),
                qerror: Some(2.0),
            }],
            shard_count: 8,
            scheduler_comparison: vec![SchedulerRun {
                id: "Q2".into(),
                threads: 4,
                morsel_ms: 0.8,
                chunked_ms: 1.1,
                morsels: 40,
                morsels_stolen: 6,
            }],
            load_ms: vec![
                ("parse_build".into(), 12.5),
                ("snapshot_map".into(), 0.75),
                ("sharded_parse_build".into(), 20.0),
                ("sharded_map".into(), 1.5),
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let record = sample_record();
        let json = record.to_json();
        let parsed = BenchRecord::from_json(&json).unwrap();
        assert_eq!(parsed.dataset, record.dataset);
        assert_eq!(parsed.triples, record.triples);
        assert_eq!(parsed.queries.len(), 2);
        assert_eq!(parsed.queries[0].stats.candidate_regions, 7);
        assert_eq!(parsed.queries[0].stats.morsels_stolen, 1);
        assert_eq!(parsed.scheduler_comparison, record.scheduler_comparison);
        assert_eq!(parsed.median_ms("Q1", "turbohom++"), Some(0.5));
        assert_eq!(parsed.median_ms("Q9", "turbohom++"), None);
        // The floats survive the 6-decimal formatting.
        assert!((parsed.queries[0].runs_ms[1] - 0.4).abs() < 1e-9);
        // The stage breakdown round-trips; an empty one is simply omitted.
        assert_eq!(parsed.queries[0].stages_ms.len(), 3);
        assert_eq!(parsed.queries[0].stages_ms[0].0, "parse");
        assert!((parsed.queries[0].stages_ms[2].1 - 0.45).abs() < 1e-9);
        assert!(parsed.queries[1].stages_ms.is_empty());
        assert!(!json.contains("\"engine\": \"mergejoin\", \"stages_ms\""));
        // The qerror column round-trips; `None` omits the key entirely.
        assert_eq!(parsed.queries[0].qerror, Some(1.25));
        assert_eq!(parsed.queries[1].qerror, None);
        assert_eq!(parsed.sharded[0].qerror, Some(2.0));
        // The load_ms column round-trips.
        assert_eq!(parsed.load_ms.len(), 4);
        assert_eq!(parsed.load_ms[0].0, "parse_build");
        assert!((parsed.load_ms[1].1 - 0.75).abs() < 1e-9);
        assert_eq!(parsed.load_ms[2].0, "sharded_parse_build");
        // The sharded section round-trips, shard counters included.
        assert_eq!(parsed.shard_count, 8);
        assert_eq!(parsed.sharded.len(), 1);
        assert_eq!(parsed.sharded[0].stats.shards_executed, 3);
        assert_eq!(parsed.sharded[0].stats.shards_pruned, 5);
    }

    #[test]
    fn records_without_the_sharded_section_still_parse() {
        let mut record = sample_record();
        record.sharded.clear();
        record.shard_count = 0;
        let json = record.to_json();
        assert!(!json.contains("\"sharded\""));
        assert!(!json.contains("shard_count"));
        let parsed = BenchRecord::from_json(&json).unwrap();
        assert!(parsed.sharded.is_empty());
        assert_eq!(parsed.shard_count, 0);
        // The shard stat keys are always present in `stats` but parse as
        // zero from records written before they existed.
        let legacy = json.replace(",\"shards_executed\":0,\"shards_pruned\":0", "");
        assert!(!legacy.contains("shards_executed"));
        let parsed = BenchRecord::from_json(&legacy).unwrap();
        assert!(parsed
            .queries
            .iter()
            .all(|q| q.stats.shards_executed == 0 && q.stats.shards_pruned == 0));
    }

    #[test]
    fn records_without_the_load_ms_column_still_parse() {
        let mut record = sample_record();
        record.load_ms.clear();
        let json = record.to_json();
        assert!(!json.contains("load_ms"));
        let parsed = BenchRecord::from_json(&json).unwrap();
        assert!(parsed.load_ms.is_empty());
    }

    #[test]
    fn records_without_the_qerror_column_still_parse() {
        // A record serialized before the qerror column existed: strip it
        // from the writer output and re-parse.
        let mut record = sample_record();
        for q in record.queries.iter_mut().chain(record.sharded.iter_mut()) {
            q.qerror = None;
        }
        let json = record.to_json();
        assert!(!json.contains("qerror"));
        let parsed = BenchRecord::from_json(&json).unwrap();
        assert!(parsed.queries.iter().all(|q| q.qerror.is_none()));
        assert!(parsed.sharded.iter().all(|q| q.qerror.is_none()));
    }

    #[test]
    fn records_without_the_stages_column_still_parse() {
        // A record serialized before stages_ms existed: strip the column
        // from the writer output and re-parse.
        let mut record = sample_record();
        for q in &mut record.queries {
            q.stages_ms.clear();
        }
        let json = record.to_json();
        assert!(!json.contains("stages_ms"));
        let parsed = BenchRecord::from_json(&json).unwrap();
        assert!(parsed.queries.iter().all(|q| q.stages_ms.is_empty()));
        assert_eq!(parsed.queries.len(), 2);
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(BenchRecord::from_json("").is_err());
        assert!(BenchRecord::from_json("[1,2,3]").is_err());
        assert!(BenchRecord::from_json("{\"dataset\": }").is_err());
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn json_escapes_round_trip() {
        let v = Json::parse(r#"{"k": "a\"b\\c\ndA"}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(find(obj, "k").unwrap().as_str(), Some("a\"b\\c\ndA"));
    }

    fn record_with(medians: &[(&str, f64)]) -> BenchRecord {
        BenchRecord {
            dataset: "X".into(),
            queries: medians
                .iter()
                .map(|(id, m)| QueryRun {
                    id: id.to_string(),
                    engine: "turbohom++".into(),
                    runs_ms: vec![*m; 5],
                    median_ms: *m,
                    avg_ms: *m,
                    solutions: 1,
                    stats: MatchStats::default(),
                    stages_ms: Vec::new(),
                    qerror: None,
                })
                .collect(),
            ..BenchRecord::default()
        }
    }

    #[test]
    fn gate_passes_identical_records() {
        let r = record_with(&[("Q1", 1.0), ("Q2", 2.0), ("Q3", 5.0)]);
        let outcome = regression_gate(&r, &r.clone(), GATE_DEFAULT_TOLERANCE);
        assert!(outcome.passed());
        assert_eq!(outcome.compared, 3);
        assert!((outcome.median_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gate_normalizes_away_uniform_machine_slowdown() {
        let old = record_with(&[("Q1", 1.0), ("Q2", 2.0), ("Q3", 5.0)]);
        // Everything exactly 2x slower: a slower machine, not a regression.
        let new = record_with(&[("Q1", 2.0), ("Q2", 4.0), ("Q3", 10.0)]);
        let outcome = regression_gate(&old, &new, GATE_DEFAULT_TOLERANCE);
        assert!(outcome.passed(), "{:?}", outcome.failures);
        assert!((outcome.median_ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gate_fails_a_single_query_regression() {
        let old = record_with(&[("Q1", 1.0), ("Q2", 2.0), ("Q3", 5.0)]);
        // Q3 regresses 2x while the others hold still.
        let new = record_with(&[("Q1", 1.0), ("Q2", 2.0), ("Q3", 10.0)]);
        let outcome = regression_gate(&old, &new, GATE_DEFAULT_TOLERANCE);
        assert_eq!(outcome.failures.len(), 1);
        assert!(outcome.failures[0].contains("Q3"));
    }

    #[test]
    fn gate_tolerates_relative_jitter_on_tiny_timings() {
        // Q3 is 40% "slower", but only by 40µs — under the absolute slack,
        // so it is jitter, not a regression.
        let old = record_with(&[("Q1", 0.1), ("Q2", 0.1), ("Q3", 0.1)]);
        let new = record_with(&[("Q1", 0.1), ("Q2", 0.1), ("Q3", 0.14)]);
        let outcome = regression_gate(&old, &new, GATE_DEFAULT_TOLERANCE);
        assert!(outcome.passed(), "{:?}", outcome.failures);
        // The same 40% on a 10ms query is 4ms — a real regression.
        let old = record_with(&[("Q1", 10.0), ("Q2", 10.0), ("Q3", 10.0)]);
        let new = record_with(&[("Q1", 10.0), ("Q2", 10.0), ("Q3", 14.0)]);
        let outcome = regression_gate(&old, &new, GATE_DEFAULT_TOLERANCE);
        assert_eq!(outcome.failures.len(), 1);
    }

    #[test]
    fn gate_skips_noise_floor_and_missing_pairs() {
        let old = record_with(&[("Q1", 0.01), ("Q2", 2.0)]);
        let new = record_with(&[("Q1", 0.04), ("Q2", 2.0), ("Q9", 3.0)]);
        let outcome = regression_gate(&old, &new, GATE_DEFAULT_TOLERANCE);
        // Q1 is under the 0.05ms floor, Q9 has no baseline.
        assert_eq!(outcome.compared, 1);
        assert_eq!(outcome.skipped, 2);
        assert!(outcome.passed());
    }

    #[test]
    fn gate_with_no_comparable_pairs_passes() {
        let old = record_with(&[("Q1", 1.0)]);
        let new = record_with(&[("Q9", 1.0)]);
        let outcome = regression_gate(&old, &new, GATE_DEFAULT_TOLERANCE);
        assert!(outcome.passed());
        assert_eq!(outcome.compared, 0);
    }
}
