//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```bash
//! cargo run --release -p turbohom-bench --bin experiments -- all
//! cargo run --release -p turbohom-bench --bin experiments -- table3 figure15
//! ```
//!
//! Each experiment prints a table in the layout of the corresponding paper
//! table/figure, with locally measured numbers. The mapping from experiment
//! id to paper artifact is documented in DESIGN.md §2 and the measured
//! results are recorded in EXPERIMENTS.md.
//!
//! `--engines=turbohom++,mergejoin` restricts the per-engine tables to the
//! listed engines (names are parsed case-insensitively via
//! `EngineKind::from_str`).
//!
//! The `record` mode is the perf flight recorder (docs/BENCHMARKING.md):
//!
//! ```bash
//! cargo run --release -p turbohom-bench --bin experiments -- record \
//!     --scale=1 --out=BENCH_LUBM1.json --baseline=BENCH_LUBM1.json
//! ```
//!
//! It measures every LUBM query on every engine (5 warm runs each), writes
//! the medians and per-stage matcher counters to `--out`, and — when
//! `--baseline` points at a committed record — fails (exit 1) if any query's
//! median regressed more than 25% beyond the hardware-normalized median
//! ratio (see `turbohom_bench::recorder`).

use std::collections::BTreeMap;
use turbohom_bench::recorder::{regression_gate, BenchRecord, QueryRun, SchedulerRun};
use turbohom_bench::*;
use turbohom_core::{OptimizationName, Optimizations, Scheduler, TurboHomConfig};
use turbohom_datasets::{bsbm, btc, lubm, yago};
use turbohom_engine::{EngineKind, Trace};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "record") {
        std::process::exit(record_mode(&args));
    }
    let engines: Vec<EngineKind> = args
        .iter()
        .filter_map(|a| a.strip_prefix("--engines="))
        .flat_map(|list| list.split(','))
        .map(|name| {
            name.parse::<EngineKind>().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            })
        })
        .collect();
    let engines = if engines.is_empty() {
        EngineKind::all().to_vec()
    } else {
        engines
    };
    let mut requested: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with('-'))
        .map(|a| a.to_lowercase())
        .collect();
    if requested.is_empty() || requested.iter().any(|a| a == "all") {
        requested = vec![
            "table1", "table2", "table3", "table4", "table5", "table6", "table7", "figure6",
            "figure15", "figure16",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }

    println!("TurboHOM++ reproduction — experiment harness");
    println!("=============================================");
    println!("building workloads ...");
    let workloads = Workloads::build();
    for (name, store) in &workloads.lubm {
        println!("  {name}: {} triples", store.triple_count());
    }
    println!("  YAGO-like: {} triples", workloads.yago.triple_count());
    println!("  BTC-like:  {} triples", workloads.btc.triple_count());
    println!("  BSBM-like: {} triples", workloads.bsbm.triple_count());

    for experiment in &requested {
        match experiment.as_str() {
            "table1" => table1(&workloads),
            "table2" => table2(&workloads),
            "table3" => table3(&workloads, &engines),
            "table4" => table4(&workloads, &engines),
            "table5" => table5(&workloads, &engines),
            "table6" => table6(&workloads, &engines),
            "table7" => table7(&workloads),
            "figure6" => figure6(&workloads, &engines),
            "figure15" => figure15(&workloads),
            "figure16" => figure16(),
            other => eprintln!("unknown experiment `{other}` (expected table1..table7, figure6, figure15, figure16, all)"),
        }
    }
}

/// Returns the value of a `--flag=value` argument, if present.
fn flag<'a>(args: &'a [String], prefix: &str) -> Option<&'a str> {
    args.iter().find_map(|a| a.strip_prefix(prefix))
}

/// The flight recorder: measures the LUBM workload, writes
/// `BENCH_<dataset>.json`, and optionally gates against a baseline record.
/// Returns the process exit code.
fn record_mode(args: &[String]) -> i32 {
    let scale: usize = flag(args, "--scale=")
        .map(|v| v.parse().expect("--scale takes an integer"))
        .unwrap_or(1);
    let threads: usize = flag(args, "--threads=")
        .map(|v| v.parse().expect("--threads takes an integer"))
        .unwrap_or(1);
    let tolerance: f64 = flag(args, "--tolerance=")
        .map(|v| v.parse().expect("--tolerance takes a float"))
        .unwrap_or(recorder::GATE_DEFAULT_TOLERANCE);
    let dataset = format!("LUBM{scale}");
    let out_path = flag(args, "--out=")
        .map(String::from)
        .unwrap_or_else(|| format!("BENCH_{dataset}.json"));

    println!("flight recorder: building {dataset} ...");
    let build_started = std::time::Instant::now();
    let store = lubm_store(scale);
    let parse_build_ms = build_started.elapsed().as_secs_f64() * 1000.0;
    println!(
        "  {} triples ({parse_build_ms:.1} ms parse+build)",
        store.triple_count()
    );

    // The load_ms column: how long the same store takes to come up from a
    // snapshot (zero-copy map) vs the parse+build path above.
    let snapshot_path = std::env::temp_dir().join(format!("turbohom-bench-{dataset}.snap"));
    let snapshot_map_ms = match store.save_snapshot(&snapshot_path) {
        Ok(bytes) => {
            let map_started = std::time::Instant::now();
            let mapped = turbohom_engine::Store::from_snapshot(&snapshot_path)
                .unwrap_or_else(|e| panic!("reloading snapshot failed: {e}"));
            let ms = map_started.elapsed().as_secs_f64() * 1000.0;
            assert_eq!(mapped.triple_count(), store.triple_count());
            println!("  snapshot: {bytes} bytes, mapped in {ms:.1} ms");
            std::fs::remove_file(&snapshot_path).ok();
            Some(ms)
        }
        Err(e) => {
            eprintln!("  snapshot timing skipped: {e}");
            None
        }
    };

    let queries = lubm::queries();
    let mut record = BenchRecord {
        dataset,
        triples: store.triple_count(),
        threads,
        load_ms: {
            let mut l = vec![("parse_build".to_string(), parse_build_ms)];
            if let Some(ms) = snapshot_map_ms {
                l.push(("snapshot_map".to_string(), ms));
            }
            l
        },
        ..BenchRecord::default()
    };

    for q in &queries {
        let mut expected: Option<usize> = None;
        for kind in EngineKind::all() {
            let plan = store
                .prepare_plan(&q.sparql, kind)
                .unwrap_or_else(|e| panic!("planning {} for {} failed: {e}", q.id, kind));
            let (runs, last) = measure_runs(|| {
                store
                    .run_plan_with(&plan, Some(threads))
                    .unwrap_or_else(|e| panic!("{} failed on {}: {e}", kind.label(), q.id))
            });
            // Cross-engine agreement doubles as a correctness witness in
            // every recorded file.
            match expected {
                None => expected = Some(last.len()),
                Some(n) => assert_eq!(
                    last.len(),
                    n,
                    "{} disagrees with {} on {}",
                    kind.label(),
                    EngineKind::all()[0].label(),
                    q.id
                ),
            }
            // One extra traced run (outside the five measured) attributes the
            // median to pipeline stages for the `stages_ms` column.
            let trace = Trace::detailed(0);
            let traced_plan = store
                .prepare_plan_traced(&q.sparql, kind, &trace)
                .unwrap_or_else(|e| panic!("traced planning {} for {} failed: {e}", q.id, kind));
            store
                .run_plan_traced(&traced_plan, Some(threads), &trace)
                .unwrap_or_else(|e| panic!("traced {} failed on {}: {e}", kind.label(), q.id));
            let report = trace.finish();
            // One ANALYZE run (also outside the measured five) yields the
            // max per-step estimate-vs-actual q-error for the `qerror`
            // column. Join baselines carry no per-step estimates → None.
            let qerror = store
                .analyze(&q.sparql, kind, Some(threads))
                .unwrap_or_else(|e| panic!("analyze {} for {} failed: {e}", q.id, kind))
                .1
                .max_qerror();
            record.queries.push(QueryRun {
                id: q.id.clone(),
                engine: kind.name().to_string(),
                runs_ms: runs.iter().map(|d| d.as_secs_f64() * 1000.0).collect(),
                median_ms: protocol_median(&runs).as_secs_f64() * 1000.0,
                avg_ms: protocol_average(&runs).as_secs_f64() * 1000.0,
                solutions: last.len(),
                stats: last.stats,
                qerror,
                stages_ms: {
                    let mut stages: Vec<(String, f64)> = report
                        .stages()
                        .into_iter()
                        .map(|(name, ns)| (name.to_string(), ns as f64 / 1e6))
                        .collect();
                    // The detailed children of `execute` (zero for the join
                    // baselines, which have no region/order phases).
                    for detail in ["candidate_regions", "matching_order", "enumeration"] {
                        let ns = report.span_total_ns(detail);
                        if ns > 0 {
                            stages.push((detail.to_string(), ns as f64 / 1e6));
                        }
                    }
                    stages
                },
            });
        }
        println!(
            "  {:<4} {:>8} solutions, turbohom++ median {} ms",
            q.id,
            expected.unwrap_or(0),
            record
                .queries
                .iter()
                .rev()
                .find(|r| r.id == q.id && r.engine == "turbohom++")
                .map(|r| format!("{:.3}", r.median_ms))
                .unwrap_or_default()
        );
    }

    // Morsel-vs-chunked scheduler A/B on the heavy queries at 4 threads.
    let ab_threads = 4usize;
    for q in queries.iter().filter(|q| q.id == "Q2" || q.id == "Q9") {
        let run_with = |scheduler: Scheduler| {
            let config = TurboHomConfig::turbohom_plus_plus()
                .with_threads(ab_threads)
                .with_scheduler(scheduler);
            measure_runs(|| {
                store
                    .execute_turbohom(&q.sparql, config, false)
                    .unwrap_or_else(|e| panic!("{} A/B failed on {}: {e}", scheduler.label(), q.id))
            })
        };
        let (morsel_runs, morsel_last) = run_with(Scheduler::Morsel);
        let (chunked_runs, _) = run_with(Scheduler::Chunked);
        record.scheduler_comparison.push(SchedulerRun {
            id: q.id.clone(),
            threads: ab_threads,
            morsel_ms: protocol_median(&morsel_runs).as_secs_f64() * 1000.0,
            chunked_ms: protocol_median(&chunked_runs).as_secs_f64() * 1000.0,
            morsels: morsel_last.stats.morsels,
            morsels_stolen: morsel_last.stats.morsels_stolen,
        });
    }

    // The sharded column: the same queries through the scatter-gather
    // coordinator at k=8. The regression gate only compares `queries`, so
    // this section is informational — the interesting numbers are
    // `shards_executed` / `shards_pruned` (summary pruning plus
    // constant-anchor ownership routing) and the sharded load timings.
    let shard_k = 8usize;
    println!(
        "flight recorder: building sharded {} (k={shard_k}) ...",
        record.dataset
    );
    let sharded_build_started = std::time::Instant::now();
    let sharded = sharded_lubm_store(scale, shard_k);
    record.shard_count = shard_k;
    record.load_ms.push((
        "sharded_parse_build".to_string(),
        sharded_build_started.elapsed().as_secs_f64() * 1000.0,
    ));

    // Sharded map timing: per-shard snapshots plus a manifest, booted back.
    let manifest_path =
        std::env::temp_dir().join(format!("turbohom-bench-{}.shards", record.dataset));
    match sharded.save_snapshots(&manifest_path) {
        Ok(bytes) => {
            let map_started = std::time::Instant::now();
            let mapped = turbohom_engine::ShardedStore::from_manifest(&manifest_path, 1)
                .unwrap_or_else(|e| panic!("rebooting shard manifest failed: {e}"));
            let ms = map_started.elapsed().as_secs_f64() * 1000.0;
            assert_eq!(mapped.triple_count(), sharded.triple_count());
            println!("  shard snapshots: {bytes} bytes, mapped in {ms:.1} ms");
            record.load_ms.push(("sharded_map".to_string(), ms));
            for i in 0..shard_k {
                let name = format!("turbohom-bench-{}.shards.shard{i}.snap", record.dataset);
                std::fs::remove_file(manifest_path.with_file_name(name)).ok();
            }
            std::fs::remove_file(&manifest_path).ok();
        }
        Err(e) => eprintln!("  sharded snapshot timing skipped: {e}"),
    }

    for q in &queries {
        let plan = sharded
            .prepare_plan(&q.sparql, EngineKind::TurboHomPlusPlus)
            .unwrap_or_else(|e| panic!("sharded planning {} failed: {e}", q.id));
        let (runs, last) = measure_runs(|| {
            sharded
                .run_plan_traced(&plan, Some(threads), &Trace::disabled())
                .unwrap_or_else(|e| panic!("sharded turbohom++ failed on {}: {e}", q.id))
        });
        // The sharded path must agree with the single store it mirrors.
        let single = record
            .queries
            .iter()
            .find(|r| r.id == q.id && r.engine == "turbohom++")
            .map(|r| r.solutions)
            .unwrap_or(0);
        assert_eq!(
            last.len(),
            single,
            "sharded execution disagrees with the single store on {}",
            q.id
        );
        // One traced run for the stage column (includes `summary_prune`).
        let trace = Trace::detailed(0);
        let traced_plan = sharded
            .prepare_plan_traced(&q.sparql, EngineKind::TurboHomPlusPlus, &trace)
            .unwrap_or_else(|e| panic!("sharded traced planning {} failed: {e}", q.id));
        sharded
            .run_plan_traced(&traced_plan, Some(threads), &trace)
            .unwrap_or_else(|e| panic!("sharded traced run failed on {}: {e}", q.id));
        let report = trace.finish();
        let qerror = sharded
            .analyze(&q.sparql, EngineKind::TurboHomPlusPlus, Some(threads))
            .unwrap_or_else(|e| panic!("sharded analyze {} failed: {e}", q.id))
            .1
            .max_qerror();
        record.sharded.push(QueryRun {
            id: q.id.clone(),
            engine: "turbohom++".to_string(),
            runs_ms: runs.iter().map(|d| d.as_secs_f64() * 1000.0).collect(),
            median_ms: protocol_median(&runs).as_secs_f64() * 1000.0,
            avg_ms: protocol_average(&runs).as_secs_f64() * 1000.0,
            solutions: last.len(),
            stats: last.stats,
            qerror,
            stages_ms: report
                .stages()
                .into_iter()
                .map(|(name, ns)| (name.to_string(), ns as f64 / 1e6))
                .collect(),
        });
        println!(
            "  {:<4} sharded: {} live / {} pruned of {shard_k}",
            q.id, last.stats.shards_executed, last.stats.shards_pruned
        );
    }

    let json = record.to_json();
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path} ({} bytes)", json.len());

    if let Some(baseline_path) = flag(args, "--baseline=") {
        let baseline_text = match std::fs::read_to_string(baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read baseline {baseline_path}: {e}");
                return 2;
            }
        };
        let baseline = match BenchRecord::from_json(&baseline_text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot parse baseline {baseline_path}: {e}");
                return 2;
            }
        };
        let outcome = regression_gate(&baseline, &record, tolerance);
        println!(
            "gate vs {baseline_path}: {} compared, {} skipped, median ratio {:.2}x, tolerance {:.2}x",
            outcome.compared, outcome.skipped, outcome.median_ratio, tolerance
        );
        if !outcome.passed() {
            for f in &outcome.failures {
                eprintln!("REGRESSION: {f}");
            }
            return 1;
        }
        println!("gate passed");
    }
    0
}

/// Keeps `defaults` in order, dropping the engines not selected on the
/// command line.
fn select(defaults: &[EngineKind], selected: &[EngineKind]) -> Vec<EngineKind> {
    defaults
        .iter()
        .copied()
        .filter(|k| selected.contains(k))
        .collect()
}

fn heading(title: &str) {
    println!("\n{title}");
    println!("{}", "-".repeat(title.len()));
}

/// Table 1: graph size statistics under the direct vs type-aware
/// transformation.
fn table1(w: &Workloads) {
    heading("Table 1 — graph size statistics (direct vs type-aware transformation)");
    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>14}",
        "dataset", "|V| direct", "|E| direct", "|V| type-aware", "|E| type-aware"
    );
    let mut datasets: Vec<(&str, &turbohom_engine::Store)> =
        w.lubm.iter().map(|(n, s)| (*n, s)).collect();
    datasets.push(("BTC-like", &w.btc));
    datasets.push(("BSBM-like", &w.bsbm));
    for (name, store) in datasets {
        let d = store.direct_graph().graph.stats();
        let a = store.type_aware_graph().graph.stats();
        println!(
            "{:<10} {:>12} {:>12} {:>14} {:>14}",
            name, d.vertices, d.edges, a.vertices, a.edges
        );
    }
}

/// Table 2: number of solutions of the LUBM queries per scale factor.
fn table2(w: &Workloads) {
    heading("Table 2 — number of solutions in LUBM queries");
    let queries = lubm::queries();
    print!("{:<8}", "dataset");
    for q in &queries {
        print!("{:>9}", q.id);
    }
    println!();
    for (name, store) in &w.lubm {
        print!("{name:<8}");
        for q in &queries {
            let (_, count) = measure_engine(store, q, EngineKind::TurboHomPlusPlus);
            print!("{count:>9}");
        }
        println!();
    }
}

/// Table 3: elapsed times of the LUBM queries for every engine, per scale.
fn table3(w: &Workloads, engines: &[EngineKind]) {
    let queries = lubm::queries();
    for (name, store) in &w.lubm {
        heading(&format!("Table 3 — elapsed time in {name} [ms]"));
        print!("{:<26}", "engine");
        for q in &queries {
            print!("{:>10}", q.id);
        }
        println!();
        for kind in select(&EngineKind::all(), engines) {
            print!("{:<26}", kind.label());
            for q in &queries {
                let (elapsed, _) = measure_engine(store, q, kind);
                print!("{:>10}", ms(elapsed));
            }
            println!();
        }
    }
}

/// Generic per-workload table: solutions + elapsed time per engine.
fn workload_table(
    title: &str,
    store: &turbohom_engine::Store,
    queries: &[turbohom_datasets::BenchmarkQuery],
    engines: &[EngineKind],
) {
    heading(title);
    print!("{:<26}", "");
    for q in queries {
        print!("{:>10}", q.id);
    }
    println!();
    print!("{:<26}", "# of solutions");
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for q in queries {
        let (_, count) = measure_engine(store, q, EngineKind::TurboHomPlusPlus);
        counts.insert(q.id.clone(), count);
        print!("{count:>10}");
    }
    println!();
    for kind in engines {
        print!("{:<26}", kind.label());
        for q in queries {
            let (elapsed, count) = measure_engine(store, q, *kind);
            assert_eq!(
                count,
                counts[&q.id],
                "{} disagrees with TurboHOM++ on {}",
                kind.label(),
                q.id
            );
            print!("{:>10}", ms(elapsed));
        }
        println!();
    }
}

/// Table 4: YAGO-like workload.
fn table4(w: &Workloads, engines: &[EngineKind]) {
    workload_table(
        "Table 4 — number of solutions and elapsed time [ms] in YAGO-like data",
        &w.yago,
        &yago::queries(),
        &select(&EngineKind::all(), engines),
    );
}

/// Table 5: BTC-like workload.
fn table5(w: &Workloads, engines: &[EngineKind]) {
    workload_table(
        "Table 5 — number of solutions and elapsed time [ms] in BTC-like data",
        &w.btc,
        &btc::queries(),
        &select(&EngineKind::all(), engines),
    );
}

/// Table 6: BSBM-like explore workload (general SPARQL features). The paper
/// can only run the commercial System-X here; we additionally run both of
/// our join baselines.
fn table6(w: &Workloads, engines: &[EngineKind]) {
    workload_table(
        "Table 6 — number of solutions and elapsed time [ms] in BSBM-like data",
        &w.bsbm,
        &bsbm::queries(),
        &select(
            &[
                EngineKind::TurboHomPlusPlus,
                EngineKind::MergeJoin,
                EngineKind::HashJoin,
            ],
            engines,
        ),
    );
}

/// Table 7: effect of the type-aware transformation (direct vs type-aware,
/// optimizations disabled, largest LUBM scale).
fn table7(w: &Workloads) {
    let (name, store) = w.lubm.last().expect("at least one LUBM scale");
    heading(&format!(
        "Table 7 — effect of type-aware transformation in {name} [ms]"
    ));
    let queries = lubm::queries();
    let config = TurboHomConfig::default().with_optimizations(Optimizations::none());
    println!(
        "{:<6} {:>14} {:>18} {:>10}",
        "query", "direct [ms]", "type-aware [ms]", "gain"
    );
    for q in &queries {
        let (direct, _) = measure_turbohom(store, q, config, true);
        let (aware, _) = measure_turbohom(store, q, config, false);
        let gain = direct.as_secs_f64() / aware.as_secs_f64().max(1e-9);
        println!(
            "{:<6} {:>14} {:>18} {:>9.2}x",
            q.id,
            ms(direct),
            ms(aware),
            gain
        );
    }
}

/// Figure 6: the unoptimized TurboHOM over the direct transformation
/// compared with the join-based engines (log-scale bars in the paper; a
/// table here).
fn figure6(w: &Workloads, engines: &[EngineKind]) {
    let (name, store) = w.lubm.last().expect("at least one LUBM scale");
    heading(&format!(
        "Figure 6 — direct-transformation TurboHOM vs join engines in {name} [ms]"
    ));
    let queries = lubm::queries();
    print!("{:<26}", "engine");
    for q in &queries {
        print!("{:>10}", q.id);
    }
    println!();
    for kind in select(
        &[
            EngineKind::TurboHom,
            EngineKind::MergeJoin,
            EngineKind::HashJoin,
        ],
        engines,
    ) {
        print!("{:<26}", kind.label());
        for q in &queries {
            let (elapsed, _) = measure_engine(store, q, kind);
            print!("{:>10}", ms(elapsed));
        }
        println!();
    }
}

/// Figure 15: reduced elapsed time of each optimization applied separately
/// (Q2 and Q9, largest LUBM scale).
fn figure15(w: &Workloads) {
    let (name, store) = w.lubm.last().expect("at least one LUBM scale");
    heading(&format!(
        "Figure 15 — reduced elapsed time of each optimization in {name} [ms]"
    ));
    let queries: Vec<_> = lubm::queries()
        .into_iter()
        .filter(|q| q.id == "Q2" || q.id == "Q9")
        .collect();
    println!(
        "{:<6} {:>16} {:>12} {:>12} {:>12} {:>12} {:>16}",
        "query", "no-opt [ms]", "+INT", "-NLF", "-DEG", "+REUSE", "all-opts [ms]"
    );
    for q in &queries {
        let base_config = TurboHomConfig::default().with_optimizations(Optimizations::none());
        let (base, _) = measure_turbohom(store, q, base_config, false);
        let mut cells = Vec::new();
        for opt in OptimizationName::all() {
            let config = TurboHomConfig::default().with_optimizations(Optimizations::only(opt));
            let (t, _) = measure_turbohom(store, q, config, false);
            let reduced = base.saturating_sub(t);
            cells.push(format!("{:>12}", ms(reduced)));
        }
        let all_config = TurboHomConfig::default().with_optimizations(Optimizations::all());
        let (all, _) = measure_turbohom(store, q, all_config, false);
        println!(
            "{:<6} {:>16} {} {:>16}",
            q.id,
            ms(base),
            cells.join(" "),
            ms(all)
        );
    }
    println!("(columns +INT/-NLF/-DEG/+REUSE report the elapsed-time reduction relative to the no-optimization run)");
}

/// Figure 16: parallel speed-up of TurboHOM++ on Q2 and Q9.
fn figure16() {
    heading("Figure 16 — parallel speed-up of TurboHOM++ (Q2 and Q9)");
    let thread_counts = [1usize, 2, 4, 8, 16];
    println!("building the parallel workload (larger departments) ...");
    let universities = 96;
    let queries: Vec<_> = lubm::queries()
        .into_iter()
        .filter(|q| q.id == "Q2" || q.id == "Q9")
        .collect();
    // Build one store per thread count so each run uses the configured pool.
    let base_store = lubm_parallel_store(universities, 1);
    println!("  {} triples", base_store.triple_count());
    println!(
        "{:<6} {:>9} {:>14} {:>10}",
        "query", "threads", "elapsed [ms]", "speed-up"
    );
    for q in &queries {
        let mut baseline_ms = None;
        for &threads in &thread_counts {
            let config = TurboHomConfig::turbohom_plus_plus().with_threads(threads);
            let (elapsed, _) = measure_turbohom(&base_store, q, config, false);
            let t = elapsed.as_secs_f64() * 1000.0;
            let speedup = match baseline_ms {
                None => {
                    baseline_ms = Some(t);
                    1.0
                }
                Some(base) => base / t.max(1e-9),
            };
            println!(
                "{:<6} {:>9} {:>14} {:>9.2}x",
                q.id,
                threads,
                ms(elapsed),
                speedup
            );
        }
    }
}
