//! The TurboHOM / TurboHOM++ matching engine — the paper's contribution.
//!
//! This crate implements the e-graph homomorphism search of
//! *"Taming Subgraph Isomorphism for RDF Query Processing"* (VLDB 2015):
//! a TurboISO-style backtracking matcher relaxed from subgraph isomorphism to
//! graph homomorphism with edge-label mapping (Definition 2), running over
//! the type-aware-transformed labeled graph, with the paper's optimizations:
//!
//! | Paper | Module |
//! |-------|--------|
//! | `ChooseStartQueryVertex` (rank = freq/deg, degree + NLF refinement) | [`start_vertex`] |
//! | `WriteQueryTree` (BFS tree + non-tree edges) | [`query_tree`] |
//! | `ExploreCandidateRegion` | [`candidate_region`] |
//! | `DetermineMatchingOrder` (+REUSE) | [`matching_order`] |
//! | `SubgraphSearch` / `IsJoinable` (+INT) | [`subgraph_search`] |
//! | degree / NLF filters (−DEG / −NLF toggles) | [`filters`] |
//! | OPTIONAL / FILTER handling (Section 5.1) | folded into [`subgraph_search`] and [`engine`] |
//! | parallel execution over starting vertices (Section 5.2) | [`engine`] + [`morsel`] |
//!
//! The public entry point is [`TurboHomEngine`].

pub mod candidate_region;
pub mod config;
pub mod engine;
pub mod filters;
pub mod matching_order;
pub mod morsel;
pub mod query_tree;
pub mod result;
pub mod start_vertex;
pub mod stats;
pub mod subgraph_search;

pub use config::{MatchSemantics, OptimizationName, Optimizations, Scheduler, TurboHomConfig};
pub use engine::{EngineError, TurboHomEngine};
pub use matching_order::MatchingOrder;
pub use morsel::{Morsel, MorselQueue};
pub use result::{merge_step_counts, MatchResult, Solution};
pub use stats::MatchStats;
