//! Candidate retrieval and the degree / NLF filters.
//!
//! These are the pruning devices of `ExploreCandidateRegion` (paper
//! Section 2.2 and 4.2). Both filters exist in two flavours:
//!
//! * the **isomorphism** flavour of the original TurboISO (a data vertex must
//!   have at least as many neighbors per label as the query vertex), and
//! * the **homomorphism** flavour of Section 2.2's modification (a data
//!   vertex may be mapped to several query vertices, so only the *existence*
//!   of a neighbor per required neighbor label is demanded).
//!
//! The paper's `-NLF` / `-DEG` optimizations simply switch the filters off,
//! because RDF data is schema-regular and the filters rarely prune anything
//! (Section 4.3); the [`Optimizations`](crate::config::Optimizations) flags
//! control that.

use crate::config::{MatchSemantics, TurboHomConfig};
use crate::stats::MatchStats;
use turbohom_graph::{ops, Direction, ELabel, QueryGraph, VLabel, VertexId};
use turbohom_transform::TransformedGraph;

/// Returns the label set of `v` the engine should match against: the full
/// inferred closure normally, `Lsimple` under the simple entailment regime.
pub fn effective_labels<'a>(
    data: &'a TransformedGraph,
    config: &TurboHomConfig,
    v: VertexId,
) -> &'a [VLabel] {
    if config.simple_entailment {
        data.simple_labels_of(v)
    } else {
        data.graph.labels(v)
    }
}

/// Checks `L(u) ⊆ L'(v)` for the configured entailment regime.
pub fn satisfies_labels(
    data: &TransformedGraph,
    config: &TurboHomConfig,
    v: VertexId,
    required: &[VLabel],
) -> bool {
    if required.is_empty() {
        return true;
    }
    let labels = effective_labels(data, config, v);
    required.iter().all(|l| labels.binary_search(l).is_ok())
}

/// Retrieves the adjacent candidate vertices of `v` along a query edge with
/// edge label `el` (or a variable predicate when `None`) in `direction`,
/// constrained to carry all of `labels` (Section 4.2's
/// `ExploreCandidateRegion` inductive case).
///
/// The returned list is sorted and duplicate free.
pub fn adjacent_candidates(
    data: &TransformedGraph,
    v: VertexId,
    direction: Direction,
    el: Option<ELabel>,
    labels: &[VLabel],
) -> Vec<VertexId> {
    let g = &data.graph;
    match (el, labels.len()) {
        (Some(el), 0) => g.neighbors(v, direction, el).to_vec(),
        (Some(el), 1) => g.neighbors_typed(v, direction, el, labels[0]).to_vec(),
        (Some(el), _) => {
            let slices: Vec<&[VertexId]> = labels
                .iter()
                .map(|&l| g.neighbors_typed(v, direction, el, l))
                .collect();
            ops::intersect_k(&slices)
        }
        (None, 0) => g.all_neighbors(v, direction),
        (None, _) => {
            let lists: Vec<Vec<VertexId>> = labels
                .iter()
                .map(|&l| g.neighbors_with_label_any_edge(v, direction, l))
                .collect();
            let slices: Vec<&[VertexId]> = lists.iter().map(|l| l.as_slice()).collect();
            ops::intersect_k(&slices)
        }
    }
}

/// Applies the degree filter to data vertex `v` for query vertex `u`.
///
/// Returns `true` if `v` passes (or the filter is disabled in `config`).
pub fn degree_filter(
    data: &TransformedGraph,
    config: &TurboHomConfig,
    query: &QueryGraph,
    u: usize,
    v: VertexId,
    stats: &mut MatchStats,
) -> bool {
    if !config.optimizations.degree_filter {
        return true;
    }
    let pass = match config.semantics {
        MatchSemantics::Isomorphism => {
            // v needs at least as many incident edges per direction as u.
            let (mut q_out, mut q_in) = (0usize, 0usize);
            for &(ei, dir) in query.incident_edges(u) {
                let _ = ei;
                match dir {
                    Direction::Outgoing => q_out += 1,
                    Direction::Incoming => q_in += 1,
                }
            }
            data.graph.degree(v, Direction::Outgoing) >= q_out
                && data.graph.degree(v, Direction::Incoming) >= q_in
        }
        MatchSemantics::Homomorphism => {
            // Homomorphism flavour: v needs at least as many neighbors as u
            // has *distinct* neighbor constraints per direction.
            let mut distinct_out: Vec<(Option<ELabel>, Vec<VLabel>)> = Vec::new();
            let mut distinct_in: Vec<(Option<ELabel>, Vec<VLabel>)> = Vec::new();
            for (dir, el, labels) in query.neighbor_constraints(u) {
                let entry = (el, labels.to_vec());
                let bucket = match dir {
                    Direction::Outgoing => &mut distinct_out,
                    Direction::Incoming => &mut distinct_in,
                };
                if !bucket.contains(&entry) {
                    bucket.push(entry);
                }
            }
            data.graph.degree(v, Direction::Outgoing) >= distinct_out.len()
                && data.graph.degree(v, Direction::Incoming) >= distinct_in.len()
        }
    };
    if !pass {
        stats.degree_filtered += 1;
    }
    pass
}

/// A neighbor constraint of a query vertex: direction, optional edge label
/// and the required neighbor label set.
type NeighborConstraint = (Direction, Option<ELabel>, Vec<VLabel>);

/// Applies the neighborhood label frequency (NLF) filter to data vertex `v`
/// for query vertex `u`.
///
/// Isomorphism flavour: for every distinct neighbor constraint of `u`, `v`
/// must have at least as many matching neighbors as `u` requires.
/// Homomorphism flavour: at least one matching neighbor suffices.
pub fn nlf_filter(
    data: &TransformedGraph,
    config: &TurboHomConfig,
    query: &QueryGraph,
    u: usize,
    v: VertexId,
    stats: &mut MatchStats,
) -> bool {
    if !config.optimizations.nlf_filter {
        return true;
    }
    // Group u's neighbor constraints and count how often each occurs.
    let mut constraints: Vec<(NeighborConstraint, usize)> = Vec::new();
    for (dir, el, labels) in query.neighbor_constraints(u) {
        let key = (dir, el, labels.to_vec());
        if let Some(entry) = constraints.iter_mut().find(|(k, _)| *k == key) {
            entry.1 += 1;
        } else {
            constraints.push((key, 1));
        }
    }
    let pass = constraints.iter().all(|((dir, el, labels), count)| {
        let matching = adjacent_candidates(data, v, *dir, *el, labels);
        match config.semantics {
            MatchSemantics::Isomorphism => matching.len() >= *count,
            MatchSemantics::Homomorphism => !matching.is_empty(),
        }
    });
    if !pass {
        stats.nlf_filtered += 1;
    }
    pass
}

/// Applies the ID-attribute check, label check and (when enabled) the degree
/// and NLF filters to `v` as a candidate for query vertex `u`.
pub fn qualifies(
    data: &TransformedGraph,
    config: &TurboHomConfig,
    query: &QueryGraph,
    u: usize,
    v: VertexId,
    stats: &mut MatchStats,
) -> bool {
    if v.index() >= data.graph.vertex_count() {
        // Sentinel ids (constants absent from the data) never qualify.
        return false;
    }
    let qv = query.vertex(u);
    if let Some(bound) = qv.bound {
        if bound != v {
            return false;
        }
    }
    if !satisfies_labels(data, config, v, &qv.labels) {
        return false;
    }
    degree_filter(data, config, query, u, v, stats) && nlf_filter(data, config, query, u, v, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbohom_graph::{QueryEdge, QueryVertex};
    use turbohom_rdf::{vocab, Dataset};
    use turbohom_transform::type_aware_transform;

    fn ub(l: &str) -> String {
        format!("http://ub.org/{l}")
    }

    /// dept1 has two students (s1, s2) and one professor; s1 also took a
    /// course. Classes: Student, Professor, Course, Department.
    fn data() -> (Dataset, TransformedGraph) {
        let mut ds = Dataset::new();
        for s in ["s1", "s2"] {
            ds.insert_iris(&ub(s), vocab::RDF_TYPE, &ub("Student"));
            ds.insert_iris(&ub(s), &ub("memberOf"), &ub("dept1"));
        }
        ds.insert_iris(&ub("p1"), vocab::RDF_TYPE, &ub("Professor"));
        ds.insert_iris(&ub("p1"), &ub("worksFor"), &ub("dept1"));
        ds.insert_iris(&ub("dept1"), vocab::RDF_TYPE, &ub("Department"));
        ds.insert_iris(&ub("c1"), vocab::RDF_TYPE, &ub("Course"));
        ds.insert_iris(&ub("s1"), &ub("takesCourse"), &ub("c1"));
        let t = type_aware_transform(&ds);
        (ds, t)
    }

    fn vid(ds: &Dataset, t: &TransformedGraph, name: &str) -> VertexId {
        t.mappings
            .vertex_of(ds.dictionary.id_of_iri(&ub(name)).unwrap())
            .unwrap()
    }

    fn vl(ds: &Dataset, t: &TransformedGraph, name: &str) -> VLabel {
        t.mappings
            .vlabel_of(ds.dictionary.id_of_iri(&ub(name)).unwrap())
            .unwrap()
    }

    fn el(ds: &Dataset, t: &TransformedGraph, name: &str) -> ELabel {
        t.mappings
            .elabel_of(ds.dictionary.id_of_iri(&ub(name)).unwrap())
            .unwrap()
    }

    #[test]
    fn adjacent_candidates_respect_labels_and_direction() {
        let (ds, t) = data();
        let dept = vid(&ds, &t, "dept1");
        let member_of = el(&ds, &t, "memberOf");
        let student = vl(&ds, &t, "Student");
        // Students pointing at dept1 via memberOf (incoming at dept1).
        let cands = adjacent_candidates(&t, dept, Direction::Incoming, Some(member_of), &[student]);
        assert_eq!(cands.len(), 2);
        // Wrong direction: nothing.
        assert!(
            adjacent_candidates(&t, dept, Direction::Outgoing, Some(member_of), &[student])
                .is_empty()
        );
        // No label constraint: still the two students.
        assert_eq!(
            adjacent_candidates(&t, dept, Direction::Incoming, Some(member_of), &[]).len(),
            2
        );
        // Variable predicate: students + professor.
        assert_eq!(
            adjacent_candidates(&t, dept, Direction::Incoming, None, &[]).len(),
            3
        );
        // Variable predicate constrained to Professor.
        let professor = vl(&ds, &t, "Professor");
        assert_eq!(
            adjacent_candidates(&t, dept, Direction::Incoming, None, &[professor]).len(),
            1
        );
    }

    fn one_vertex_query(
        labels: Vec<VLabel>,
        neighbors: Vec<(Direction, Option<ELabel>, Vec<VLabel>)>,
    ) -> QueryGraph {
        let mut q = QueryGraph::new();
        let u = q.add_vertex(QueryVertex {
            labels,
            bound: None,
            variable: Some("x".into()),
        });
        for (dir, el, nl) in neighbors {
            let n = q.add_vertex(QueryVertex {
                labels: nl,
                bound: None,
                variable: None,
            });
            let (from, to) = match dir {
                Direction::Outgoing => (u, n),
                Direction::Incoming => (n, u),
            };
            q.add_edge(QueryEdge {
                from,
                to,
                label: el,
                variable: None,
            });
        }
        q
    }

    #[test]
    fn degree_filter_homomorphism_counts_distinct_constraints() {
        let (ds, t) = data();
        let mut stats = MatchStats::default();
        let config = TurboHomConfig {
            optimizations: crate::config::Optimizations::none(),
            ..TurboHomConfig::default()
        };
        let member_of = el(&ds, &t, "memberOf");
        let takes = el(&ds, &t, "takesCourse");
        // Query vertex with two outgoing constraints (memberOf, takesCourse).
        let q = one_vertex_query(
            vec![],
            vec![
                (Direction::Outgoing, Some(member_of), vec![]),
                (Direction::Outgoing, Some(takes), vec![]),
            ],
        );
        // s1 has both; s2 only memberOf.
        assert!(degree_filter(
            &t,
            &config,
            &q,
            0,
            vid(&ds, &t, "s1"),
            &mut stats
        ));
        assert!(!degree_filter(
            &t,
            &config,
            &q,
            0,
            vid(&ds, &t, "s2"),
            &mut stats
        ));
        assert_eq!(stats.degree_filtered, 1);
    }

    #[test]
    fn degree_filter_disabled_always_passes() {
        let (ds, t) = data();
        let mut stats = MatchStats::default();
        let config = TurboHomConfig::turbohom_plus_plus(); // -DEG
        let q = one_vertex_query(
            vec![],
            vec![
                (Direction::Outgoing, Some(el(&ds, &t, "memberOf")), vec![]),
                (
                    Direction::Outgoing,
                    Some(el(&ds, &t, "takesCourse")),
                    vec![],
                ),
            ],
        );
        assert!(degree_filter(
            &t,
            &config,
            &q,
            0,
            vid(&ds, &t, "s2"),
            &mut stats
        ));
        assert_eq!(stats.degree_filtered, 0);
    }

    #[test]
    fn nlf_filter_homomorphism_checks_existence() {
        let (ds, t) = data();
        let mut stats = MatchStats::default();
        let config = TurboHomConfig {
            optimizations: crate::config::Optimizations::none(),
            ..TurboHomConfig::default()
        };
        let member_of = el(&ds, &t, "memberOf");
        let dept_l = vl(&ds, &t, "Department");
        let course_l = vl(&ds, &t, "Course");
        let takes = el(&ds, &t, "takesCourse");
        // ?x memberOf ?d{Department} and ?x takesCourse ?c{Course}.
        let q = one_vertex_query(
            vec![],
            vec![
                (Direction::Outgoing, Some(member_of), vec![dept_l]),
                (Direction::Outgoing, Some(takes), vec![course_l]),
            ],
        );
        assert!(nlf_filter(
            &t,
            &config,
            &q,
            0,
            vid(&ds, &t, "s1"),
            &mut stats
        ));
        assert!(!nlf_filter(
            &t,
            &config,
            &q,
            0,
            vid(&ds, &t, "s2"),
            &mut stats
        ));
        assert_eq!(stats.nlf_filtered, 1);
    }

    #[test]
    fn nlf_filter_isomorphism_requires_counts() {
        let (ds, t) = data();
        let mut stats = MatchStats::default();
        let config = TurboHomConfig {
            semantics: MatchSemantics::Isomorphism,
            optimizations: crate::config::Optimizations::none(),
            ..TurboHomConfig::default()
        };
        let member_of = el(&ds, &t, "memberOf");
        let student_l = vl(&ds, &t, "Student");
        // dept1 must have two distinct incoming Student memberOf neighbors.
        let q = one_vertex_query(
            vec![],
            vec![
                (Direction::Incoming, Some(member_of), vec![student_l]),
                (Direction::Incoming, Some(member_of), vec![student_l]),
            ],
        );
        assert!(nlf_filter(
            &t,
            &config,
            &q,
            0,
            vid(&ds, &t, "dept1"),
            &mut stats
        ));
        // Under homomorphism the same check also passes trivially, but a
        // query needing three distinct students fails under isomorphism.
        let q3 = one_vertex_query(
            vec![],
            vec![
                (Direction::Incoming, Some(member_of), vec![student_l]),
                (Direction::Incoming, Some(member_of), vec![student_l]),
                (Direction::Incoming, Some(member_of), vec![student_l]),
            ],
        );
        assert!(!nlf_filter(
            &t,
            &config,
            &q3,
            0,
            vid(&ds, &t, "dept1"),
            &mut stats
        ));
    }

    #[test]
    fn qualifies_checks_bound_and_labels() {
        let (ds, t) = data();
        let mut stats = MatchStats::default();
        let config = TurboHomConfig::default();
        let student_l = vl(&ds, &t, "Student");
        let s1 = vid(&ds, &t, "s1");
        let dept = vid(&ds, &t, "dept1");

        let mut q = QueryGraph::new();
        q.add_vertex(QueryVertex {
            labels: vec![student_l],
            bound: Some(s1),
            variable: None,
        });
        assert!(qualifies(&t, &config, &q, 0, s1, &mut stats));
        // Wrong vertex for a bound query vertex.
        assert!(!qualifies(&t, &config, &q, 0, dept, &mut stats));

        let mut q2 = QueryGraph::new();
        q2.add_vertex(QueryVertex {
            labels: vec![student_l],
            bound: None,
            variable: None,
        });
        assert!(qualifies(&t, &config, &q2, 0, s1, &mut stats));
        assert!(!qualifies(&t, &config, &q2, 0, dept, &mut stats));
    }

    #[test]
    fn simple_entailment_restricts_labels() {
        // s1 gets type GraduateStudent, Student only via subClassOf closure.
        let mut ds = Dataset::new();
        ds.insert_iris(&ub("g1"), vocab::RDF_TYPE, &ub("GraduateStudent"));
        ds.insert_iris(
            &ub("GraduateStudent"),
            vocab::RDFS_SUBCLASSOF,
            &ub("Student"),
        );
        ds.insert_iris(&ub("g1"), &ub("memberOf"), &ub("dept1"));
        let t = type_aware_transform(&ds);
        let g1 = vid(&ds, &t, "g1");
        let student = vl(&ds, &t, "Student");
        let config_full = TurboHomConfig::default();
        let config_simple = TurboHomConfig {
            simple_entailment: true,
            ..TurboHomConfig::default()
        };
        assert!(satisfies_labels(&t, &config_full, g1, &[student]));
        assert!(!satisfies_labels(&t, &config_simple, g1, &[student]));
    }
}
