//! Per-execution counters.
//!
//! The paper's analysis (Section 3, Section 7.3) is driven by profiling the
//! two dominant phases — `ExploreCandidateRegion` and `SubgraphSearch` — and
//! by counting `IsJoinable` work. These counters expose the same quantities
//! so the ablation benches and the tests can verify *why* an optimization
//! helps, not just that elapsed time changed.

/// Counters collected during one query execution.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MatchStats {
    /// Number of starting data vertices considered (candidate regions tried).
    pub candidate_regions: usize,
    /// Number of candidate regions that were non-empty.
    pub nonempty_regions: usize,
    /// Total data vertices placed into candidate regions.
    pub candidate_vertices: usize,
    /// Data vertices visited during candidate-region exploration.
    pub explored_vertices: usize,
    /// Individual edge-existence probes performed by `IsJoinable`
    /// (the non-+INT path).
    pub isjoinable_probes: usize,
    /// k-way intersection operations performed by the +INT path.
    pub intersection_ops: usize,
    /// Recursive `SubgraphSearch` calls.
    pub search_recursions: usize,
    /// Candidate vertices rejected by the degree filter.
    pub degree_filtered: usize,
    /// Candidate vertices rejected by the NLF filter.
    pub nlf_filtered: usize,
    /// Matching orders computed (`+REUSE` keeps this at 1).
    pub matching_orders_computed: usize,
    /// Solutions rejected by cheap (inline) FILTERs.
    pub filtered_inline: usize,
    /// Solutions rejected by expensive (post-hoc) FILTERs.
    pub filtered_post: usize,
    /// Number of solutions reported.
    pub solutions: usize,
    /// Morsels (contiguous runs of candidate-region start vertices) executed
    /// by the work-stealing scheduler.
    pub morsels: usize,
    /// Morsels obtained by stealing from another worker's range.
    pub morsels_stolen: usize,
    /// Shards that actually executed the query (stays zero on the
    /// single-store path; the sharded coordinator sets it to the live-set
    /// size after summary pruning).
    pub shards_executed: usize,
    /// Shards skipped entirely by summary-graph pruning before any
    /// candidate-region computation ran.
    pub shards_pruned: usize,
}

impl MatchStats {
    /// Merges the counters of another execution slice (used when merging
    /// per-thread statistics).
    pub fn merge(&mut self, other: &MatchStats) {
        self.candidate_regions += other.candidate_regions;
        self.nonempty_regions += other.nonempty_regions;
        self.candidate_vertices += other.candidate_vertices;
        self.explored_vertices += other.explored_vertices;
        self.isjoinable_probes += other.isjoinable_probes;
        self.intersection_ops += other.intersection_ops;
        self.search_recursions += other.search_recursions;
        self.degree_filtered += other.degree_filtered;
        self.nlf_filtered += other.nlf_filtered;
        self.matching_orders_computed += other.matching_orders_computed;
        self.filtered_inline += other.filtered_inline;
        self.filtered_post += other.filtered_post;
        self.solutions += other.solutions;
        self.morsels += other.morsels;
        self.morsels_stolen += other.morsels_stolen;
        self.shards_executed += other.shards_executed;
        self.shards_pruned += other.shards_pruned;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = MatchStats {
            candidate_regions: 1,
            solutions: 2,
            isjoinable_probes: 3,
            ..MatchStats::default()
        };
        let b = MatchStats {
            candidate_regions: 10,
            solutions: 20,
            intersection_ops: 5,
            ..MatchStats::default()
        };
        a.merge(&b);
        assert_eq!(a.candidate_regions, 11);
        assert_eq!(a.solutions, 22);
        assert_eq!(a.isjoinable_probes, 3);
        assert_eq!(a.intersection_ops, 5);
    }

    #[test]
    fn default_is_all_zero() {
        let s = MatchStats::default();
        assert_eq!(s.candidate_regions, 0);
        assert_eq!(s.solutions, 0);
    }
}
