//! `DetermineMatchingOrder` (paper Section 2.2) plus the clause layout the
//! OPTIONAL strategy needs.
//!
//! Given the candidate counts of one region, the matching order is a
//! permutation of the query vertices such that
//!
//! 1. the query-tree parent of every vertex precedes it (so `CR(u, M(P(u)))`
//!    can be looked up during the search),
//! 2. among siblings, subtrees with fewer candidate vertices are matched
//!    first (the paper's "order query paths by the number of candidate
//!    vertices", which fails fast on the most selective paths),
//! 3. all *required* vertices precede all OPTIONAL-clause vertices, and each
//!    clause's vertices (together with its nested clauses) form one
//!    contiguous block — which is what lets `SubgraphSearch` fall back to a
//!    "clause nullified" continuation when a clause cannot be matched
//!    (Section 5.1).
//!
//! With the `+REUSE` optimization the order is computed for the first
//! non-empty candidate region only and reused for all others (Section 4.3).

use crate::candidate_region::CandidateRegion;
use crate::query_tree::QueryTree;
use turbohom_transform::TransformedQuery;

/// One OPTIONAL clause's contiguous block in the matching order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClauseBlock {
    /// The clause id (index into `TransformedQuery::clause_parents`).
    pub clause: usize,
    /// First position (inclusive) of the block in the order. The block also
    /// covers all nested clauses of this clause.
    pub start: usize,
    /// One past the last position of the block.
    pub end: usize,
}

/// The matching order for one (or, with `+REUSE`, every) candidate region.
#[derive(Debug, Clone)]
pub struct MatchingOrder {
    /// Query vertices in matching order (the root is first).
    pub order: Vec<usize>,
    /// Inverse permutation: `position[u]` is the index of `u` in `order`.
    pub position: Vec<usize>,
    /// The clause blocks, indexed by clause id.
    pub clause_blocks: Vec<ClauseBlock>,
    /// For each order position: `Some(clause)` if this position starts the
    /// block of `clause` (i.e. it is the outermost clause beginning here).
    pub clause_start_at: Vec<Option<usize>>,
}

impl MatchingOrder {
    /// Computes the matching order for `region`.
    pub fn determine(
        query: &TransformedQuery,
        tree: &QueryTree,
        region: &CandidateRegion,
    ) -> MatchingOrder {
        let n = query.graph.vertex_count();
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut placed = vec![false; n];

        // --- Phase A: required vertices, DFS over the tree, cheapest
        // subtree first.
        let subtree_cost = compute_subtree_costs(query, tree, region);
        place_required_dfs(
            query,
            tree,
            tree.root,
            &subtree_cost,
            &mut order,
            &mut placed,
        );

        // --- Phase B: optional clauses, clause forest in DFS order, each
        // clause contiguous and followed immediately by its nested clauses.
        let clause_count = query.clause_parents.len();
        let mut clause_children: Vec<Vec<usize>> = vec![Vec::new(); clause_count];
        let mut clause_roots: Vec<usize> = Vec::new();
        for (c, parent) in query.clause_parents.iter().enumerate() {
            match parent {
                Some(p) => clause_children[*p].push(c),
                None => clause_roots.push(c),
            }
        }
        let mut clause_blocks: Vec<ClauseBlock> = (0..clause_count)
            .map(|c| ClauseBlock {
                clause: c,
                start: 0,
                end: 0,
            })
            .collect();
        for &root_clause in &clause_roots {
            place_clause_dfs(
                query,
                tree,
                root_clause,
                &clause_children,
                &subtree_cost,
                &mut order,
                &mut placed,
                &mut clause_blocks,
            );
        }

        // --- Phase C: defensive sweep for anything not yet placed (vertices
        // unreachable from the root never appear; the engine rejects such
        // queries earlier).
        for u in tree.bfs_order.iter().copied() {
            if !placed[u] {
                placed[u] = true;
                order.push(u);
            }
        }

        let mut position = vec![usize::MAX; n];
        for (i, &u) in order.iter().enumerate() {
            position[u] = i;
        }
        let mut clause_start_at = vec![None; order.len()];
        // The *outermost* clause starting at a position wins (nested clauses
        // start inside their parent's block).
        for block in clause_blocks.iter().rev() {
            if block.end > block.start {
                clause_start_at[block.start] = Some(block.clause);
            }
        }

        MatchingOrder {
            order,
            position,
            clause_blocks,
            clause_start_at,
        }
    }

    /// The number of query vertices in the order.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` if the order is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// Total candidate count of the subtree rooted at every query vertex.
fn compute_subtree_costs(
    query: &TransformedQuery,
    tree: &QueryTree,
    region: &CandidateRegion,
) -> Vec<usize> {
    let n = query.graph.vertex_count();
    let mut cost = vec![0usize; n];
    // bfs_order is parent-before-child, so accumulate in reverse.
    for &u in tree.bfs_order.iter().rev() {
        let mut total = region.count(u).max(1);
        for &c in &tree.children[u] {
            total += cost[c];
        }
        cost[u] = total;
    }
    cost
}

/// DFS over the required part, visiting cheaper subtrees first.
fn place_required_dfs(
    query: &TransformedQuery,
    tree: &QueryTree,
    u: usize,
    subtree_cost: &[usize],
    order: &mut Vec<usize>,
    placed: &mut [bool],
) {
    if query.vertex_clause[u].is_some() || placed[u] {
        return;
    }
    placed[u] = true;
    order.push(u);
    let mut children: Vec<usize> = tree.children[u]
        .iter()
        .copied()
        .filter(|&c| query.vertex_clause[c].is_none())
        .collect();
    children.sort_by_key(|&c| subtree_cost[c]);
    for c in children {
        place_required_dfs(query, tree, c, subtree_cost, order, placed);
    }
}

/// Places one clause's vertices (respecting parent-before-child within the
/// already-placed prefix), then recurses into its nested clauses, recording
/// the block extent.
#[allow(clippy::too_many_arguments)]
fn place_clause_dfs(
    query: &TransformedQuery,
    tree: &QueryTree,
    clause: usize,
    clause_children: &[Vec<usize>],
    subtree_cost: &[usize],
    order: &mut Vec<usize>,
    placed: &mut [bool],
    blocks: &mut [ClauseBlock],
) {
    let start = order.len();
    // Vertices of exactly this clause, reachable from the root.
    let mut remaining: Vec<usize> = tree
        .bfs_order
        .iter()
        .copied()
        .filter(|&u| query.vertex_clause[u] == Some(clause) && !placed[u])
        .collect();
    // Repeatedly place a vertex whose tree parent is already placed,
    // preferring the cheapest subtree.
    while !remaining.is_empty() {
        remaining.sort_by_key(|&u| subtree_cost[u]);
        let next = remaining
            .iter()
            .position(|&u| tree.parent[u].map(|e| placed[e.parent]).unwrap_or(true));
        match next {
            Some(i) => {
                let u = remaining.remove(i);
                placed[u] = true;
                order.push(u);
            }
            None => {
                // Parent not placed yet (it lives in a clause processed
                // later); place anyway to guarantee termination — the engine
                // treats a missing parent mapping as "clause cannot match".
                let u = remaining.remove(0);
                placed[u] = true;
                order.push(u);
            }
        }
    }
    for &child in &clause_children[clause] {
        place_clause_dfs(
            query,
            tree,
            child,
            clause_children,
            subtree_cost,
            order,
            placed,
            blocks,
        );
    }
    blocks[clause] = ClauseBlock {
        clause,
        start,
        end: order.len(),
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TurboHomConfig;
    use crate::start_vertex;
    use crate::stats::MatchStats;
    use turbohom_rdf::{vocab, Dataset};
    use turbohom_sparql::parse_query;
    use turbohom_transform::{transform_query, type_aware_transform, TransformedGraph};

    fn ub(l: &str) -> String {
        format!("http://ub.org/{l}")
    }

    /// Figure 2-style data: a0 fans out to 10 X, 50 Y and 5 Z vertices.
    fn star_data() -> (Dataset, TransformedGraph) {
        let mut ds = Dataset::new();
        ds.insert_iris(&ub("a0"), vocab::RDF_TYPE, &ub("A"));
        for (class, count) in [("X", 10usize), ("Y", 50), ("Z", 5)] {
            for i in 0..count {
                let v = ub(&format!("{class}{i}"));
                ds.insert_iris(&v, vocab::RDF_TYPE, &ub(class));
                ds.insert_iris(&ub("a0"), &ub("edge"), &v);
            }
        }
        let t = type_aware_transform(&ds);
        (ds, t)
    }

    fn prepare(
        ds: &Dataset,
        t: &TransformedGraph,
        sparql: &str,
    ) -> (TransformedQuery, QueryTree, CandidateRegion) {
        let q = parse_query(sparql).unwrap();
        let tq = transform_query(&q.pattern, t, &ds.dictionary).unwrap();
        let config = TurboHomConfig::default();
        let mut stats = MatchStats::default();
        let sel = start_vertex::choose_start_vertex(t, &config, &tq, &mut stats);
        let tree = QueryTree::build(&tq.graph, sel.query_vertex);
        let region = crate::candidate_region::explore_candidate_region(
            t,
            &config,
            &tq,
            &tree,
            sel.start_vertices[0],
            &mut stats,
        )
        .expect("non-empty region");
        (tq, tree, region)
    }

    #[test]
    fn cheapest_path_is_matched_first() {
        let (ds, t) = star_data();
        let (tq, tree, region) = prepare(
            &ds,
            &t,
            r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
               PREFIX ub: <http://ub.org/>
               SELECT ?a ?x ?y ?z WHERE {
                 ?a rdf:type ub:A . ?x rdf:type ub:X . ?y rdf:type ub:Y . ?z rdf:type ub:Z .
                 ?a ub:edge ?x . ?a ub:edge ?y . ?a ub:edge ?z .
               }"#,
        );
        let order = MatchingOrder::determine(&tq, &tree, &region);
        assert_eq!(order.len(), 4);
        // Root first, then Z (5 candidates), X (10), Y (50) — the paper's
        // < u0, u3, u1, u2 > order of Figure 2.
        let names: Vec<&str> = order
            .order
            .iter()
            .map(|&u| tq.graph.vertex(u).variable.as_deref().unwrap())
            .collect();
        assert_eq!(names, vec!["a", "z", "x", "y"]);
        // position[] is the inverse permutation.
        for (i, &u) in order.order.iter().enumerate() {
            assert_eq!(order.position[u], i);
        }
        assert_eq!(tree.root, order.order[0]);
    }

    #[test]
    fn parent_always_precedes_child() {
        let (ds, t) = star_data();
        let (tq, tree, region) = prepare(
            &ds,
            &t,
            r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
               PREFIX ub: <http://ub.org/>
               SELECT ?a ?x WHERE { ?a rdf:type ub:A . ?x rdf:type ub:X . ?a ub:edge ?x . }"#,
        );
        let order = MatchingOrder::determine(&tq, &tree, &region);
        for &u in &order.order {
            if let Some(edge) = tree.parent[u] {
                assert!(order.position[edge.parent] < order.position[u]);
            }
        }
    }

    #[test]
    fn optional_vertices_come_last_in_contiguous_blocks() {
        let mut ds = Dataset::new();
        ds.insert_iris(&ub("p1"), vocab::RDF_TYPE, &ub("Product"));
        ds.insert_iris(&ub("p1"), &ub("price"), &ub("v100"));
        ds.insert_iris(&ub("p1"), &ub("rating"), &ub("v5"));
        ds.insert_iris(&ub("p1"), &ub("homepage"), &ub("hp"));
        let t = type_aware_transform(&ds);
        let (tq, tree, region) = prepare(
            &ds,
            &t,
            r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
               PREFIX ub: <http://ub.org/>
               SELECT ?price ?r ?h WHERE {
                 ?p rdf:type ub:Product . ?p ub:price ?price .
                 OPTIONAL { ?p ub:rating ?r . OPTIONAL { ?p ub:homepage ?h . } }
               }"#,
        );
        let order = MatchingOrder::determine(&tq, &tree, &region);
        // Query vertices: ?p, ?price, ?r, ?h (the type triple is folded).
        assert_eq!(order.len(), 4);
        // The first positions are required, the rest optional.
        let clauses_in_order: Vec<Option<usize>> =
            order.order.iter().map(|&u| tq.vertex_clause[u]).collect();
        let first_optional = clauses_in_order.iter().position(|c| c.is_some()).unwrap();
        assert!(clauses_in_order[..first_optional]
            .iter()
            .all(|c| c.is_none()));
        assert!(clauses_in_order[first_optional..]
            .iter()
            .all(|c| c.is_some()));
        // Clause blocks: clause 0 (rating) spans its own vertex and the
        // nested clause 1 (homepage); clause 1 is nested inside it.
        let b0 = order.clause_blocks[0];
        let b1 = order.clause_blocks[1];
        assert_eq!(b0.start, first_optional);
        assert_eq!(b0.end, order.len());
        assert!(b1.start >= b0.start && b1.end <= b0.end);
        assert_eq!(order.clause_start_at[b0.start], Some(0));
        // The nested block does not own the outer start position.
        if b1.start != b0.start {
            assert_eq!(order.clause_start_at[b1.start], Some(1));
        }
    }

    #[test]
    fn sibling_clauses_get_disjoint_blocks() {
        let mut ds = Dataset::new();
        ds.insert_iris(&ub("p1"), vocab::RDF_TYPE, &ub("Product"));
        ds.insert_iris(&ub("p1"), &ub("price"), &ub("v100"));
        ds.insert_iris(&ub("p1"), &ub("rating"), &ub("v5"));
        ds.insert_iris(&ub("p1"), &ub("homepage"), &ub("hp"));
        let t = type_aware_transform(&ds);
        let (tq, tree, region) = prepare(
            &ds,
            &t,
            r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
               PREFIX ub: <http://ub.org/>
               SELECT ?price ?r ?h WHERE {
                 ?p rdf:type ub:Product . ?p ub:price ?price .
                 OPTIONAL { ?p ub:rating ?r . }
                 OPTIONAL { ?p ub:homepage ?h . }
               }"#,
        );
        let order = MatchingOrder::determine(&tq, &tree, &region);
        let b0 = order.clause_blocks[0];
        let b1 = order.clause_blocks[1];
        assert!(
            b0.end <= b1.start || b1.end <= b0.start,
            "blocks overlap: {b0:?} {b1:?}"
        );
        assert_eq!(b0.end - b0.start, 1);
        assert_eq!(b1.end - b1.start, 1);
    }
}
