//! Match results: solutions and their rendering helpers.

use crate::stats::MatchStats;
use turbohom_graph::{ELabel, VertexId};

/// One e-graph homomorphism: the data vertex assigned to every query vertex
/// (by query-vertex index) plus the edge label chosen for every query edge
/// that carries a variable predicate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Solution {
    /// `vertices[i]` is the data vertex matched to query vertex `i`, or
    /// `None` when the vertex belongs to an OPTIONAL clause that did not
    /// match (Section 5.1's nullified mapping).
    pub vertices: Vec<Option<VertexId>>,
    /// `edge_labels[j]` is the edge label assigned to query edge `j` by the
    /// `Me` mapping of Definition 2. It is `Some` only for edges whose
    /// predicate is a variable and whose endpoints are both bound.
    pub edge_labels: Vec<Option<ELabel>>,
}

impl Solution {
    /// Creates a solution with the given vertex assignment and no
    /// variable-predicate assignments.
    pub fn from_vertices(vertices: Vec<Option<VertexId>>, edge_count: usize) -> Self {
        Solution {
            vertices,
            edge_labels: vec![None; edge_count],
        }
    }

    /// The number of bound (non-null) query vertices.
    pub fn bound_count(&self) -> usize {
        self.vertices.iter().filter(|v| v.is_some()).count()
    }
}

/// The outcome of one query execution.
#[derive(Debug, Clone, Default)]
pub struct MatchResult {
    /// The solutions, unless the engine ran in count-only mode.
    pub solutions: Vec<Solution>,
    /// The number of solutions found (equals `solutions.len()` unless
    /// count-only mode was enabled).
    pub solution_count: usize,
    /// Execution counters.
    pub stats: MatchStats,
    /// Per matching-order position: how many partial mappings were extended
    /// at that step (the "rows produced" of each step, summed across regions
    /// and workers). Empty when the search never ran.
    pub step_rows: Vec<u64>,
    /// Per matching-order position: the candidate-count estimates that
    /// justified the order (`|CR(u)|` summed over all explored regions).
    /// Same length as [`step_rows`](MatchResult::step_rows); EXPLAIN/ANALYZE
    /// computes its per-step q-error from these two.
    pub step_estimates: Vec<u64>,
}

impl MatchResult {
    /// Number of solutions found.
    pub fn len(&self) -> usize {
        self.solution_count
    }

    /// Returns `true` if no solution was found.
    pub fn is_empty(&self) -> bool {
        self.solution_count == 0
    }
}

/// Elementwise accumulation of per-step counters, growing `dst` as needed
/// (the merge sites of the sequential and parallel run paths share it).
pub fn merge_step_counts(dst: &mut Vec<u64>, src: &[u64]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_count_ignores_nulls() {
        let s = Solution::from_vertices(vec![Some(VertexId(1)), None, Some(VertexId(3))], 2);
        assert_eq!(s.bound_count(), 2);
        assert_eq!(s.edge_labels.len(), 2);
    }

    #[test]
    fn result_len_tracks_solution_count() {
        let mut r = MatchResult::default();
        assert!(r.is_empty());
        r.solutions
            .push(Solution::from_vertices(vec![Some(VertexId(0))], 0));
        r.solution_count = 1;
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn step_counts_merge_elementwise_and_grow() {
        let mut dst = vec![1, 2];
        merge_step_counts(&mut dst, &[10, 20, 30]);
        assert_eq!(dst, vec![11, 22, 30]);
        merge_step_counts(&mut dst, &[]);
        assert_eq!(dst, vec![11, 22, 30]);
        let mut empty = Vec::new();
        merge_step_counts(&mut empty, &[5]);
        assert_eq!(empty, vec![5]);
    }
}
