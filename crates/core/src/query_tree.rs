//! `WriteQueryTree` (paper Section 2.2).
//!
//! The query graph is turned into a breadth-first spanning tree rooted at
//! the starting query vertex. Tree edges drive `ExploreCandidateRegion`
//! (candidates of a child are found in the adjacency of its parent's match);
//! the remaining *non-tree* edges become the `IsJoinable` checks of
//! `SubgraphSearch`.

use turbohom_graph::{Direction, QueryGraph};

/// The tree edge connecting a query vertex to its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeEdge {
    /// The parent query vertex.
    pub parent: usize,
    /// The query-graph edge index realizing the connection.
    pub edge: usize,
    /// The direction to traverse in the **data** graph when standing on the
    /// parent's matched vertex and looking for candidates of the child:
    /// `Outgoing` if the query edge runs parent → child, `Incoming` otherwise.
    pub direction: Direction,
}

/// The BFS query tree plus the non-tree edges.
#[derive(Debug, Clone)]
pub struct QueryTree {
    /// The root (starting query vertex).
    pub root: usize,
    /// `parent[u]` is the tree edge to `u`'s parent; `None` for the root and
    /// for vertices unreachable from the root.
    pub parent: Vec<Option<TreeEdge>>,
    /// Children of every vertex, in discovery order.
    pub children: Vec<Vec<usize>>,
    /// All vertices reachable from the root, in BFS order (root first).
    pub bfs_order: Vec<usize>,
    /// Indices of query edges that are **not** tree edges (including self
    /// loops). These drive `IsJoinable`.
    pub non_tree_edges: Vec<usize>,
}

impl QueryTree {
    /// Builds the BFS tree of `query` rooted at `root`.
    pub fn build(query: &QueryGraph, root: usize) -> QueryTree {
        let n = query.vertex_count();
        let mut parent: Vec<Option<TreeEdge>> = vec![None; n];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut visited = vec![false; n];
        let mut tree_edge_used = vec![false; query.edge_count()];
        let mut bfs_order = Vec::with_capacity(n);
        let mut queue = std::collections::VecDeque::new();

        visited[root] = true;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            bfs_order.push(u);
            for (other, ei, dir) in query.neighbors(u) {
                if other == u {
                    continue; // self loops are never tree edges
                }
                if !visited[other] {
                    visited[other] = true;
                    tree_edge_used[ei] = true;
                    parent[other] = Some(TreeEdge {
                        parent: u,
                        edge: ei,
                        direction: dir,
                    });
                    children[u].push(other);
                    queue.push_back(other);
                }
            }
        }

        let non_tree_edges = (0..query.edge_count())
            .filter(|&ei| !tree_edge_used[ei])
            .collect();

        QueryTree {
            root,
            parent,
            children,
            bfs_order,
            non_tree_edges,
        }
    }

    /// Returns `true` if every query vertex is reachable from the root.
    pub fn spans(&self, query: &QueryGraph) -> bool {
        self.bfs_order.len() == query.vertex_count()
    }

    /// The tree depth of vertex `u` (root = 0). Vertices not reachable from
    /// the root return `None`.
    pub fn depth(&self, u: usize) -> Option<usize> {
        if u == self.root {
            return Some(0);
        }
        let mut depth = 0usize;
        let mut current = u;
        while let Some(edge) = self.parent[current] {
            depth += 1;
            current = edge.parent;
            if current == self.root {
                return Some(depth);
            }
            if depth > self.parent.len() {
                return None; // defensive: malformed tree
            }
        }
        None
    }

    /// The non-tree edges incident to `u`, as `(edge index, direction from u)`.
    pub fn non_tree_edges_of<'a>(
        &'a self,
        query: &'a QueryGraph,
        u: usize,
    ) -> impl Iterator<Item = (usize, Direction)> + 'a {
        self.non_tree_edges.iter().filter_map(move |&ei| {
            let e = query.edge(ei);
            if e.from == u {
                Some((ei, Direction::Outgoing))
            } else if e.to == u {
                Some((ei, Direction::Incoming))
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbohom_graph::{ELabel, QueryEdge, QueryVertex, VLabel};

    /// The triangle query of Figure 8: u0 -a-> u1, u0 -b-> u2, u2 -c-> u1.
    fn triangle() -> QueryGraph {
        let mut q = QueryGraph::new();
        for i in 0..3u32 {
            q.add_vertex(QueryVertex::variable(format!("v{i}"), vec![VLabel(i)]));
        }
        q.add_edge(QueryEdge {
            from: 0,
            to: 1,
            label: Some(ELabel(0)),
            variable: None,
        });
        q.add_edge(QueryEdge {
            from: 0,
            to: 2,
            label: Some(ELabel(1)),
            variable: None,
        });
        q.add_edge(QueryEdge {
            from: 2,
            to: 1,
            label: Some(ELabel(2)),
            variable: None,
        });
        q
    }

    #[test]
    fn triangle_from_u0_has_one_non_tree_edge() {
        let q = triangle();
        let t = QueryTree::build(&q, 0);
        assert_eq!(t.root, 0);
        assert!(t.spans(&q));
        assert_eq!(t.bfs_order, vec![0, 1, 2]);
        assert_eq!(t.non_tree_edges, vec![2]);
        assert_eq!(t.children[0], vec![1, 2]);
        let p1 = t.parent[1].unwrap();
        assert_eq!(p1.parent, 0);
        assert_eq!(p1.direction, Direction::Outgoing);
    }

    #[test]
    fn triangle_from_u1_orients_tree_edges_correctly() {
        let q = triangle();
        let t = QueryTree::build(&q, 1);
        assert!(t.spans(&q));
        // u1 has only incoming edges, so both children are reached over
        // Incoming tree edges.
        for &child in &t.children[1] {
            assert_eq!(t.parent[child].unwrap().direction, Direction::Incoming);
        }
        assert_eq!(t.non_tree_edges.len(), 1);
    }

    #[test]
    fn star_query_has_no_non_tree_edges() {
        // Figure 2 query: u0 connected to u1, u2, u3.
        let mut q = QueryGraph::new();
        for i in 0..4 {
            q.add_vertex(QueryVertex::variable(format!("v{i}"), vec![]));
        }
        for i in 1..4 {
            q.add_edge(QueryEdge {
                from: 0,
                to: i,
                label: Some(ELabel(0)),
                variable: None,
            });
        }
        let t = QueryTree::build(&q, 0);
        assert!(t.non_tree_edges.is_empty());
        assert_eq!(t.children[0].len(), 3);
        assert_eq!(t.depth(0), Some(0));
        assert_eq!(t.depth(3), Some(1));
    }

    #[test]
    fn depth_follows_parent_chain() {
        // Path query: 0 → 1 → 2 → 3.
        let mut q = QueryGraph::new();
        for i in 0..4 {
            q.add_vertex(QueryVertex::variable(format!("v{i}"), vec![]));
        }
        for i in 0..3 {
            q.add_edge(QueryEdge {
                from: i,
                to: i + 1,
                label: Some(ELabel(0)),
                variable: None,
            });
        }
        let t = QueryTree::build(&q, 0);
        assert_eq!(t.depth(3), Some(3));
        let t2 = QueryTree::build(&q, 3);
        assert_eq!(t2.depth(0), Some(3));
        assert_eq!(t2.parent[2].unwrap().direction, Direction::Incoming);
    }

    #[test]
    fn self_loop_is_a_non_tree_edge() {
        let mut q = QueryGraph::new();
        q.add_vertex(QueryVertex::blank());
        q.add_edge(QueryEdge {
            from: 0,
            to: 0,
            label: Some(ELabel(0)),
            variable: None,
        });
        let t = QueryTree::build(&q, 0);
        assert!(t.spans(&q));
        assert_eq!(t.non_tree_edges, vec![0]);
    }

    #[test]
    fn disconnected_query_does_not_span() {
        let mut q = QueryGraph::new();
        q.add_vertex(QueryVertex::blank());
        q.add_vertex(QueryVertex::blank());
        let t = QueryTree::build(&q, 0);
        assert!(!t.spans(&q));
        assert_eq!(t.bfs_order, vec![0]);
        assert_eq!(t.depth(1), None);
    }

    #[test]
    fn non_tree_edges_of_reports_direction_per_endpoint() {
        let q = triangle();
        let t = QueryTree::build(&q, 0);
        let of_u2: Vec<_> = t.non_tree_edges_of(&q, 2).collect();
        assert_eq!(of_u2, vec![(2, Direction::Outgoing)]);
        let of_u1: Vec<_> = t.non_tree_edges_of(&q, 1).collect();
        assert_eq!(of_u1, vec![(2, Direction::Incoming)]);
        let of_u0: Vec<_> = t.non_tree_edges_of(&q, 0).collect();
        assert!(of_u0.is_empty());
    }
}
