//! `SubgraphSearch` with `IsJoinable` (paper Algorithm 2, Section 4.3 +INT,
//! Section 5.1 OPTIONAL handling).
//!
//! The searcher enumerates e-graph homomorphisms (or subgraph isomorphisms)
//! by extending a partial mapping along the matching order. At each step the
//! candidates come from the candidate region (`CR(u, M(P(u)))`); non-tree
//! edges to already-matched query vertices are verified by `IsJoinable`,
//! either per candidate (binary-search probes) or — with the `+INT`
//! optimization — as one k-way sorted intersection between the candidate
//! list and the relevant adjacency lists.
//!
//! OPTIONAL clauses occupy contiguous blocks at the end of the matching
//! order. When the block of a clause cannot produce any solution under the
//! current partial mapping, the searcher "nullifies" the clause — skips past
//! the whole block with those query vertices unbound — which implements the
//! left-join semantics of SPARQL OPTIONAL (the paper's
//! nullify-and-keep-searching strategy).

use crate::candidate_region::CandidateRegion;
use crate::config::{MatchSemantics, TurboHomConfig};
use crate::matching_order::MatchingOrder;
use crate::query_tree::QueryTree;
use crate::result::Solution;
use crate::stats::MatchStats;
use std::collections::HashSet;
use turbohom_graph::{ops, Direction, ELabel, VertexId};
use turbohom_rdf::{Dictionary, Term};
use turbohom_sparql::{EvalContext, Expression};
use turbohom_transform::{TransformedGraph, TransformedQuery};

/// A non-tree-edge constraint against an already matched query vertex.
struct JoinConstraint {
    /// The data vertex the other endpoint is matched to.
    matched: VertexId,
    /// Direction to traverse from `matched` toward the current candidate.
    direction: Direction,
    /// Edge label (None = variable predicate: any edge suffices).
    label: Option<ELabel>,
}

/// The per-execution (per-thread) search state.
pub struct SubgraphSearcher<'a> {
    data: &'a TransformedGraph,
    config: &'a TurboHomConfig,
    query: &'a TransformedQuery,
    tree: &'a QueryTree,
    order: &'a MatchingOrder,
    dictionary: &'a Dictionary,
    /// Cheap filters applied when the keyed query vertex gets bound.
    inline_filters: Vec<Vec<&'a Expression>>,
    mapping: Vec<Option<VertexId>>,
    used: HashSet<VertexId>,
    /// Collected solutions (empty in count-only mode).
    pub solutions: Vec<Solution>,
    /// Number of solutions found (also counts in count-only mode).
    pub solution_count: usize,
    /// Execution counters.
    pub stats: MatchStats,
    /// Per matching-order position: how many candidates were successfully
    /// bound at that step (the ANALYZE "rows per step" actuals).
    pub step_rows: Vec<u64>,
    limit_reached: bool,
    /// Per-depth candidate buffers, reused across recursions so the +INT hot
    /// path does not allocate a fresh result vector per extension step.
    depth_buffers: Vec<Vec<VertexId>>,
    /// Ping-pong scratch for [`ops::intersect_k_into`]; only used between
    /// recursions, so one buffer serves every depth.
    scratch: Vec<VertexId>,
}

impl<'a> SubgraphSearcher<'a> {
    /// Creates a searcher. `inline_filters` must contain, for every query
    /// vertex, the cheap FILTER expressions to evaluate as soon as that
    /// vertex is bound (the engine computes this split).
    pub fn new(
        data: &'a TransformedGraph,
        config: &'a TurboHomConfig,
        query: &'a TransformedQuery,
        tree: &'a QueryTree,
        order: &'a MatchingOrder,
        dictionary: &'a Dictionary,
        inline_filters: Vec<Vec<&'a Expression>>,
    ) -> Self {
        let n = query.graph.vertex_count();
        debug_assert_eq!(inline_filters.len(), n);
        SubgraphSearcher {
            data,
            config,
            query,
            tree,
            order,
            dictionary,
            inline_filters,
            mapping: vec![None; n],
            used: HashSet::new(),
            solutions: Vec::new(),
            solution_count: 0,
            stats: MatchStats::default(),
            step_rows: vec![0; order.len()],
            limit_reached: false,
            depth_buffers: vec![Vec::new(); n],
            scratch: Vec::new(),
        }
    }

    /// Returns `true` once the configured solution limit has been hit.
    pub fn limit_reached(&self) -> bool {
        self.limit_reached
    }

    /// Runs the search over one candidate region whose starting data vertex
    /// is `start`. The matching-order root is bound to `start` and the
    /// remaining vertices are enumerated.
    pub fn search_region(&mut self, region: &CandidateRegion, start: VertexId) {
        if self.limit_reached {
            return;
        }
        let root = self.order.order[0];
        debug_assert_eq!(root, self.tree.root);
        if !self.inline_filters_pass(root, start) {
            self.stats.filtered_inline += 1;
            return;
        }
        self.mapping[root] = Some(start);
        self.step_rows[0] += 1;
        if self.config.semantics == MatchSemantics::Isomorphism {
            self.used.insert(start);
        }
        self.search(region, 1);
        self.mapping[root] = None;
        self.used.remove(&start);
    }

    /// Recursive search starting at matching-order position `depth`.
    /// Returns the number of solutions reported in this subtree.
    fn search(&mut self, region: &CandidateRegion, depth: usize) -> usize {
        if self.limit_reached {
            return 0;
        }
        if depth >= self.order.len() {
            return self.report();
        }
        self.stats.search_recursions += 1;

        if let Some(clause) = self.order.clause_start_at[depth] {
            // Entering an OPTIONAL clause block: try to match it; if nothing
            // can be produced, nullify the whole block (including nested
            // clauses) and continue after it.
            let emitted = self.extend_vertex(region, depth);
            if emitted > 0 || self.limit_reached {
                return emitted;
            }
            let block = self.order.clause_blocks[clause];
            return self.search(region, block.end);
        }
        self.extend_vertex(region, depth)
    }

    /// Extends the partial mapping at position `depth` with every qualifying
    /// candidate. Returns the number of solutions reported below.
    fn extend_vertex(&mut self, region: &CandidateRegion, depth: usize) -> usize {
        let u = self.order.order[depth];
        let Some(tree_edge) = self.tree.parent[u] else {
            // Only the root has no parent, and the root is bound before the
            // recursion starts; reaching here means the order is degenerate.
            return 0;
        };
        let Some(parent_vertex) = self.mapping[tree_edge.parent] else {
            // Parent nullified (enclosing OPTIONAL clause failed): this
            // vertex cannot be matched either.
            return 0;
        };

        let base: &[VertexId] = region.candidates(u, parent_vertex);
        if base.is_empty() {
            return 0;
        }

        // Gather the IsJoinable constraints: non-tree edges from u to
        // query vertices already bound in the current prefix.
        let mut constraints: Vec<JoinConstraint> = Vec::new();
        let mut self_loop_labels: Vec<Option<ELabel>> = Vec::new();
        for (ei, dir_from_u) in self.tree.non_tree_edges_of(&self.query.graph, u) {
            let e = self.query.graph.edge(ei);
            let other = if e.from == u { e.to } else { e.from };
            if other == u {
                self_loop_labels.push(e.label);
                continue;
            }
            if self.order.position[other] < depth {
                if let Some(w) = self.mapping[other] {
                    constraints.push(JoinConstraint {
                        matched: w,
                        direction: dir_from_u.reverse(),
                        label: e.label,
                    });
                }
                // A nullified other endpoint imposes no constraint.
            }
        }

        // Candidate narrowing: with +INT intersect the candidate list with
        // every constraint adjacency list at once; without it, probe each
        // candidate against each constraint individually. The result lands in
        // the pooled per-depth buffer, which survives the recursion below and
        // is returned to the pool at the end.
        let mut candidates: Vec<VertexId> = std::mem::take(&mut self.depth_buffers[depth]);
        if self.config.optimizations.intersection_joinable && !constraints.is_empty() {
            self.stats.intersection_ops += 1;
            let u_labels = &self.query.graph.vertex(u).labels;
            let mut owned: Vec<Vec<VertexId>> = Vec::new();
            let mut slices: Vec<&[VertexId]> = vec![base];
            for c in &constraints {
                match c.label {
                    Some(el) => {
                        if u_labels.len() == 1 {
                            slices.push(self.data.graph.neighbors_typed(
                                c.matched,
                                c.direction,
                                el,
                                u_labels[0],
                            ));
                        } else {
                            slices.push(self.data.graph.neighbors(c.matched, c.direction, el));
                        }
                    }
                    None => {
                        owned.push(self.data.graph.all_neighbors(c.matched, c.direction));
                    }
                }
            }
            for o in &owned {
                slices.push(o.as_slice());
            }
            let mut scratch = std::mem::take(&mut self.scratch);
            ops::intersect_k_into(&slices, &mut candidates, &mut scratch);
            self.scratch = scratch;
        } else {
            candidates.clear();
            candidates.extend_from_slice(base);
        }

        let mut emitted = 0usize;
        for &v in &candidates {
            if self.limit_reached {
                break;
            }
            // Injectivity (subgraph isomorphism only).
            if self.config.semantics == MatchSemantics::Isomorphism && self.used.contains(&v) {
                continue;
            }
            // IsJoinable probes (only needed when +INT did not already narrow).
            if !self.config.optimizations.intersection_joinable && !constraints.is_empty() {
                let mut ok = true;
                for c in &constraints {
                    self.stats.isjoinable_probes += 1;
                    if !self.edge_exists(c.matched, c.direction, c.label, v) {
                        ok = false;
                        break;
                    }
                }
                if !ok {
                    continue;
                }
            }
            // Self loops require an edge v → v.
            if !self_loop_labels.iter().all(|label| match label {
                Some(el) => self.data.graph.has_edge(v, v, *el),
                None => !self.data.graph.edge_labels_between(v, v).is_empty(),
            }) {
                continue;
            }
            // Cheap inline filters.
            if !self.inline_filters_pass(u, v) {
                self.stats.filtered_inline += 1;
                continue;
            }

            self.mapping[u] = Some(v);
            self.step_rows[depth] += 1;
            if self.config.semantics == MatchSemantics::Isomorphism {
                self.used.insert(v);
            }
            emitted += self.search(region, depth + 1);
            self.mapping[u] = None;
            self.used.remove(&v);
        }
        self.depth_buffers[depth] = candidates;
        emitted
    }

    /// One `IsJoinable` probe: is there an edge between `from` (an already
    /// matched data vertex) and `candidate`, in `direction` as seen from
    /// `from`, carrying `label` (or any label when `None`)?
    fn edge_exists(
        &self,
        from: VertexId,
        direction: Direction,
        label: Option<ELabel>,
        candidate: VertexId,
    ) -> bool {
        match label {
            Some(el) => {
                ops::contains_sorted(self.data.graph.neighbors(from, direction, el), candidate)
            }
            None => {
                let (s, o) = match direction {
                    Direction::Outgoing => (from, candidate),
                    Direction::Incoming => (candidate, from),
                };
                !self.data.graph.edge_labels_between(s, o).is_empty()
            }
        }
    }

    /// Evaluates the cheap filters registered for query vertex `u` against
    /// the candidate data vertex `v`.
    fn inline_filters_pass(&self, u: usize, v: VertexId) -> bool {
        let filters = &self.inline_filters[u];
        if filters.is_empty() {
            return true;
        }
        let Some(var) = &self.query.graph.vertex(u).variable else {
            return true;
        };
        let Some(term) = self.term_of(v) else {
            return true;
        };
        let mut ctx = EvalContext::new();
        ctx.insert(var.clone(), term);
        filters.iter().all(|f| f.evaluate_bool(&ctx))
    }

    fn term_of(&self, v: VertexId) -> Option<Term> {
        self.data
            .mappings
            .term_of_vertex(v)
            .and_then(|tid| self.dictionary.term(tid))
    }

    /// Reports the current complete mapping as one or more solutions
    /// (one per combination of edge labels for variable-predicate edges).
    /// Returns the number of solutions emitted.
    fn report(&mut self) -> usize {
        // Resolve the Me mapping for variable-predicate edges.
        let mut variable_edges: Vec<(usize, Vec<ELabel>)> = Vec::new();
        for (ei, e) in self.query.graph.edges().iter().enumerate() {
            if e.label.is_none() {
                if let (Some(s), Some(o)) = (self.mapping[e.from], self.mapping[e.to]) {
                    let labels = self.data.graph.edge_labels_between(s, o);
                    if labels.is_empty() {
                        // Defensive: the search guaranteed at least one edge.
                        return 0;
                    }
                    variable_edges.push((ei, labels));
                }
            }
        }
        let combinations: usize = variable_edges
            .iter()
            .map(|(_, l)| l.len())
            .product::<usize>()
            .max(1);

        let remaining = self
            .config
            .max_solutions
            .map(|m| m.saturating_sub(self.solution_count))
            .unwrap_or(usize::MAX);
        let to_emit = combinations.min(remaining);
        if to_emit < combinations || remaining == 0 {
            self.limit_reached = true;
        }
        if to_emit == 0 {
            return 0;
        }

        self.solution_count += to_emit;
        self.stats.solutions += to_emit;
        if self
            .config
            .max_solutions
            .is_some_and(|m| self.solution_count >= m)
        {
            self.limit_reached = true;
        }
        if self.config.count_only {
            return to_emit;
        }

        // Materialize the solutions (cartesian product over variable edges).
        let edge_count = self.query.graph.edge_count();
        let mut emitted = 0usize;
        let mut indices = vec![0usize; variable_edges.len()];
        loop {
            if emitted >= to_emit {
                break;
            }
            let mut sol = Solution::from_vertices(self.mapping.clone(), edge_count);
            for (slot, (ei, labels)) in variable_edges.iter().enumerate() {
                sol.edge_labels[*ei] = Some(labels[indices[slot]]);
            }
            self.solutions.push(sol);
            emitted += 1;
            // Advance the mixed-radix counter.
            let mut advanced = false;
            for slot in (0..indices.len()).rev() {
                indices[slot] += 1;
                if indices[slot] < variable_edges[slot].1.len() {
                    advanced = true;
                    break;
                }
                indices[slot] = 0;
            }
            if !advanced {
                break;
            }
        }
        to_emit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate_region::explore_candidate_region;
    use crate::config::Optimizations;
    use crate::start_vertex::choose_start_vertex;
    use turbohom_rdf::{vocab, Dataset};
    use turbohom_sparql::parse_query;
    use turbohom_transform::{transform_query, type_aware_transform};

    fn ub(l: &str) -> String {
        format!("http://ub.org/{l}")
    }

    /// Runs a full (single-region-at-a-time) search and returns the results.
    fn run(
        ds: &Dataset,
        data: &TransformedGraph,
        sparql: &str,
        config: &TurboHomConfig,
    ) -> (usize, Vec<Solution>, MatchStats) {
        let q = parse_query(sparql).unwrap();
        let tq = transform_query(&q.pattern, data, &ds.dictionary).unwrap();
        assert!(!tq.unsatisfiable, "query should be satisfiable");
        let mut stats = MatchStats::default();
        let sel = choose_start_vertex(data, config, &tq, &mut stats);
        let tree = QueryTree::build(&tq.graph, sel.query_vertex);
        let inline = vec![Vec::new(); tq.graph.vertex_count()];
        let mut total = 0usize;
        let mut solutions = Vec::new();
        let mut order: Option<MatchingOrder> = None;
        for &start in &sel.start_vertices {
            stats.candidate_regions += 1;
            let Some(region) =
                explore_candidate_region(data, config, &tq, &tree, start, &mut stats)
            else {
                continue;
            };
            stats.nonempty_regions += 1;
            if order.is_none() || !config.optimizations.reuse_matching_order {
                order = Some(MatchingOrder::determine(&tq, &tree, &region));
                stats.matching_orders_computed += 1;
            }
            let o = order.as_ref().unwrap();
            let mut searcher =
                SubgraphSearcher::new(data, config, &tq, &tree, o, &ds.dictionary, inline.clone());
            searcher.search_region(&region, start);
            total += searcher.solution_count;
            solutions.extend(searcher.solutions);
            stats.merge(&searcher.stats);
            if config.max_solutions.is_some_and(|m| total >= m) {
                break;
            }
        }
        (total, solutions, stats)
    }

    /// The worked example of paper Figure 1: the query q1 has exactly one
    /// subgraph isomorphism and three e-graph homomorphisms in g1.
    fn figure1_dataset() -> Dataset {
        let mut ds = Dataset::new();
        // Vertex labels: v0{A}, v1{B}, v2{A,D}, v3{B}, v4{C}, v5{C,E}.
        let types = [
            ("v0", vec!["A"]),
            ("v1", vec!["B"]),
            ("v2", vec!["A", "D"]),
            ("v3", vec!["B"]),
            ("v4", vec!["C"]),
            ("v5", vec!["C", "E"]),
        ];
        for (v, ts) in types {
            for t in ts {
                ds.insert_iris(&ub(v), vocab::RDF_TYPE, &ub(t));
            }
        }
        // Edges: v0-a->v1, v0-b->v4, v2-a->v1, v2-a->v3, v3-c->v4, v3-c->v5, v2-b->v5.
        for (s, p, o) in [
            ("v0", "a", "v1"),
            ("v0", "b", "v4"),
            ("v2", "a", "v1"),
            ("v2", "a", "v3"),
            ("v3", "c", "v4"),
            ("v3", "c", "v5"),
            ("v2", "b", "v5"),
        ] {
            ds.insert_iris(&ub(s), &ub(p), &ub(o));
        }
        ds
    }

    /// Figure 1 query q1: u0{A} -a-> u1{_}; u2{A} -a-> u1; u2 -a-> u3{B};
    /// u3 -c-> u4{C}; u0 -b-> u4.
    const FIGURE1_QUERY: &str = r#"
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        PREFIX ub: <http://ub.org/>
        SELECT * WHERE {
            ?u0 rdf:type ub:A . ?u2 rdf:type ub:A . ?u3 rdf:type ub:B . ?u4 rdf:type ub:C .
            ?u0 ub:a ?u1 . ?u2 ub:a ?u1 . ?u2 ub:a ?u3 . ?u3 ub:c ?u4 . ?u0 ub:b ?u4 .
        }"#;

    #[test]
    fn figure1_homomorphism_finds_three_solutions() {
        let ds = figure1_dataset();
        let data = type_aware_transform(&ds);
        let (count, solutions, _) = run(&ds, &data, FIGURE1_QUERY, &TurboHomConfig::default());
        assert_eq!(count, 3);
        assert_eq!(solutions.len(), 3);
        // All solutions are distinct.
        let set: HashSet<_> = solutions.iter().map(|s| s.vertices.clone()).collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn figure1_isomorphism_finds_one_solution() {
        let ds = figure1_dataset();
        let data = type_aware_transform(&ds);
        let (count, solutions, _) = run(&ds, &data, FIGURE1_QUERY, &TurboHomConfig::isomorphism());
        assert_eq!(count, 1);
        // Every data vertex in the single solution is distinct (injectivity).
        let s = &solutions[0];
        let bound: Vec<VertexId> = s.vertices.iter().filter_map(|v| *v).collect();
        let distinct: HashSet<_> = bound.iter().collect();
        assert_eq!(bound.len(), distinct.len());
    }

    #[test]
    fn optimizations_do_not_change_the_result() {
        let ds = figure1_dataset();
        let data = type_aware_transform(&ds);
        let baseline = run(&ds, &data, FIGURE1_QUERY, &TurboHomConfig::turbohom()).0;
        assert_eq!(baseline, 3);
        for opts in [
            Optimizations::all(),
            Optimizations::none(),
            Optimizations::only(crate::config::OptimizationName::Intersection),
            Optimizations::only(crate::config::OptimizationName::DisableNlf),
            Optimizations::only(crate::config::OptimizationName::DisableDegree),
            Optimizations::only(crate::config::OptimizationName::ReuseMatchingOrder),
        ] {
            let config = TurboHomConfig::default().with_optimizations(opts);
            assert_eq!(run(&ds, &data, FIGURE1_QUERY, &config).0, 3, "{opts:?}");
        }
    }

    #[test]
    fn intersection_replaces_probes() {
        let ds = figure1_dataset();
        let data = type_aware_transform(&ds);
        let with_int = run(
            &ds,
            &data,
            FIGURE1_QUERY,
            &TurboHomConfig::default().with_optimizations(Optimizations::all()),
        )
        .2;
        let without_int = run(
            &ds,
            &data,
            FIGURE1_QUERY,
            &TurboHomConfig::default().with_optimizations(Optimizations::none()),
        )
        .2;
        assert!(with_int.intersection_ops > 0);
        assert_eq!(with_int.isjoinable_probes, 0);
        assert!(without_int.isjoinable_probes > 0);
        assert_eq!(without_int.intersection_ops, 0);
    }

    #[test]
    fn variable_predicate_enumerates_each_edge_label() {
        // Two parallel edges with different predicates between a and b.
        let mut ds = Dataset::new();
        ds.insert_iris(&ub("a"), &ub("p"), &ub("b"));
        ds.insert_iris(&ub("a"), &ub("q"), &ub("b"));
        let data = type_aware_transform(&ds);
        let (count, solutions, _) = run(
            &ds,
            &data,
            r#"SELECT ?pred WHERE { <http://ub.org/a> ?pred <http://ub.org/b> . }"#,
            &TurboHomConfig::default(),
        );
        assert_eq!(count, 2);
        let labels: HashSet<Option<ELabel>> = solutions.iter().map(|s| s.edge_labels[0]).collect();
        assert_eq!(labels.len(), 2);
        assert!(labels.iter().all(|l| l.is_some()));
    }

    #[test]
    fn optional_clause_produces_nulls_only_when_it_cannot_match() {
        let mut ds = Dataset::new();
        for p in ["p1", "p2"] {
            ds.insert_iris(&ub(p), vocab::RDF_TYPE, &ub("Product"));
            ds.insert_iris(&ub(p), &ub("price"), &ub(&format!("{p}_price")));
        }
        // Only p1 has a rating.
        ds.insert_iris(&ub("p1"), &ub("rating"), &ub("five"));
        let data = type_aware_transform(&ds);
        let (count, solutions, _) = run(
            &ds,
            &data,
            r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
               PREFIX ub: <http://ub.org/>
               SELECT ?p ?price ?r WHERE {
                 ?p rdf:type ub:Product . ?p ub:price ?price .
                 OPTIONAL { ?p ub:rating ?r . }
               }"#,
            &TurboHomConfig::default(),
        );
        assert_eq!(count, 2);
        // Exactly one solution has the rating bound, the other has it null.
        let with_rating = solutions.iter().filter(|s| s.bound_count() == 3).count();
        let without_rating = solutions.iter().filter(|s| s.bound_count() == 2).count();
        assert_eq!(with_rating, 1);
        assert_eq!(without_rating, 1);
    }

    #[test]
    fn optional_does_not_add_null_row_when_it_matches() {
        let mut ds = Dataset::new();
        ds.insert_iris(&ub("p1"), vocab::RDF_TYPE, &ub("Product"));
        ds.insert_iris(&ub("p1"), &ub("price"), &ub("x"));
        ds.insert_iris(&ub("p1"), &ub("rating"), &ub("r1"));
        ds.insert_iris(&ub("p1"), &ub("rating"), &ub("r2"));
        let data = type_aware_transform(&ds);
        let (count, solutions, _) = run(
            &ds,
            &data,
            r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
               PREFIX ub: <http://ub.org/>
               SELECT ?r WHERE {
                 ?p rdf:type ub:Product . ?p ub:price ?price .
                 OPTIONAL { ?p ub:rating ?r . }
               }"#,
            &TurboHomConfig::default(),
        );
        // Two ratings → two rows; no additional null row.
        assert_eq!(count, 2);
        assert!(solutions.iter().all(|s| s.bound_count() == 3));
    }

    #[test]
    fn nested_optional_nullifies_inner_clause_independently() {
        let mut ds = Dataset::new();
        ds.insert_iris(&ub("p1"), vocab::RDF_TYPE, &ub("Product"));
        ds.insert_iris(&ub("p1"), &ub("price"), &ub("x"));
        ds.insert_iris(&ub("p1"), &ub("rating"), &ub("five"));
        // No homepage.
        let data = type_aware_transform(&ds);
        let (count, solutions, _) = run(
            &ds,
            &data,
            r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
               PREFIX ub: <http://ub.org/>
               SELECT ?r ?h WHERE {
                 ?p rdf:type ub:Product . ?p ub:price ?price .
                 OPTIONAL { ?p ub:rating ?r . OPTIONAL { ?p ub:homepage ?h . } }
               }"#,
            &TurboHomConfig::default(),
        );
        assert_eq!(count, 1);
        let s = &solutions[0];
        // p, price and rating are bound; homepage is null (4 query vertices).
        assert_eq!(s.vertices.len(), 4);
        assert_eq!(s.bound_count(), 3);
    }

    #[test]
    fn max_solutions_limit_stops_early() {
        let mut ds = Dataset::new();
        for i in 0..50 {
            ds.insert_iris(&ub(&format!("s{i}")), vocab::RDF_TYPE, &ub("Student"));
        }
        let data = type_aware_transform(&ds);
        let config = TurboHomConfig {
            max_solutions: Some(7),
            ..TurboHomConfig::default()
        };
        let (count, solutions, _) = run(
            &ds,
            &data,
            r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
               PREFIX ub: <http://ub.org/>
               SELECT ?x WHERE { ?x rdf:type ub:Student . }"#,
            &config,
        );
        assert_eq!(count, 7);
        assert_eq!(solutions.len(), 7);
    }

    #[test]
    fn count_only_mode_does_not_materialize() {
        let ds = figure1_dataset();
        let data = type_aware_transform(&ds);
        let config = TurboHomConfig {
            count_only: true,
            ..TurboHomConfig::default()
        };
        let (count, solutions, _) = run(&ds, &data, FIGURE1_QUERY, &config);
        assert_eq!(count, 3);
        assert!(solutions.is_empty());
    }
}
