//! `ExploreCandidateRegion` (paper Section 2.2 / 4.2).
//!
//! Starting from one qualifying data vertex for the starting query vertex,
//! the data graph is explored depth-first *following the query tree
//! topology*: the candidates of a child query vertex are looked up in the
//! adjacency of its parent's data vertex, constrained by edge label, vertex
//! labels and (optionally) the degree and NLF filters. A child that is part
//! of the *required* query with no candidates kills the whole region; a
//! child inside an OPTIONAL clause merely records an empty candidate list
//! (the nullify-and-keep-searching strategy of Section 5.1).

use crate::config::{MatchSemantics, TurboHomConfig};
use crate::filters;
use crate::query_tree::QueryTree;
use crate::stats::MatchStats;
use std::collections::HashMap;
use turbohom_graph::VertexId;
use turbohom_transform::{TransformedGraph, TransformedQuery};

/// The candidate region rooted at one starting data vertex.
///
/// `CR(u, v)` — the candidate data vertices of query vertex `u` that are
/// adjacent to `v`, where `v` is a candidate of `u`'s query-tree parent —
/// is stored as a map keyed by `(u, v)`.
#[derive(Debug, Clone)]
pub struct CandidateRegion {
    /// The starting data vertex this region was grown from.
    pub start_vertex: VertexId,
    entries: HashMap<(usize, VertexId), Vec<VertexId>>,
    /// Total candidate vertices per query vertex (used to pick the matching
    /// order).
    counts: Vec<usize>,
}

impl CandidateRegion {
    /// The candidates `CR(u, parent_vertex)`, empty if none were recorded.
    pub fn candidates(&self, u: usize, parent_vertex: VertexId) -> &[VertexId] {
        self.entries
            .get(&(u, parent_vertex))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Total number of candidate vertices recorded for query vertex `u`
    /// across all parents (the paper's `|CR_vs(u)|`).
    pub fn count(&self, u: usize) -> usize {
        self.counts.get(u).copied().unwrap_or(0)
    }

    /// Total number of candidate vertices in the region.
    pub fn total_candidates(&self) -> usize {
        self.counts.iter().sum()
    }
}

/// Grows the candidate region rooted at `start`. Returns `None` if some
/// *required* query vertex has no candidates anywhere in the region, which
/// means the region cannot contribute any solution and is skipped
/// (Algorithm 1, line 10).
pub fn explore_candidate_region(
    data: &TransformedGraph,
    config: &TurboHomConfig,
    query: &TransformedQuery,
    tree: &QueryTree,
    start: VertexId,
    stats: &mut MatchStats,
) -> Option<CandidateRegion> {
    let mut region = CandidateRegion {
        start_vertex: start,
        entries: HashMap::new(),
        counts: vec![0; query.graph.vertex_count()],
    };
    region.counts[tree.root] = 1;
    let mut path: Vec<VertexId> = vec![start];
    let ok = explore(
        data,
        config,
        query,
        tree,
        tree.root,
        start,
        &mut region,
        &mut path,
        stats,
    );
    if ok {
        stats.candidate_vertices += region.total_candidates();
        Some(region)
    } else {
        None
    }
}

/// Recursive exploration of the subtree rooted at query vertex `u`, whose
/// candidate data vertex is `v`. Returns `false` if a required descendant
/// cannot be matched under `v`.
#[allow(clippy::too_many_arguments)]
fn explore(
    data: &TransformedGraph,
    config: &TurboHomConfig,
    query: &TransformedQuery,
    tree: &QueryTree,
    u: usize,
    v: VertexId,
    region: &mut CandidateRegion,
    path: &mut Vec<VertexId>,
    stats: &mut MatchStats,
) -> bool {
    for &child in &tree.children[u] {
        let edge_info = tree.parent[child].expect("child has a parent tree edge");
        let qedge = query.graph.edge(edge_info.edge);
        let child_labels = &query.graph.vertex(child).labels;
        let raw =
            filters::adjacent_candidates(data, v, edge_info.direction, qedge.label, child_labels);
        stats.explored_vertices += raw.len();

        let mut valid = Vec::with_capacity(raw.len());
        for c in raw {
            if !filters::qualifies(data, config, &query.graph, child, c, stats) {
                continue;
            }
            if config.semantics == MatchSemantics::Isomorphism && path.contains(&c) {
                // Injectivity is enforced along the exploration path for the
                // isomorphism semantics (Section 2.2).
                continue;
            }
            path.push(c);
            let subtree_ok = explore(data, config, query, tree, child, c, region, path, stats);
            path.pop();
            if subtree_ok {
                valid.push(c);
            }
        }

        let child_is_required = query.vertex_clause[child].is_none();
        if valid.is_empty() && child_is_required {
            return false;
        }
        region.counts[child] += valid.len();
        region.entries.insert((child, v), valid);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::start_vertex;
    use turbohom_rdf::{vocab, Dataset};
    use turbohom_sparql::parse_query;
    use turbohom_transform::{transform_query, type_aware_transform};

    fn ub(l: &str) -> String {
        format!("http://ub.org/{l}")
    }

    /// Builds the data graph of paper Figure 2b (the matching-order example):
    /// one A vertex connected to 10 X vertices, 10000 scaled down to 100 Y
    /// vertices, and 5 Z vertices; each X vertex also connects to 10 Ys and
    /// each Y to nothing else; Zs hang off the A vertex only.
    fn figure2_dataset(ys: usize) -> Dataset {
        let mut ds = Dataset::new();
        ds.insert_iris(&ub("a0"), vocab::RDF_TYPE, &ub("A"));
        for i in 0..10 {
            let x = ub(&format!("x{i}"));
            ds.insert_iris(&x, vocab::RDF_TYPE, &ub("X"));
            ds.insert_iris(&ub("a0"), &ub("edge"), &x);
        }
        for i in 0..ys {
            let y = ub(&format!("y{i}"));
            ds.insert_iris(&y, vocab::RDF_TYPE, &ub("Y"));
            ds.insert_iris(&ub("a0"), &ub("edge"), &y);
        }
        for i in 0..5 {
            let z = ub(&format!("z{i}"));
            ds.insert_iris(&z, vocab::RDF_TYPE, &ub("Z"));
            ds.insert_iris(&ub("a0"), &ub("edge"), &z);
        }
        ds
    }

    const STAR_QUERY: &str = r#"
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        PREFIX ub: <http://ub.org/>
        SELECT ?a ?x ?y ?z WHERE {
            ?a rdf:type ub:A .
            ?x rdf:type ub:X . ?y rdf:type ub:Y . ?z rdf:type ub:Z .
            ?a ub:edge ?x . ?a ub:edge ?y . ?a ub:edge ?z .
        }"#;

    fn setup(ys: usize) -> (Dataset, TransformedGraph, TransformedQuery) {
        let ds = figure2_dataset(ys);
        let t = type_aware_transform(&ds);
        let q = parse_query(STAR_QUERY).unwrap();
        let tq = transform_query(&q.pattern, &t, &ds.dictionary).unwrap();
        (ds, t, tq)
    }

    #[test]
    fn region_counts_match_figure2_structure() {
        let (_, t, tq) = setup(100);
        let config = TurboHomConfig::default();
        let mut stats = MatchStats::default();
        let sel = start_vertex::choose_start_vertex(&t, &config, &tq, &mut stats);
        // The A vertex has one candidate region.
        assert_eq!(sel.start_vertices.len(), 1);
        let a = tq.graph.vertex_of_variable("a").unwrap();
        assert_eq!(sel.query_vertex, a);
        let tree = QueryTree::build(&tq.graph, sel.query_vertex);
        let region =
            explore_candidate_region(&t, &config, &tq, &tree, sel.start_vertices[0], &mut stats)
                .expect("region exists");
        let x = tq.graph.vertex_of_variable("x").unwrap();
        let y = tq.graph.vertex_of_variable("y").unwrap();
        let z = tq.graph.vertex_of_variable("z").unwrap();
        assert_eq!(region.count(x), 10);
        assert_eq!(region.count(y), 100);
        assert_eq!(region.count(z), 5);
        assert_eq!(region.count(a), 1);
        assert_eq!(region.total_candidates(), 116);
        assert_eq!(stats.candidate_vertices, 116);
    }

    #[test]
    fn missing_required_child_kills_the_region() {
        // No Z vertices at all → the region from a0 must fail.
        let mut ds = Dataset::new();
        ds.insert_iris(&ub("a0"), vocab::RDF_TYPE, &ub("A"));
        ds.insert_iris(&ub("x0"), vocab::RDF_TYPE, &ub("X"));
        ds.insert_iris(&ub("y0"), vocab::RDF_TYPE, &ub("Y"));
        ds.insert_iris(&ub("a0"), &ub("edge"), &ub("x0"));
        ds.insert_iris(&ub("a0"), &ub("edge"), &ub("y0"));
        // Note: no Z typed vertex and no third edge.
        let t = type_aware_transform(&ds);
        let q = parse_query(STAR_QUERY).unwrap();
        let tq = transform_query(&q.pattern, &t, &ds.dictionary).unwrap();
        // The query mentions class Z which exists nowhere: already
        // unsatisfiable at transformation time.
        assert!(tq.unsatisfiable);
    }

    #[test]
    fn region_fails_when_edge_exists_but_label_mismatches() {
        let (ds, _, _) = {
            let ds = figure2_dataset(3);
            let t = type_aware_transform(&ds);
            let q = parse_query(STAR_QUERY).unwrap();
            let tq = transform_query(&q.pattern, &t, &ds.dictionary).unwrap();
            (ds, t, tq)
        };
        // Query asking for a `wrongEdge` predicate that exists in the data
        // dictionary but never with an A-subject.
        let mut ds2 = ds.clone();
        ds2.insert_iris(&ub("y0"), &ub("wrongEdge"), &ub("y1"));
        let t2 = type_aware_transform(&ds2);
        let q2 = parse_query(
            r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
               PREFIX ub: <http://ub.org/>
               SELECT ?a ?x WHERE { ?a rdf:type ub:A . ?x rdf:type ub:X . ?a ub:wrongEdge ?x . }"#,
        )
        .unwrap();
        let tq2 = transform_query(&q2.pattern, &t2, &ds2.dictionary).unwrap();
        assert!(!tq2.unsatisfiable);
        let config = TurboHomConfig::default();
        let mut stats = MatchStats::default();
        let sel = start_vertex::choose_start_vertex(&t2, &config, &tq2, &mut stats);
        let tree = QueryTree::build(&tq2.graph, sel.query_vertex);
        for &vs in &sel.start_vertices {
            assert!(explore_candidate_region(&t2, &config, &tq2, &tree, vs, &mut stats).is_none());
        }
    }

    #[test]
    fn optional_child_with_no_candidates_keeps_region_alive() {
        let mut ds = Dataset::new();
        ds.insert_iris(&ub("p1"), vocab::RDF_TYPE, &ub("Product"));
        ds.insert_iris(&ub("p1"), &ub("price"), &ub("cheap"));
        let t = type_aware_transform(&ds);
        let q = parse_query(
            r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
               PREFIX ub: <http://ub.org/>
               SELECT ?p ?price ?r WHERE {
                 ?p rdf:type ub:Product . ?p ub:price ?price .
                 OPTIONAL { ?p ub:rating ?r . }
               }"#,
        )
        .unwrap();
        let tq = transform_query(&q.pattern, &t, &ds.dictionary).unwrap();
        // `rating` is unknown, but it only occurs in an OPTIONAL clause: the
        // query stays satisfiable and the region exploration must not fail —
        // the optional child simply has no candidates.
        assert!(!tq.unsatisfiable);
        let config = TurboHomConfig::default();
        let mut stats = MatchStats::default();
        let p = tq.graph.vertex_of_variable("p").unwrap();
        let tree = QueryTree::build(&tq.graph, p);
        let start = t
            .mappings
            .vertex_of(ds.dictionary.id_of_iri(&ub("p1")).unwrap())
            .unwrap();
        let region = explore_candidate_region(&t, &config, &tq, &tree, start, &mut stats);
        assert!(region.is_some());
        let region = region.unwrap();
        let r = tq.graph.vertex_of_variable("r").unwrap();
        assert_eq!(region.count(r), 0);
        assert!(region.candidates(r, start).is_empty());
    }

    #[test]
    fn isomorphism_path_injectivity_prunes_revisits() {
        // Data: a → b → a (cycle). Query path x -e-> y -e-> z.
        let mut ds = Dataset::new();
        ds.insert_iris(&ub("a"), &ub("e"), &ub("b"));
        ds.insert_iris(&ub("b"), &ub("e"), &ub("a"));
        let t = type_aware_transform(&ds);
        let q = parse_query(
            r#"PREFIX ub: <http://ub.org/>
               SELECT ?x ?y ?z WHERE { ?x ub:e ?y . ?y ub:e ?z . }"#,
        )
        .unwrap();
        let tq = transform_query(&q.pattern, &t, &ds.dictionary).unwrap();
        let x = tq.graph.vertex_of_variable("x").unwrap();
        let z = tq.graph.vertex_of_variable("z").unwrap();
        let tree = QueryTree::build(&tq.graph, x);
        let a = t
            .mappings
            .vertex_of(ds.dictionary.id_of_iri(&ub("a")).unwrap())
            .unwrap();
        let mut stats = MatchStats::default();

        // Homomorphism: z may map back onto a (the path a→b→a is allowed).
        let hom =
            explore_candidate_region(&t, &TurboHomConfig::default(), &tq, &tree, a, &mut stats)
                .unwrap();
        assert_eq!(hom.count(z), 1);

        // Isomorphism: revisiting a on the exploration path is pruned, so the
        // region dies (z has no candidate distinct from a and b... b is the
        // y-mapping, a is on the path).
        let iso = explore_candidate_region(
            &t,
            &TurboHomConfig::isomorphism(),
            &tq,
            &tree,
            a,
            &mut stats,
        );
        assert!(iso.is_none());
    }
}
