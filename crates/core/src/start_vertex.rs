//! `ChooseStartQueryVertex` (paper Section 2.2 / 4.2).
//!
//! The starting query vertex determines the candidate regions: one region is
//! explored per data vertex that qualifies for the start vertex, so the
//! engine wants the query vertex with the *fewest* qualifying data vertices.
//! The paper ranks query vertices by `rank(u) = freq(g, L(u)) / deg(u)`
//! (preferring rare labels and high degree), then refines the top-k by
//! actually counting candidates with the degree and NLF filters applied.

use crate::config::TurboHomConfig;
use crate::filters;
use crate::stats::MatchStats;
use turbohom_graph::{ops, VertexId};
use turbohom_transform::{TransformedGraph, TransformedQuery};

/// How many of the lowest-ranked query vertices are refined by exact
/// candidate counting (the paper's "top-k"). Three is TurboISO's default.
const TOP_K: usize = 3;

/// The outcome of start-vertex selection: the chosen query vertex and the
/// data vertices that start a candidate region each.
#[derive(Debug, Clone)]
pub struct StartSelection {
    /// The chosen starting query vertex (index into the query graph).
    pub query_vertex: usize,
    /// The qualifying starting data vertices, sorted.
    pub start_vertices: Vec<VertexId>,
}

/// Estimates `freq(g, L(u))` — the number of data vertices that could match
/// query vertex `u` — without enumerating them (used for the coarse ranking).
fn rough_frequency(data: &TransformedGraph, query: &TransformedQuery, u: usize) -> usize {
    let qv = query.graph.vertex(u);
    if qv.bound.is_some() {
        return 1;
    }
    if !qv.labels.is_empty() {
        return data
            .inverse_labels
            .frequency_of_set(&qv.labels)
            .unwrap_or(usize::MAX);
    }
    // No label, no ID: use the predicate index over the incident edges with
    // constant predicates (Section 4.2), taking the most selective one.
    let mut best = usize::MAX;
    for &(ei, dir) in query.graph.incident_edges(u) {
        if let Some(el) = query.graph.edge(ei).label {
            let endpoints = data.predicates.endpoints(el, dir).len();
            best = best.min(endpoints);
        }
    }
    if best == usize::MAX {
        data.graph.vertex_count()
    } else {
        best
    }
}

/// Enumerates the data vertices that qualify as starting vertices for query
/// vertex `u` (ID attribute, label set, degree/NLF filters).
pub fn enumerate_start_vertices(
    data: &TransformedGraph,
    config: &TurboHomConfig,
    query: &TransformedQuery,
    u: usize,
    stats: &mut MatchStats,
) -> Vec<VertexId> {
    let qv = query.graph.vertex(u);
    let base: Vec<VertexId> = if let Some(bound) = qv.bound {
        vec![bound]
    } else if !qv.labels.is_empty() {
        data.inverse_labels
            .vertices_with_all_labels(&qv.labels)
            .unwrap_or_default()
    } else {
        // No label, no ID: take the most selective constant-predicate
        // incidence list, or every vertex as a last resort.
        let mut best: Option<Vec<VertexId>> = None;
        for &(ei, dir) in query.graph.incident_edges(u) {
            if let Some(el) = query.graph.edge(ei).label {
                let endpoints = data.predicates.endpoints(el, dir);
                if best.as_ref().is_none_or(|b| endpoints.len() < b.len()) {
                    best = Some(endpoints.to_vec());
                }
            }
        }
        best.unwrap_or_else(|| data.graph.vertices().collect())
    };
    let mut out: Vec<VertexId> = base
        .into_iter()
        .filter(|&v| filters::qualifies(data, config, &query.graph, u, v, stats))
        .collect();
    ops::canonicalize(&mut out);
    out
}

/// Chooses the starting query vertex and enumerates its starting data
/// vertices.
///
/// Only vertices of the *required* part of the query are eligible: the
/// OPTIONAL strategy of Section 5.1 demands that "TurboHOM++ selects a start
/// query vertex which is not specified in an OPTIONAL clause".
pub fn choose_start_vertex(
    data: &TransformedGraph,
    config: &TurboHomConfig,
    query: &TransformedQuery,
    stats: &mut MatchStats,
) -> StartSelection {
    let eligible: Vec<usize> = (0..query.graph.vertex_count())
        .filter(|&u| query.vertex_clause[u].is_none())
        .collect();
    debug_assert!(!eligible.is_empty(), "query must have a required part");

    // Coarse ranking: freq / deg, lower is better.
    let mut ranked: Vec<(f64, usize)> = eligible
        .iter()
        .map(|&u| {
            let freq = rough_frequency(data, query, u) as f64;
            let deg = query.graph.degree(u).max(1) as f64;
            (freq / deg, u)
        })
        .collect();
    ranked.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

    // Refine the top-k by exact candidate counting.
    let mut best: Option<(usize, Vec<VertexId>)> = None;
    for &(_, u) in ranked.iter().take(TOP_K) {
        let candidates = enumerate_start_vertices(data, config, query, u, stats);
        match &best {
            Some((_, current)) if candidates.len() >= current.len() => {}
            _ => best = Some((u, candidates)),
        }
        if let Some((_, c)) = &best {
            if c.is_empty() {
                break;
            }
        }
    }
    let (query_vertex, start_vertices) = best.expect("at least one eligible vertex");
    StartSelection {
        query_vertex,
        start_vertices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbohom_rdf::{vocab, Dataset};
    use turbohom_sparql::parse_query;
    use turbohom_transform::{transform_query, type_aware_transform};

    fn ub(l: &str) -> String {
        format!("http://ub.org/{l}")
    }

    /// One university, two departments, many students.
    fn data() -> (Dataset, TransformedGraph) {
        let mut ds = Dataset::new();
        ds.insert_iris(&ub("univ0"), vocab::RDF_TYPE, &ub("University"));
        for d in 0..2 {
            let dept = ub(&format!("dept{d}"));
            ds.insert_iris(&dept, vocab::RDF_TYPE, &ub("Department"));
            ds.insert_iris(&dept, &ub("subOrganizationOf"), &ub("univ0"));
            for s in 0..5 {
                let student = ub(&format!("student{d}_{s}"));
                ds.insert_iris(&student, vocab::RDF_TYPE, &ub("Student"));
                ds.insert_iris(&student, &ub("memberOf"), &dept);
                ds.insert_iris(&student, &ub("undergraduateDegreeFrom"), &ub("univ0"));
            }
        }
        let t = type_aware_transform(&ds);
        (ds, t)
    }

    fn transformed(ds: &Dataset, t: &TransformedGraph, sparql: &str) -> TransformedQuery {
        let q = parse_query(sparql).unwrap();
        transform_query(&q.pattern, t, &ds.dictionary).unwrap()
    }

    #[test]
    fn prefers_rarest_label_adjusted_by_degree() {
        let (ds, t) = data();
        // University (1 instance) vs Student (10) vs Department (2): the
        // University vertex has the fewest candidates.
        let tq = transformed(
            &ds,
            &t,
            r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
               PREFIX ub: <http://ub.org/>
               SELECT ?x ?y ?z WHERE {
                 ?x rdf:type ub:Student . ?y rdf:type ub:University . ?z rdf:type ub:Department .
                 ?x ub:undergraduateDegreeFrom ?y . ?x ub:memberOf ?z . ?z ub:subOrganizationOf ?y .
               }"#,
        );
        let mut stats = MatchStats::default();
        let sel = choose_start_vertex(&t, &TurboHomConfig::default(), &tq, &mut stats);
        let chosen_var = tq.graph.vertex(sel.query_vertex).variable.clone();
        assert_eq!(chosen_var.as_deref(), Some("y"));
        assert_eq!(sel.start_vertices.len(), 1);
    }

    #[test]
    fn bound_vertex_always_wins() {
        let (ds, t) = data();
        let tq = transformed(
            &ds,
            &t,
            r#"PREFIX ub: <http://ub.org/>
               SELECT ?d WHERE { <http://ub.org/student0_0> ub:memberOf ?d . }"#,
        );
        let mut stats = MatchStats::default();
        let sel = choose_start_vertex(&t, &TurboHomConfig::default(), &tq, &mut stats);
        assert!(tq.graph.vertex(sel.query_vertex).bound.is_some());
        assert_eq!(sel.start_vertices.len(), 1);
    }

    #[test]
    fn unconstrained_vertex_uses_predicate_index() {
        let (ds, t) = data();
        // ?x subOrganizationOf ?y — neither side has a label; the predicate
        // index bounds the candidates to the two departments / one university.
        let tq = transformed(
            &ds,
            &t,
            r#"PREFIX ub: <http://ub.org/>
               SELECT ?x ?y WHERE { ?x ub:subOrganizationOf ?y . }"#,
        );
        let mut stats = MatchStats::default();
        let sel = choose_start_vertex(&t, &TurboHomConfig::default(), &tq, &mut stats);
        // Either end qualifies; whichever is chosen, the candidate set must
        // come from the predicate index, not the whole vertex set.
        assert!(sel.start_vertices.len() <= 2);
        assert!(!sel.start_vertices.is_empty());
    }

    #[test]
    fn optional_vertices_are_not_eligible() {
        let (ds, t) = data();
        // The bound dept0 vertex would be the cheapest start (one candidate),
        // but it sits in an OPTIONAL clause and is therefore not eligible.
        let tq2 = transformed(
            &ds,
            &t,
            r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
               PREFIX ub: <http://ub.org/>
               SELECT ?x ?u WHERE {
                 ?x rdf:type ub:Student .
                 OPTIONAL { <http://ub.org/dept0> ub:subOrganizationOf ?u . }
               }"#,
        );
        let mut stats = MatchStats::default();
        let sel = choose_start_vertex(&t, &TurboHomConfig::default(), &tq2, &mut stats);
        assert_eq!(tq2.vertex_clause[sel.query_vertex], None);
        // The bound dept0 vertex is in the OPTIONAL clause, so the start is
        // the Student vertex with its 10 candidates.
        assert_eq!(sel.start_vertices.len(), 10);
    }

    #[test]
    fn unknown_class_yields_no_start_vertices() {
        let (ds, t) = data();
        let q = parse_query(
            r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
               PREFIX ub: <http://ub.org/>
               SELECT ?x WHERE { ?x rdf:type ub:Student . ?x ub:memberOf ?d . }"#,
        )
        .unwrap();
        let mut tq = transform_query(&q.pattern, &t, &ds.dictionary).unwrap();
        // Artificially constrain the student vertex to an impossible bound id
        // to check the empty-candidate path.
        let u = tq.graph.vertex_of_variable("x").unwrap();
        let mut stats = MatchStats::default();
        let cands = enumerate_start_vertices(&t, &TurboHomConfig::default(), &tq, u, &mut stats);
        assert_eq!(cands.len(), 10);
        // Bound to a non-Student vertex: label check rejects it.
        let univ = t
            .mappings
            .vertex_of(ds.dictionary.id_of_iri(&ub("univ0")).unwrap())
            .unwrap();
        let graph = std::mem::take(&mut tq.graph);
        let mut vertices_rebuilt = turbohom_graph::QueryGraph::new();
        for (i, v) in graph.vertices().iter().enumerate() {
            let mut v = v.clone();
            if i == u {
                v.bound = Some(univ);
            }
            vertices_rebuilt.add_vertex(v);
        }
        for e in graph.edges() {
            vertices_rebuilt.add_edge(e.clone());
        }
        tq.graph = vertices_rebuilt;
        let cands = enumerate_start_vertices(&t, &TurboHomConfig::default(), &tq, u, &mut stats);
        assert!(cands.is_empty());
    }
}
