//! Engine configuration: matching semantics, optimization toggles, threading.

/// The matching semantics.
///
/// The generic backtracking framework supports both; the RDF pattern
/// matching semantics is the (e-graph) homomorphism, obtained from subgraph
/// isomorphism "by just removing the injectivity constraint" (Section 2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchSemantics {
    /// Injective mapping: no two query vertices may map to the same data
    /// vertex (classic subgraph isomorphism, Definition 1).
    Isomorphism,
    /// Non-injective mapping with edge-label assignment — the SPARQL
    /// semantics (e-graph homomorphism, Definition 2).
    #[default]
    Homomorphism,
}

/// The four optimizations of Section 4.3, individually toggleable so the
/// Figure 15 ablation can be reproduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Optimizations {
    /// `+INT`: perform the `IsJoinable` test as one k-way intersection
    /// between the candidate list and the adjacency lists of the already
    /// matched non-tree neighbors, instead of per-candidate binary searches.
    pub intersection_joinable: bool,
    /// NLF filter in `ExploreCandidateRegion`. The paper *disables* it for
    /// RDF data (`-NLF`), so `false` means the optimization is applied.
    pub nlf_filter: bool,
    /// Degree filter in `ExploreCandidateRegion`. The paper *disables* it
    /// (`-DEG`), so `false` means the optimization is applied.
    pub degree_filter: bool,
    /// `+REUSE`: compute the matching order for the first candidate region
    /// only and reuse it for all the others.
    pub reuse_matching_order: bool,
}

impl Optimizations {
    /// The TurboHOM++ configuration: all four optimizations applied
    /// (+INT, −NLF, −DEG, +REUSE).
    pub fn all() -> Self {
        Optimizations {
            intersection_joinable: true,
            nlf_filter: false,
            degree_filter: false,
            reuse_matching_order: true,
        }
    }

    /// The plain TurboHOM configuration (direct port of TurboISO): no +INT,
    /// filters enabled, per-region matching orders.
    pub fn none() -> Self {
        Optimizations {
            intersection_joinable: false,
            nlf_filter: true,
            degree_filter: true,
            reuse_matching_order: false,
        }
    }

    /// Applies a single named optimization on top of [`Optimizations::none`]
    /// — the setting used by the Figure 15 ablation ("applying these
    /// optimizations separately").
    pub fn only(name: OptimizationName) -> Self {
        let mut o = Optimizations::none();
        match name {
            OptimizationName::Intersection => o.intersection_joinable = true,
            OptimizationName::DisableNlf => o.nlf_filter = false,
            OptimizationName::DisableDegree => o.degree_filter = false,
            OptimizationName::ReuseMatchingOrder => o.reuse_matching_order = true,
        }
        o
    }
}

impl Default for Optimizations {
    fn default() -> Self {
        Optimizations::all()
    }
}

/// The names of the four optimizations (used by the ablation harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizationName {
    /// `+INT`
    Intersection,
    /// `-NLF`
    DisableNlf,
    /// `-DEG`
    DisableDegree,
    /// `+REUSE`
    ReuseMatchingOrder,
}

impl OptimizationName {
    /// All four, in the order the paper lists them.
    pub fn all() -> [OptimizationName; 4] {
        [
            OptimizationName::Intersection,
            OptimizationName::DisableNlf,
            OptimizationName::DisableDegree,
            OptimizationName::ReuseMatchingOrder,
        ]
    }

    /// The paper's label for the optimization.
    pub fn label(&self) -> &'static str {
        match self {
            OptimizationName::Intersection => "+INT",
            OptimizationName::DisableNlf => "-NLF",
            OptimizationName::DisableDegree => "-DEG",
            OptimizationName::ReuseMatchingOrder => "+REUSE",
        }
    }
}

/// How candidate regions are distributed to worker threads (Section 5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Morsel-driven work stealing: every worker owns a contiguous range of
    /// start vertices and pops small morsels off its own front; an idle
    /// worker steals the back half of a victim's remaining range. Degree
    /// information ranks heavy regions first.
    #[default]
    Morsel,
    /// Legacy scheduler: workers claim fixed-size chunks from one shared
    /// atomic cursor. Kept for A/B comparison in the benchmarks.
    Chunked,
}

impl Scheduler {
    /// Short name used by the flight recorder and the benchmark CLI.
    pub fn label(&self) -> &'static str {
        match self {
            Scheduler::Morsel => "morsel",
            Scheduler::Chunked => "chunked",
        }
    }
}

/// The full engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TurboHomConfig {
    /// Isomorphism or homomorphism.
    pub semantics: MatchSemantics,
    /// Optimization toggles.
    pub optimizations: Optimizations,
    /// Number of worker threads for candidate-region-parallel execution
    /// (Section 5.2). `1` means sequential.
    pub threads: usize,
    /// Strategy used to hand candidate regions to the worker threads.
    pub scheduler: Scheduler,
    /// When `true`, solutions are counted but not materialized (useful for
    /// the largest benchmark runs).
    pub count_only: bool,
    /// Stop after this many solutions (`None` = unbounded).
    pub max_solutions: Option<usize>,
    /// Match against the simple-entailment label sets (`Lsimple`) instead of
    /// the inferred closure (Section 4.2).
    pub simple_entailment: bool,
}

impl Default for TurboHomConfig {
    fn default() -> Self {
        TurboHomConfig {
            semantics: MatchSemantics::Homomorphism,
            optimizations: Optimizations::all(),
            threads: 1,
            scheduler: Scheduler::Morsel,
            count_only: false,
            max_solutions: None,
            simple_entailment: false,
        }
    }
}

impl TurboHomConfig {
    /// The TurboHOM++ configuration of the paper's main experiments
    /// (homomorphism, all optimizations, single thread).
    pub fn turbohom_plus_plus() -> Self {
        Self::default()
    }

    /// The plain TurboHOM configuration (direct transformation companion):
    /// homomorphism semantics, no optimizations.
    pub fn turbohom() -> Self {
        TurboHomConfig {
            optimizations: Optimizations::none(),
            ..Self::default()
        }
    }

    /// Classic subgraph isomorphism (used by the correctness tests against
    /// the worked example of Figure 1).
    pub fn isomorphism() -> Self {
        TurboHomConfig {
            semantics: MatchSemantics::Isomorphism,
            ..Self::default()
        }
    }

    /// Returns a copy with the given thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Returns a copy with the given optimizations.
    pub fn with_optimizations(mut self, optimizations: Optimizations) -> Self {
        self.optimizations = optimizations;
        self
    }

    /// Returns a copy with the given region scheduler.
    pub fn with_scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_turbohom_plus_plus() {
        let c = TurboHomConfig::default();
        assert_eq!(c.semantics, MatchSemantics::Homomorphism);
        assert!(c.optimizations.intersection_joinable);
        assert!(!c.optimizations.nlf_filter);
        assert!(!c.optimizations.degree_filter);
        assert!(c.optimizations.reuse_matching_order);
        assert_eq!(c.threads, 1);
    }

    #[test]
    fn turbohom_disables_all_optimizations() {
        let c = TurboHomConfig::turbohom();
        assert_eq!(c.optimizations, Optimizations::none());
        assert!(c.optimizations.nlf_filter);
        assert!(c.optimizations.degree_filter);
    }

    #[test]
    fn only_applies_exactly_one() {
        let int = Optimizations::only(OptimizationName::Intersection);
        assert!(int.intersection_joinable);
        assert!(int.nlf_filter);
        assert!(int.degree_filter);
        assert!(!int.reuse_matching_order);

        let nlf = Optimizations::only(OptimizationName::DisableNlf);
        assert!(!nlf.nlf_filter);
        assert!(!nlf.intersection_joinable);

        let deg = Optimizations::only(OptimizationName::DisableDegree);
        assert!(!deg.degree_filter);

        let reuse = Optimizations::only(OptimizationName::ReuseMatchingOrder);
        assert!(reuse.reuse_matching_order);
    }

    #[test]
    fn labels_and_enumeration() {
        let labels: Vec<&str> = OptimizationName::all().iter().map(|o| o.label()).collect();
        assert_eq!(labels, vec!["+INT", "-NLF", "-DEG", "+REUSE"]);
    }

    #[test]
    fn with_threads_clamps_to_one() {
        assert_eq!(TurboHomConfig::default().with_threads(0).threads, 1);
        assert_eq!(TurboHomConfig::default().with_threads(8).threads, 8);
    }

    #[test]
    fn scheduler_defaults_to_morsel_and_round_trips() {
        assert_eq!(TurboHomConfig::default().scheduler, Scheduler::Morsel);
        let c = TurboHomConfig::default().with_scheduler(Scheduler::Chunked);
        assert_eq!(c.scheduler, Scheduler::Chunked);
        assert_eq!(Scheduler::Morsel.label(), "morsel");
        assert_eq!(Scheduler::Chunked.label(), "chunked");
    }
}
