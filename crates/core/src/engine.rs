//! The top-level engine: orchestrates start-vertex selection, candidate
//! region exploration, matching-order determination, subgraph search,
//! FILTER application and (optionally) parallel execution over starting
//! vertices (paper Algorithm 1 + Sections 4.3, 5.1, 5.2).

use crate::candidate_region::{explore_candidate_region, CandidateRegion};
use crate::config::{Scheduler, TurboHomConfig};
use crate::matching_order::MatchingOrder;
use crate::morsel::MorselQueue;
use crate::query_tree::QueryTree;
use crate::result::{merge_step_counts, MatchResult, Solution};
use crate::start_vertex::choose_start_vertex;
use crate::stats::MatchStats;
use crate::subgraph_search::SubgraphSearcher;
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use turbohom_graph::VertexId;
use turbohom_rdf::Dictionary;
use turbohom_sparql::{EvalContext, Expression};
use turbohom_trace::{SpanId, Trace};
use turbohom_transform::{TransformedGraph, TransformedQuery};

/// Upper bound on how many starting vertices one thread claims at a time.
/// Small chunks keep the load balanced (Section 5.2: "we assign a small
/// chunk of the starting data vertices to threads dynamically"); the actual
/// chunk size additionally shrinks when there are few starting vertices so
/// that every worker gets something to do.
const PARALLEL_CHUNK: usize = 16;

/// Picks the dynamic chunk size for `starts` starting vertices and `threads`
/// workers: roughly eight chunks per worker, capped at [`PARALLEL_CHUNK`].
fn chunk_size(starts: usize, threads: usize) -> usize {
    (starts / (threads * 8)).clamp(1, PARALLEL_CHUNK)
}

/// Accumulates one region's candidate counts per matching-order position —
/// the cardinality estimates ANALYZE compares against the actual per-step
/// rows.
fn accumulate_estimates(dst: &mut Vec<u64>, order: &MatchingOrder, region: &CandidateRegion) {
    if dst.len() < order.len() {
        dst.resize(order.len(), 0);
    }
    for (i, &u) in order.order.iter().enumerate() {
        dst[i] += region.count(u) as u64;
    }
}

/// Per-stage wall-clock accumulators for a detailed trace. Exploration,
/// matching-order determination and enumeration interleave per candidate
/// region, so their times are accumulated here and emitted as rolled-up
/// spans at the end of the run.
#[derive(Debug, Default, Clone, Copy)]
struct StageClock {
    explore: Duration,
    order: Duration,
    search: Duration,
}

impl StageClock {
    fn add(&mut self, other: &StageClock) {
        self.explore += other.explore;
        self.order += other.order;
        self.search += other.search;
    }
}

/// Runs `f`, adding its wall time to `slot` when `detailed` tracing is on.
fn timed<T>(detailed: bool, slot: &mut Duration, f: impl FnOnce() -> T) -> T {
    if detailed {
        let t0 = Instant::now();
        let out = f();
        *slot += t0.elapsed();
        out
    } else {
        f()
    }
}

/// What the parallel paths merge across workers: solutions, solution count,
/// counters, per-step actual rows, per-step candidate estimates.
type MergeAcc = (Vec<Solution>, usize, MatchStats, Vec<u64>, Vec<u64>);

/// What one parallel worker did, for its per-worker span.
struct WorkerTiming {
    worker: usize,
    busy: Duration,
    clock: StageClock,
    stats: MatchStats,
    solutions: usize,
}

/// Emits the detailed stage spans: `candidate_regions`, `matching_order`
/// and `enumeration` rollups under `parent`, plus one `worker` span per
/// parallel worker (child of `enumeration`) carrying its `MatchStats`.
fn record_stage_spans(
    trace: &Trace,
    parent: Option<SpanId>,
    clock: &StageClock,
    stats: &MatchStats,
    workers: &[WorkerTiming],
) {
    trace.record_rollup(
        "candidate_regions",
        parent,
        clock.explore,
        &[
            ("regions", stats.candidate_regions as u64),
            ("nonempty", stats.nonempty_regions as u64),
        ],
    );
    trace.record_rollup(
        "matching_order",
        parent,
        clock.order,
        &[("orders_computed", stats.matching_orders_computed as u64)],
    );
    let enumeration = trace.record_rollup(
        "enumeration",
        parent,
        clock.search,
        &[
            ("recursions", stats.search_recursions as u64),
            ("intersections", stats.intersection_ops as u64),
            ("solutions", stats.solutions as u64),
        ],
    );
    for w in workers {
        trace.record_rollup(
            "worker",
            enumeration,
            w.busy,
            &[
                ("worker", w.worker as u64),
                ("morsels", w.stats.morsels as u64),
                ("morsels_stolen", w.stats.morsels_stolen as u64),
                ("regions", w.stats.candidate_regions as u64),
                ("solutions", w.solutions as u64),
            ],
        );
    }
}

/// Errors reported by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The (required part of the) query graph is not connected; evaluating it
    /// would be a cartesian product, which this engine does not support.
    DisconnectedQuery,
    /// Every query vertex sits inside an OPTIONAL clause; there is no
    /// required part to anchor the search.
    NoRequiredPart,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::DisconnectedQuery => {
                write!(
                    f,
                    "query graph is disconnected (cartesian products are not supported)"
                )
            }
            EngineError::NoRequiredPart => {
                write!(f, "query has no required (non-OPTIONAL) part")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// The TurboHOM / TurboHOM++ execution engine over one transformed data graph.
pub struct TurboHomEngine<'a> {
    data: &'a TransformedGraph,
    dictionary: &'a Dictionary,
    config: TurboHomConfig,
}

impl<'a> TurboHomEngine<'a> {
    /// Creates an engine for `data`. The `dictionary` is needed to evaluate
    /// FILTER expressions (it maps matched vertices back to RDF terms).
    pub fn new(
        data: &'a TransformedGraph,
        dictionary: &'a Dictionary,
        config: TurboHomConfig,
    ) -> Self {
        TurboHomEngine {
            data,
            dictionary,
            config,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &TurboHomConfig {
        &self.config
    }

    /// Executes one (union-free) transformed query.
    pub fn execute(&self, query: &TransformedQuery) -> Result<MatchResult, EngineError> {
        self.execute_with_order(query, None)
            .map(|(result, _)| result)
    }

    /// Executes like [`execute`](Self::execute), but additionally accepts a
    /// matching order computed by a previous run of the *same* query on the
    /// *same* data graph (the plan-cache warm path), and returns the order
    /// this run computed so the caller can cache it.
    ///
    /// The preset only takes effect under `+REUSE` (without it the order is
    /// per-region by design). When a preset is supplied, no order is computed
    /// at all — `MatchStats::matching_orders_computed` stays `0` — and the
    /// returned order is `None` (the caller already holds it).
    pub fn execute_with_order(
        &self,
        query: &TransformedQuery,
        preset_order: Option<&MatchingOrder>,
    ) -> Result<(MatchResult, Option<MatchingOrder>), EngineError> {
        self.execute_with_order_traced(query, preset_order, &Trace::disabled(), None)
    }

    /// Executes like [`execute_with_order`](Self::execute_with_order) while
    /// recording spans into `trace` (under `parent`). With a
    /// [detailed](Trace::is_detailed) trace this times candidate-region
    /// exploration, matching-order determination and enumeration separately
    /// (they interleave per region, so each is emitted as one rolled-up
    /// span), plus one span per parallel worker; a coarse or disabled trace
    /// makes this identical to the untraced path.
    pub fn execute_with_order_traced(
        &self,
        query: &TransformedQuery,
        preset_order: Option<&MatchingOrder>,
        trace: &Trace,
        parent: Option<SpanId>,
    ) -> Result<(MatchResult, Option<MatchingOrder>), EngineError> {
        if query.unsatisfiable || query.graph.vertex_count() == 0 {
            return Ok((MatchResult::default(), None));
        }
        if !query.graph.is_connected() {
            return Err(EngineError::DisconnectedQuery);
        }
        if query.vertex_clause.iter().all(|c| c.is_some()) {
            return Err(EngineError::NoRequiredPart);
        }

        let mut stats = MatchStats::default();
        let selection = choose_start_vertex(self.data, &self.config, query, &mut stats);
        if selection.start_vertices.is_empty() {
            return Ok((
                MatchResult {
                    stats,
                    ..MatchResult::default()
                },
                None,
            ));
        }
        let tree = QueryTree::build(&query.graph, selection.query_vertex);
        debug_assert!(tree.spans(&query.graph));

        // Split the FILTER expressions: cheap single-variable filters on
        // required vertices are evaluated inline while matching; the rest
        // (join conditions, regular expressions, filters over OPTIONAL
        // variables) are applied to complete solutions afterwards
        // (Section 5.1).
        let (inline_filters, post_filters) = self.split_filters(query);
        // With expensive filters pending, the search must materialize
        // solutions and must not cut off at the limit prematurely.
        let mut search_config = self.config;
        if !post_filters.is_empty() {
            search_config.count_only = false;
            search_config.max_solutions = None;
        }

        let (result, computed_order) = if self.config.threads <= 1 {
            self.run_sequential(
                query,
                &tree,
                &selection.start_vertices,
                &search_config,
                &inline_filters,
                preset_order,
                stats,
                trace,
                parent,
            )
        } else {
            match self.config.scheduler {
                Scheduler::Morsel => self.run_parallel_morsel(
                    query,
                    &tree,
                    &selection.start_vertices,
                    &search_config,
                    &inline_filters,
                    preset_order,
                    stats,
                    trace,
                    parent,
                ),
                Scheduler::Chunked => self.run_parallel_chunked(
                    query,
                    &tree,
                    &selection.start_vertices,
                    &search_config,
                    &inline_filters,
                    preset_order,
                    stats,
                    trace,
                    parent,
                ),
            }
        };
        let mut result = result;

        if !post_filters.is_empty() {
            self.apply_post_filters(query, &post_filters, &mut result);
        }
        if let Some(limit) = self.config.max_solutions {
            if result.solutions.len() > limit {
                result.solutions.truncate(limit);
            }
            result.solution_count = result.solution_count.min(limit);
        }
        if self.config.count_only {
            result.solutions.clear();
        }
        Ok((result, computed_order))
    }

    /// Sequential execution (Algorithm 1's outer loop).
    #[allow(clippy::too_many_arguments)]
    fn run_sequential(
        &self,
        query: &TransformedQuery,
        tree: &QueryTree,
        starts: &[VertexId],
        config: &TurboHomConfig,
        inline_filters: &[Vec<&Expression>],
        preset_order: Option<&MatchingOrder>,
        mut stats: MatchStats,
        trace: &Trace,
        parent: Option<SpanId>,
    ) -> (MatchResult, Option<MatchingOrder>) {
        let detailed = trace.is_detailed();
        let mut clock = StageClock::default();
        let mut solutions = Vec::new();
        let mut count = 0usize;
        let mut step_rows: Vec<u64> = Vec::new();
        let mut step_estimates: Vec<u64> = Vec::new();
        let mut shared_order: Option<MatchingOrder> = None;
        for &vs in starts {
            stats.candidate_regions += 1;
            let region = timed(detailed, &mut clock.explore, || {
                explore_candidate_region(self.data, config, query, tree, vs, &mut stats)
            });
            let Some(region) = region else {
                continue;
            };
            stats.nonempty_regions += 1;
            let order_storage;
            let order = if config.optimizations.reuse_matching_order {
                if let Some(preset) = preset_order {
                    preset
                } else {
                    if shared_order.is_none() {
                        shared_order = Some(timed(detailed, &mut clock.order, || {
                            MatchingOrder::determine(query, tree, &region)
                        }));
                        stats.matching_orders_computed += 1;
                    }
                    shared_order.as_ref().unwrap()
                }
            } else {
                order_storage = timed(detailed, &mut clock.order, || {
                    MatchingOrder::determine(query, tree, &region)
                });
                stats.matching_orders_computed += 1;
                &order_storage
            };
            accumulate_estimates(&mut step_estimates, order, &region);
            let mut searcher = SubgraphSearcher::new(
                self.data,
                config,
                query,
                tree,
                order,
                self.dictionary,
                inline_filters.to_vec(),
            );
            timed(detailed, &mut clock.search, || {
                searcher.search_region(&region, vs)
            });
            count += searcher.solution_count;
            solutions.append(&mut searcher.solutions);
            stats.merge(&searcher.stats);
            merge_step_counts(&mut step_rows, &searcher.step_rows);
            if let Some(limit) = config.max_solutions {
                if count >= limit {
                    break;
                }
            }
        }
        if detailed {
            record_stage_spans(trace, parent, &clock, &stats, &[]);
        }
        (
            MatchResult {
                solutions,
                solution_count: count,
                stats,
                step_rows,
                step_estimates,
            },
            shared_order,
        )
    }

    /// With +REUSE the matching order comes from the first non-empty region;
    /// the parallel paths compute it up front so every worker can share it.
    fn precompute_shared_order(
        &self,
        query: &TransformedQuery,
        tree: &QueryTree,
        starts: &[VertexId],
        config: &TurboHomConfig,
        preset_order: Option<&MatchingOrder>,
        stats: &mut MatchStats,
    ) -> Option<MatchingOrder> {
        if !config.optimizations.reuse_matching_order || preset_order.is_some() {
            return None;
        }
        for &vs in starts {
            stats.candidate_regions += 1;
            if let Some(region) =
                explore_candidate_region(self.data, config, query, tree, vs, stats)
            {
                stats.nonempty_regions += 1;
                let order = MatchingOrder::determine(query, tree, &region);
                stats.matching_orders_computed += 1;
                // This region is searched again by a worker below; the
                // duplicate exploration is negligible (one region).
                stats.candidate_regions -= 1;
                stats.nonempty_regions -= 1;
                return Some(order);
            }
        }
        None
    }

    /// Morsel-driven parallel execution (the default scheduler). Start
    /// vertices are ranked heaviest-first by total degree, split into
    /// per-worker ranges, and claimed in small morsels; an idle worker steals
    /// the back half of a victim's remaining range (see [`MorselQueue`]).
    /// A shared solution counter lets every worker stop as soon as the
    /// configured `max_solutions` limit is reached globally.
    #[allow(clippy::too_many_arguments)]
    fn run_parallel_morsel(
        &self,
        query: &TransformedQuery,
        tree: &QueryTree,
        starts: &[VertexId],
        config: &TurboHomConfig,
        inline_filters: &[Vec<&Expression>],
        preset_order: Option<&MatchingOrder>,
        mut stats: MatchStats,
        trace: &Trace,
        parent: Option<SpanId>,
    ) -> (MatchResult, Option<MatchingOrder>) {
        let detailed = trace.is_detailed();
        let mut clock = StageClock::default();
        let shared_order = timed(detailed, &mut clock.order, || {
            self.precompute_shared_order(query, tree, starts, config, preset_order, &mut stats)
        });
        let shared_order_ref = if config.optimizations.reuse_matching_order {
            preset_order.or(shared_order.as_ref())
        } else {
            None
        };

        // Heavy regions first: a candidate region can only be as large as the
        // adjacency of its start vertex, so total degree is a cheap, effective
        // size rank. Claimed early, the giant regions overlap with the long
        // tail of small ones instead of serializing at the end.
        let mut ordered: Vec<VertexId> = starts.to_vec();
        ordered.sort_by_key(|&v| std::cmp::Reverse(self.data.graph.total_degree(v)));

        let workers = config.threads;
        let queue = MorselQueue::new(
            ordered.len(),
            workers,
            MorselQueue::default_morsel_size(ordered.len(), workers),
        );
        let found = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let merged: Mutex<MergeAcc> = Mutex::new((Vec::new(), 0, stats, Vec::new(), Vec::new()));
        let timings: Mutex<Vec<WorkerTiming>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for w in 0..workers {
                let queue = &queue;
                let ordered = &ordered;
                let found = &found;
                let stop = &stop;
                let merged = &merged;
                let timings = &timings;
                scope.spawn(move || {
                    let worker_start = Instant::now();
                    let mut local_clock = StageClock::default();
                    let mut local_solutions: Vec<Solution> = Vec::new();
                    let mut local_count = 0usize;
                    let mut local_stats = MatchStats::default();
                    let mut local_rows: Vec<u64> = Vec::new();
                    let mut local_estimates: Vec<u64> = Vec::new();
                    'work: while let Some(morsel) = queue.pop(w) {
                        local_stats.morsels += 1;
                        if morsel.stolen {
                            local_stats.morsels_stolen += 1;
                        }
                        for &vs in &ordered[morsel.start..morsel.end] {
                            if stop.load(Ordering::Relaxed) {
                                break 'work;
                            }
                            local_stats.candidate_regions += 1;
                            let region = timed(detailed, &mut local_clock.explore, || {
                                explore_candidate_region(
                                    self.data,
                                    config,
                                    query,
                                    tree,
                                    vs,
                                    &mut local_stats,
                                )
                            });
                            let Some(region) = region else {
                                continue;
                            };
                            local_stats.nonempty_regions += 1;
                            let order_storage;
                            let order = match shared_order_ref {
                                Some(o) => o,
                                None => {
                                    order_storage = timed(detailed, &mut local_clock.order, || {
                                        MatchingOrder::determine(query, tree, &region)
                                    });
                                    local_stats.matching_orders_computed += 1;
                                    &order_storage
                                }
                            };
                            accumulate_estimates(&mut local_estimates, order, &region);
                            let mut searcher = SubgraphSearcher::new(
                                self.data,
                                config,
                                query,
                                tree,
                                order,
                                self.dictionary,
                                inline_filters.to_vec(),
                            );
                            timed(detailed, &mut local_clock.search, || {
                                searcher.search_region(&region, vs)
                            });
                            local_count += searcher.solution_count;
                            local_solutions.append(&mut searcher.solutions);
                            local_stats.merge(&searcher.stats);
                            merge_step_counts(&mut local_rows, &searcher.step_rows);
                            if let Some(limit) = config.max_solutions {
                                let total = found
                                    .fetch_add(searcher.solution_count, Ordering::Relaxed)
                                    + searcher.solution_count;
                                if total >= limit {
                                    stop.store(true, Ordering::Relaxed);
                                    break 'work;
                                }
                            }
                        }
                    }
                    if detailed {
                        timings.lock().push(WorkerTiming {
                            worker: w,
                            busy: worker_start.elapsed(),
                            clock: local_clock,
                            stats: local_stats,
                            solutions: local_count,
                        });
                    }
                    let mut guard = merged.lock();
                    guard.0.append(&mut local_solutions);
                    guard.1 += local_count;
                    guard.2.merge(&local_stats);
                    merge_step_counts(&mut guard.3, &local_rows);
                    merge_step_counts(&mut guard.4, &local_estimates);
                });
            }
        });

        let (solutions, count, mut stats, step_rows, step_estimates) = merged.into_inner();
        stats.morsels_stolen = stats.morsels_stolen.max(queue.stolen_count());
        if detailed {
            let mut workers = timings.into_inner();
            workers.sort_by_key(|t| t.worker);
            for t in &workers {
                clock.add(&t.clock);
            }
            record_stage_spans(trace, parent, &clock, &stats, &workers);
        }
        (
            MatchResult {
                solutions,
                solution_count: count,
                stats,
                step_rows,
                step_estimates,
            },
            shared_order,
        )
    }

    /// Legacy parallel execution: starting vertices are handed to worker
    /// threads in small dynamic chunks off one shared cursor (the pre-morsel
    /// scheduler, kept behind [`Scheduler::Chunked`] for A/B benchmarking).
    /// Each candidate region is explored and searched entirely by one thread;
    /// results are merged at the end.
    #[allow(clippy::too_many_arguments)]
    fn run_parallel_chunked(
        &self,
        query: &TransformedQuery,
        tree: &QueryTree,
        starts: &[VertexId],
        config: &TurboHomConfig,
        inline_filters: &[Vec<&Expression>],
        preset_order: Option<&MatchingOrder>,
        mut stats: MatchStats,
        trace: &Trace,
        parent: Option<SpanId>,
    ) -> (MatchResult, Option<MatchingOrder>) {
        let detailed = trace.is_detailed();
        let mut clock = StageClock::default();
        let shared_order = timed(detailed, &mut clock.order, || {
            self.precompute_shared_order(query, tree, starts, config, preset_order, &mut stats)
        });

        let next = AtomicUsize::new(0);
        let merged: Mutex<MergeAcc> = Mutex::new((Vec::new(), 0, stats, Vec::new(), Vec::new()));
        let timings: Mutex<Vec<WorkerTiming>> = Mutex::new(Vec::new());
        // Like the sequential path, the preset only applies under +REUSE;
        // without it every region determines its own order.
        let shared_order_ref = if config.optimizations.reuse_matching_order {
            preset_order.or(shared_order.as_ref())
        } else {
            None
        };
        let chunk = chunk_size(starts.len(), config.threads);

        std::thread::scope(|scope| {
            for w in 0..config.threads {
                let timings = &timings;
                let next = &next;
                let merged = &merged;
                let shared_order_ref = &shared_order_ref;
                scope.spawn(move || {
                    let worker_start = Instant::now();
                    let mut local_clock = StageClock::default();
                    let mut local_solutions: Vec<Solution> = Vec::new();
                    let mut local_count = 0usize;
                    let mut local_stats = MatchStats::default();
                    let mut local_rows: Vec<u64> = Vec::new();
                    let mut local_estimates: Vec<u64> = Vec::new();
                    loop {
                        let begin = next.fetch_add(chunk, Ordering::Relaxed);
                        if begin >= starts.len() {
                            break;
                        }
                        let end = (begin + chunk).min(starts.len());
                        for &vs in &starts[begin..end] {
                            local_stats.candidate_regions += 1;
                            let region = timed(detailed, &mut local_clock.explore, || {
                                explore_candidate_region(
                                    self.data,
                                    config,
                                    query,
                                    tree,
                                    vs,
                                    &mut local_stats,
                                )
                            });
                            let Some(region) = region else {
                                continue;
                            };
                            local_stats.nonempty_regions += 1;
                            let order_storage;
                            let order = match shared_order_ref {
                                Some(o) => *o,
                                None => {
                                    order_storage = timed(detailed, &mut local_clock.order, || {
                                        MatchingOrder::determine(query, tree, &region)
                                    });
                                    local_stats.matching_orders_computed += 1;
                                    &order_storage
                                }
                            };
                            accumulate_estimates(&mut local_estimates, order, &region);
                            let mut searcher = SubgraphSearcher::new(
                                self.data,
                                config,
                                query,
                                tree,
                                order,
                                self.dictionary,
                                inline_filters.to_vec(),
                            );
                            timed(detailed, &mut local_clock.search, || {
                                searcher.search_region(&region, vs)
                            });
                            local_count += searcher.solution_count;
                            local_solutions.append(&mut searcher.solutions);
                            local_stats.merge(&searcher.stats);
                            merge_step_counts(&mut local_rows, &searcher.step_rows);
                        }
                    }
                    if detailed {
                        timings.lock().push(WorkerTiming {
                            worker: w,
                            busy: worker_start.elapsed(),
                            clock: local_clock,
                            stats: local_stats,
                            solutions: local_count,
                        });
                    }
                    let mut guard = merged.lock();
                    guard.0.append(&mut local_solutions);
                    guard.1 += local_count;
                    guard.2.merge(&local_stats);
                    merge_step_counts(&mut guard.3, &local_rows);
                    merge_step_counts(&mut guard.4, &local_estimates);
                });
            }
        });

        let (solutions, count, stats, step_rows, step_estimates) = merged.into_inner();
        if detailed {
            let mut workers = timings.into_inner();
            workers.sort_by_key(|t| t.worker);
            for t in &workers {
                clock.add(&t.clock);
            }
            record_stage_spans(trace, parent, &clock, &stats, &workers);
        }
        (
            MatchResult {
                solutions,
                solution_count: count,
                stats,
                step_rows,
                step_estimates,
            },
            shared_order,
        )
    }

    /// Splits the query's filters into per-vertex inline filters and
    /// post-hoc filters.
    fn split_filters<'q>(
        &self,
        query: &'q TransformedQuery,
    ) -> (Vec<Vec<&'q Expression>>, Vec<&'q Expression>) {
        let mut inline: Vec<Vec<&Expression>> = vec![Vec::new(); query.graph.vertex_count()];
        let mut post: Vec<&Expression> = Vec::new();
        for filter in &query.filters {
            let mut vars = filter.variables();
            vars.sort();
            vars.dedup();
            let single_required_vertex = if vars.len() == 1 && !filter.is_expensive() {
                query
                    .graph
                    .vertex_of_variable(&vars[0])
                    .filter(|&u| query.vertex_clause[u].is_none())
            } else {
                None
            };
            match single_required_vertex {
                Some(u) => inline[u].push(filter),
                None => post.push(filter),
            }
        }
        (inline, post)
    }

    /// Applies the expensive filters to the materialized solutions.
    fn apply_post_filters(
        &self,
        query: &TransformedQuery,
        filters: &[&Expression],
        result: &mut MatchResult,
    ) {
        let before = result.solutions.len();
        let solutions = std::mem::take(&mut result.solutions);
        result.solutions = solutions
            .into_iter()
            .filter(|s| {
                let ctx = self.binding_context(query, s);
                filters.iter().all(|f| f.evaluate_bool(&ctx))
            })
            .collect();
        let removed = before - result.solutions.len();
        result.stats.filtered_post += removed;
        result.solution_count = result.solutions.len();
    }

    /// Builds the variable → term context of one solution (vertex variables
    /// and variable predicates).
    fn binding_context(&self, query: &TransformedQuery, solution: &Solution) -> EvalContext {
        let mut ctx = EvalContext::new();
        for (i, qv) in query.graph.vertices().iter().enumerate() {
            if let (Some(var), Some(Some(v))) = (&qv.variable, solution.vertices.get(i)) {
                if let Some(term) = self
                    .data
                    .mappings
                    .term_of_vertex(*v)
                    .and_then(|tid| self.dictionary.term(tid))
                {
                    ctx.insert(var.clone(), term);
                }
            }
        }
        for (ei, qe) in query.graph.edges().iter().enumerate() {
            if let (Some(var), Some(Some(el))) = (&qe.variable, solution.edge_labels.get(ei)) {
                if let Some(term) = self
                    .data
                    .mappings
                    .term_of_elabel(*el)
                    .and_then(|tid| self.dictionary.term(tid))
                {
                    ctx.insert(var.clone(), term);
                }
            }
        }
        ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbohom_rdf::{vocab, Dataset, Term};
    use turbohom_sparql::parse_query;
    use turbohom_transform::{transform_query, type_aware_transform};

    fn ub(l: &str) -> String {
        format!("http://ub.org/{l}")
    }

    /// A small university dataset: 3 universities, each with 2 departments,
    /// each with 4 students who hold an undergraduate degree from the
    /// *same* university their department belongs to (so the triangle query
    /// has 3 × 2 × 4 = 24 solutions).
    fn university_dataset() -> Dataset {
        let mut ds = Dataset::new();
        for u in 0..3 {
            let univ = ub(&format!("univ{u}"));
            ds.insert_iris(&univ, vocab::RDF_TYPE, &ub("University"));
            for d in 0..2 {
                let dept = ub(&format!("dept{u}_{d}"));
                ds.insert_iris(&dept, vocab::RDF_TYPE, &ub("Department"));
                ds.insert_iris(&dept, &ub("subOrganizationOf"), &univ);
                for s in 0..4 {
                    let student = ub(&format!("student{u}_{d}_{s}"));
                    ds.insert_iris(&student, vocab::RDF_TYPE, &ub("GraduateStudent"));
                    ds.insert_iris(&student, vocab::RDF_TYPE, &ub("Student"));
                    ds.insert_iris(&student, &ub("memberOf"), &dept);
                    ds.insert_iris(&student, &ub("undergraduateDegreeFrom"), &univ);
                    ds.insert(
                        &Term::iri(student.clone()),
                        &Term::iri(ub("age")),
                        &Term::integer(20 + s as i64),
                    );
                }
            }
        }
        ds
    }

    const TRIANGLE: &str = r#"
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        PREFIX ub: <http://ub.org/>
        SELECT ?x ?y ?z WHERE {
            ?x rdf:type ub:Student . ?y rdf:type ub:University . ?z rdf:type ub:Department .
            ?x ub:undergraduateDegreeFrom ?y . ?x ub:memberOf ?z . ?z ub:subOrganizationOf ?y .
        }"#;

    fn execute(
        ds: &Dataset,
        data: &TransformedGraph,
        sparql: &str,
        config: TurboHomConfig,
    ) -> MatchResult {
        let q = parse_query(sparql).unwrap();
        let tq = transform_query(&q.pattern, data, &ds.dictionary).unwrap();
        TurboHomEngine::new(data, &ds.dictionary, config)
            .execute(&tq)
            .unwrap()
    }

    #[test]
    fn triangle_query_counts_solutions() {
        let ds = university_dataset();
        let data = type_aware_transform(&ds);
        let result = execute(&ds, &data, TRIANGLE, TurboHomConfig::default());
        assert_eq!(result.len(), 24);
        assert_eq!(result.solutions.len(), 24);
        assert!(result.stats.nonempty_regions > 0);
    }

    #[test]
    fn turbohom_and_turbohom_plus_plus_agree() {
        let ds = university_dataset();
        let data = type_aware_transform(&ds);
        let plus = execute(&ds, &data, TRIANGLE, TurboHomConfig::turbohom_plus_plus());
        let plain = execute(&ds, &data, TRIANGLE, TurboHomConfig::turbohom());
        assert_eq!(plus.len(), plain.len());
    }

    #[test]
    fn parallel_execution_matches_sequential() {
        let ds = university_dataset();
        let data = type_aware_transform(&ds);
        let seq = execute(&ds, &data, TRIANGLE, TurboHomConfig::default());
        for threads in [2, 4, 8] {
            let par = execute(
                &ds,
                &data,
                TRIANGLE,
                TurboHomConfig::default().with_threads(threads),
            );
            assert_eq!(par.len(), seq.len(), "threads = {threads}");
            // Same multiset of solutions.
            let mut a: Vec<_> = seq.solutions.iter().map(|s| s.vertices.clone()).collect();
            let mut b: Vec<_> = par.solutions.iter().map(|s| s.vertices.clone()).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn both_schedulers_match_sequential() {
        let ds = university_dataset();
        let data = type_aware_transform(&ds);
        let seq = execute(&ds, &data, TRIANGLE, TurboHomConfig::default());
        let mut expected: Vec<_> = seq.solutions.iter().map(|s| s.vertices.clone()).collect();
        expected.sort();
        for scheduler in [Scheduler::Morsel, Scheduler::Chunked] {
            let par = execute(
                &ds,
                &data,
                TRIANGLE,
                TurboHomConfig::default()
                    .with_threads(4)
                    .with_scheduler(scheduler),
            );
            assert_eq!(par.len(), seq.len(), "{scheduler:?}");
            let mut got: Vec<_> = par.solutions.iter().map(|s| s.vertices.clone()).collect();
            got.sort();
            assert_eq!(got, expected, "{scheduler:?}");
        }
    }

    #[test]
    fn morsel_scheduler_counts_morsels() {
        let ds = university_dataset();
        let data = type_aware_transform(&ds);
        let par = execute(
            &ds,
            &data,
            TRIANGLE,
            TurboHomConfig::default().with_threads(4),
        );
        assert!(
            par.stats.morsels > 0,
            "morsel scheduler must record morsels"
        );
        // The chunked legacy path records none.
        let chunked = execute(
            &ds,
            &data,
            TRIANGLE,
            TurboHomConfig::default()
                .with_threads(4)
                .with_scheduler(Scheduler::Chunked),
        );
        assert_eq!(chunked.stats.morsels, 0);
    }

    #[test]
    fn parallel_limit_stops_early_and_is_exact() {
        let ds = university_dataset();
        let data = type_aware_transform(&ds);
        for threads in [2, 4] {
            let config = TurboHomConfig {
                max_solutions: Some(5),
                ..TurboHomConfig::default().with_threads(threads)
            };
            let result = execute(&ds, &data, TRIANGLE, config);
            assert_eq!(result.len(), 5, "threads = {threads}");
            assert_eq!(result.solutions.len(), 5);
        }
    }

    #[test]
    fn cheap_filter_is_applied_inline() {
        let ds = university_dataset();
        let data = type_aware_transform(&ds);
        let result = execute(
            &ds,
            &data,
            r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
               PREFIX ub: <http://ub.org/>
               SELECT ?x ?age WHERE {
                 ?x rdf:type ub:Student . ?x ub:age ?age . FILTER (?age >= 22)
               }"#,
            TurboHomConfig::default(),
        );
        // Ages are 20..=23 per department, 6 departments → ages 22 and 23 → 12 students.
        assert_eq!(result.len(), 12);
        assert!(result.stats.filtered_inline > 0);
        assert_eq!(result.stats.filtered_post, 0);
    }

    #[test]
    fn expensive_join_filter_is_applied_post_hoc() {
        let ds = university_dataset();
        let data = type_aware_transform(&ds);
        let result = execute(
            &ds,
            &data,
            r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
               PREFIX ub: <http://ub.org/>
               SELECT ?a ?b WHERE {
                 ?a rdf:type ub:Student . ?b rdf:type ub:Student .
                 ?a ub:memberOf ?d . ?b ub:memberOf ?d .
                 ?a ub:age ?agea . ?b ub:age ?ageb .
                 FILTER (?agea > ?ageb)
               }"#,
            TurboHomConfig::default(),
        );
        // Per department: pairs (a, b) with age_a > age_b out of 4 students
        // with distinct ages = C(4,2) = 6; times 6 departments = 36.
        assert_eq!(result.len(), 36);
        assert!(result.stats.filtered_post > 0);
    }

    #[test]
    fn unsatisfiable_query_returns_empty_without_search() {
        let ds = university_dataset();
        let data = type_aware_transform(&ds);
        let q = parse_query(
            r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
               PREFIX ub: <http://ub.org/>
               SELECT ?x WHERE { ?x rdf:type ub:Starship . }"#,
        )
        .unwrap();
        let tq = transform_query(&q.pattern, &data, &ds.dictionary).unwrap();
        let result = TurboHomEngine::new(&data, &ds.dictionary, TurboHomConfig::default())
            .execute(&tq)
            .unwrap();
        assert!(result.is_empty());
        assert_eq!(result.stats.candidate_regions, 0);
    }

    #[test]
    fn disconnected_query_is_rejected() {
        let ds = university_dataset();
        let data = type_aware_transform(&ds);
        let q = parse_query(
            r#"PREFIX ub: <http://ub.org/>
               SELECT ?a ?b WHERE { ?a ub:memberOf ?d . ?b ub:subOrganizationOf ?u . }"#,
        )
        .unwrap();
        let tq = transform_query(&q.pattern, &data, &ds.dictionary).unwrap();
        let err = TurboHomEngine::new(&data, &ds.dictionary, TurboHomConfig::default())
            .execute(&tq)
            .unwrap_err();
        assert_eq!(err, EngineError::DisconnectedQuery);
        assert!(err.to_string().contains("disconnected"));
    }

    #[test]
    fn direct_and_type_aware_transformations_agree() {
        let ds = university_dataset();
        let aware = type_aware_transform(&ds);
        let direct = turbohom_transform::direct_transform(&ds);
        let a = execute(&ds, &aware, TRIANGLE, TurboHomConfig::default());
        let q = parse_query(TRIANGLE).unwrap();
        let tq = transform_query(&q.pattern, &direct, &ds.dictionary).unwrap();
        let d = TurboHomEngine::new(&direct, &ds.dictionary, TurboHomConfig::turbohom())
            .execute(&tq)
            .unwrap();
        assert_eq!(a.len(), d.len());
        assert_eq!(a.len(), 24);
    }

    #[test]
    fn reuse_matching_order_computes_it_once() {
        let ds = university_dataset();
        let data = type_aware_transform(&ds);
        let with_reuse = execute(&ds, &data, TRIANGLE, TurboHomConfig::default());
        assert_eq!(with_reuse.stats.matching_orders_computed, 1);
        let without = execute(
            &ds,
            &data,
            TRIANGLE,
            TurboHomConfig::default().with_optimizations(crate::config::Optimizations::none()),
        );
        assert!(without.stats.matching_orders_computed >= 1);
        assert_eq!(
            without.stats.matching_orders_computed,
            without.stats.nonempty_regions
        );
    }

    #[test]
    fn step_counters_cover_every_order_position_and_agree_across_schedulers() {
        let ds = university_dataset();
        let data = type_aware_transform(&ds);
        let seq = execute(&ds, &data, TRIANGLE, TurboHomConfig::default());
        // One slot per query vertex, for both actuals and estimates.
        assert_eq!(seq.step_rows.len(), 3);
        assert_eq!(seq.step_estimates.len(), 3);
        // Every step bound at least one candidate (the query has solutions),
        // and the final step produced exactly the solution count (no
        // variable-predicate fan-out in this query).
        assert!(seq.step_rows.iter().all(|&r| r > 0));
        assert_eq!(*seq.step_rows.last().unwrap(), 24);
        assert!(seq.step_estimates.iter().all(|&e| e > 0));
        // Parallel execution visits the same regions, so the summed per-step
        // counters are identical regardless of scheduler.
        for scheduler in [Scheduler::Morsel, Scheduler::Chunked] {
            let par = execute(
                &ds,
                &data,
                TRIANGLE,
                TurboHomConfig::default()
                    .with_threads(4)
                    .with_scheduler(scheduler),
            );
            assert_eq!(par.step_rows, seq.step_rows, "{scheduler:?}");
            assert_eq!(par.step_estimates, seq.step_estimates, "{scheduler:?}");
        }
    }

    #[test]
    fn preset_matching_order_skips_order_computation() {
        let ds = university_dataset();
        let data = type_aware_transform(&ds);
        let q = parse_query(TRIANGLE).unwrap();
        let tq = transform_query(&q.pattern, &data, &ds.dictionary).unwrap();
        let engine = TurboHomEngine::new(&data, &ds.dictionary, TurboHomConfig::default());
        // Cold run: computes the order once (+REUSE) and hands it back.
        let (cold, order) = engine.execute_with_order(&tq, None).unwrap();
        assert_eq!(cold.stats.matching_orders_computed, 1);
        let order = order.expect("cold run must surface the computed order");
        // Warm run: the preset is used, no order is determined at all.
        let (warm, recomputed) = engine.execute_with_order(&tq, Some(&order)).unwrap();
        assert_eq!(warm.stats.matching_orders_computed, 0);
        assert!(recomputed.is_none());
        assert_eq!(warm.len(), cold.len());
        let mut a: Vec<_> = cold.solutions.iter().map(|s| s.vertices.clone()).collect();
        let mut b: Vec<_> = warm.solutions.iter().map(|s| s.vertices.clone()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // The same holds for the parallel path.
        let par_engine = TurboHomEngine::new(
            &data,
            &ds.dictionary,
            TurboHomConfig::default().with_threads(4),
        );
        let (par, recomputed) = par_engine.execute_with_order(&tq, Some(&order)).unwrap();
        assert_eq!(par.stats.matching_orders_computed, 0);
        assert!(recomputed.is_none());
        assert_eq!(par.len(), cold.len());
    }

    #[test]
    fn detailed_trace_records_stage_and_worker_spans() {
        let ds = university_dataset();
        let data = type_aware_transform(&ds);
        let q = parse_query(TRIANGLE).unwrap();
        let tq = transform_query(&q.pattern, &data, &ds.dictionary).unwrap();

        // Sequential: the three stage rollups appear under the given parent.
        let engine = TurboHomEngine::new(&data, &ds.dictionary, TurboHomConfig::default());
        let trace = Trace::detailed(11);
        let root = trace.span("execute");
        let root_id = root.id();
        let (result, _) = engine
            .execute_with_order_traced(&tq, None, &trace, root_id)
            .unwrap();
        root.finish();
        let report = trace.finish();
        assert_eq!(result.len(), 24);
        for stage in ["candidate_regions", "matching_order", "enumeration"] {
            let span = report
                .spans
                .iter()
                .find(|s| s.name == stage)
                .unwrap_or_else(|| panic!("missing {stage} span"));
            assert_eq!(span.parent, root_id);
        }
        let regions = report
            .spans
            .iter()
            .find(|s| s.name == "candidate_regions")
            .unwrap();
        assert!(regions
            .counters
            .contains(&("regions", result.stats.candidate_regions as u64)));
        let enumeration = report
            .spans
            .iter()
            .find(|s| s.name == "enumeration")
            .unwrap();
        assert!(enumeration
            .counters
            .contains(&("solutions", result.stats.solutions as u64)));
        // Sequential runs emit no worker spans.
        assert!(report.spans.iter().all(|s| s.name != "worker"));

        // Parallel: one worker span per thread, parented under enumeration.
        for scheduler in [Scheduler::Morsel, Scheduler::Chunked] {
            let engine = TurboHomEngine::new(
                &data,
                &ds.dictionary,
                TurboHomConfig::default()
                    .with_threads(3)
                    .with_scheduler(scheduler),
            );
            let trace = Trace::detailed(12);
            let (result, _) = engine
                .execute_with_order_traced(&tq, None, &trace, None)
                .unwrap();
            assert_eq!(result.len(), 24, "{scheduler:?}");
            let report = trace.finish();
            let enum_id = report
                .spans
                .iter()
                .find(|s| s.name == "enumeration")
                .map(|s| s.id);
            let workers: Vec<_> = report.spans.iter().filter(|s| s.name == "worker").collect();
            assert_eq!(workers.len(), 3, "{scheduler:?}");
            assert!(workers.iter().all(|s| s.parent == enum_id));
            let worker_solutions: u64 = workers
                .iter()
                .map(|s| {
                    s.counters
                        .iter()
                        .find(|(n, _)| *n == "solutions")
                        .map_or(0, |(_, v)| *v)
                })
                .sum();
            assert_eq!(worker_solutions, 24, "{scheduler:?}");
        }

        // An untraced (or coarse) run records nothing from the core.
        let trace = Trace::new(13);
        let engine = TurboHomEngine::new(&data, &ds.dictionary, TurboHomConfig::default());
        let (_, _) = engine
            .execute_with_order_traced(&tq, None, &trace, None)
            .unwrap();
        assert!(trace.finish().spans.is_empty());
    }

    #[test]
    fn bound_entity_query_explores_single_region() {
        let ds = university_dataset();
        let data = type_aware_transform(&ds);
        let result = execute(
            &ds,
            &data,
            r#"PREFIX ub: <http://ub.org/>
               SELECT ?d WHERE { <http://ub.org/student0_0_0> ub:memberOf ?d . }"#,
            TurboHomConfig::default(),
        );
        assert_eq!(result.len(), 1);
        assert_eq!(result.stats.candidate_regions, 1);
    }

    #[test]
    fn simple_entailment_restricts_matches() {
        let ds = {
            let mut ds = Dataset::new();
            ds.insert_iris(&ub("g1"), vocab::RDF_TYPE, &ub("GraduateStudent"));
            ds.insert_iris(
                &ub("GraduateStudent"),
                vocab::RDFS_SUBCLASSOF,
                &ub("Student"),
            );
            ds.insert_iris(&ub("u1"), vocab::RDF_TYPE, &ub("Student"));
            ds.insert_iris(&ub("g1"), &ub("knows"), &ub("u1"));
            ds.insert_iris(&ub("u1"), &ub("knows"), &ub("g1"));
            ds
        };
        let data = type_aware_transform(&ds);
        let query = r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
                       PREFIX ub: <http://ub.org/>
                       SELECT ?x WHERE { ?x rdf:type ub:Student . ?x ub:knows ?y . }"#;
        let full = execute(&ds, &data, query, TurboHomConfig::default());
        assert_eq!(full.len(), 2);
        let simple = execute(
            &ds,
            &data,
            query,
            TurboHomConfig {
                simple_entailment: true,
                ..TurboHomConfig::default()
            },
        );
        assert_eq!(simple.len(), 1);
    }
}
