//! Morsel-driven work-stealing distribution of candidate regions.
//!
//! Section 5.2 of the paper parallelizes TurboHOM++ by handing candidate
//! regions (equivalently: start vertices) to worker threads dynamically.
//! This module implements that distribution morsel-style: every worker owns
//! one contiguous range of the start-vertex array and pops small *morsels*
//! (fixed-size runs) off its own front with a single CAS. A worker whose
//! range is exhausted steals the back half of a victim's remaining range, so
//! skewed regions (one giant candidate region next to thousands of tiny
//! ones) no longer serialize behind a shared cursor.
//!
//! Ranges are packed `begin << 32 | end` into one `AtomicU64` per worker, so
//! both pop and steal are single-word CAS operations with no locks.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One unit of work: a contiguous run `start..end` of start-vertex indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// First index (inclusive).
    pub start: usize,
    /// Last index (exclusive).
    pub end: usize,
    /// `true` if this morsel came out of another worker's range.
    pub stolen: bool,
}

/// Lock-free morsel queue over the index range `0..total`.
pub struct MorselQueue {
    /// Per-worker remaining range, packed `begin << 32 | end`.
    segments: Vec<AtomicU64>,
    morsel_size: usize,
    stolen: AtomicUsize,
}

#[inline]
fn pack(begin: usize, end: usize) -> u64 {
    ((begin as u64) << 32) | end as u64
}

#[inline]
fn unpack(word: u64) -> (usize, usize) {
    ((word >> 32) as usize, (word & 0xFFFF_FFFF) as usize)
}

impl MorselQueue {
    /// Picks a morsel size that gives every worker plenty of claims while
    /// keeping per-morsel overhead negligible (mirrors the paper's "small
    /// dynamic chunks").
    pub fn default_morsel_size(total: usize, workers: usize) -> usize {
        (total / (workers.max(1) * 16)).clamp(1, 16)
    }

    /// Splits `0..total` into `workers` contiguous, balanced segments.
    ///
    /// # Panics
    /// Panics if `workers == 0` or `total` does not fit in 32 bits (the CSR
    /// graph caps vertex ids at `u32`, so start lists always fit).
    pub fn new(total: usize, workers: usize, morsel_size: usize) -> Self {
        assert!(workers > 0, "morsel queue needs at least one worker");
        assert!(total <= u32::MAX as usize, "start list too large to pack");
        let base = total / workers;
        let rem = total % workers;
        let mut segments = Vec::with_capacity(workers);
        let mut begin = 0usize;
        for w in 0..workers {
            let len = base + usize::from(w < rem);
            segments.push(AtomicU64::new(pack(begin, begin + len)));
            begin += len;
        }
        debug_assert_eq!(begin, total);
        MorselQueue {
            segments,
            morsel_size: morsel_size.max(1),
            stolen: AtomicUsize::new(0),
        }
    }

    /// Number of morsels that were obtained by stealing so far.
    pub fn stolen_count(&self) -> usize {
        self.stolen.load(Ordering::Relaxed)
    }

    /// Pops the next morsel for `worker`: first off the worker's own range,
    /// then — once that is empty — by stealing the back half of the largest
    /// victim range. Returns `None` when no work is visible anywhere.
    ///
    /// A thief that is mid-steal briefly holds work in neither segment; a
    /// concurrent `pop` can then observe "everything empty" and retire early.
    /// That work is still completed (by the thief itself), so coverage is
    /// exact — only tail parallelism is lost, never correctness.
    pub fn pop(&self, worker: usize) -> Option<Morsel> {
        debug_assert!(worker < self.segments.len());
        // Fast path: claim a morsel off the front of our own range.
        let own = &self.segments[worker];
        loop {
            let cur = own.load(Ordering::Acquire);
            let (begin, end) = unpack(cur);
            if begin >= end {
                break;
            }
            let next = (begin + self.morsel_size).min(end);
            if own
                .compare_exchange_weak(cur, pack(next, end), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(Morsel {
                    start: begin,
                    end: next,
                    stolen: false,
                });
            }
        }
        // Steal path: take the back half of the victim with the most work
        // left, keep retrying while any victim still shows work.
        loop {
            let mut best: Option<(usize, u64, usize, usize)> = None;
            for (v, seg) in self.segments.iter().enumerate() {
                if v == worker {
                    continue;
                }
                let cur = seg.load(Ordering::Acquire);
                let (begin, end) = unpack(cur);
                if begin < end && best.is_none_or(|(_, _, b, e)| end - begin > e - b) {
                    best = Some((v, cur, begin, end));
                }
            }
            let (victim, cur, begin, end) = best?;
            // The victim keeps the front floor(len/2), we take the back
            // ceil(len/2) — always at least one element, so a steal can
            // never come back empty (a 1-element range is taken whole).
            let mid = begin + (end - begin) / 2;
            if self.segments[victim]
                .compare_exchange(cur, pack(begin, mid), Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            self.stolen.fetch_add(1, Ordering::Relaxed);
            // Return the first morsel of the stolen range and install the
            // rest as our own segment (it was empty, and nobody steals from
            // or installs into an empty segment, so a plain store is safe).
            let take = (mid + self.morsel_size).min(end);
            own.store(pack(take, end), Ordering::Release);
            return Some(Morsel {
                start: mid,
                end: take,
                stolen: true,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Drains the queue from one worker id and returns all covered indices.
    fn drain(queue: &MorselQueue, worker: usize) -> Vec<usize> {
        let mut out = Vec::new();
        while let Some(m) = queue.pop(worker) {
            assert!(m.start < m.end);
            out.extend(m.start..m.end);
        }
        out
    }

    #[test]
    fn single_worker_covers_everything_in_order() {
        let q = MorselQueue::new(37, 1, 5);
        let got = drain(&q, 0);
        assert_eq!(got, (0..37).collect::<Vec<_>>());
        assert_eq!(q.stolen_count(), 0);
    }

    #[test]
    fn empty_queue_returns_none() {
        let q = MorselQueue::new(0, 4, 8);
        for w in 0..4 {
            assert_eq!(q.pop(w), None);
        }
    }

    #[test]
    fn one_worker_draining_steals_from_all_segments() {
        let q = MorselQueue::new(100, 4, 8);
        let got = drain(&q, 0);
        let set: HashSet<usize> = got.iter().copied().collect();
        assert_eq!(got.len(), 100);
        assert_eq!(set.len(), 100);
        assert!(q.stolen_count() > 0, "draining foreign segments must steal");
    }

    #[test]
    fn stolen_flag_marks_foreign_morsels() {
        let q = MorselQueue::new(20, 2, 4);
        // Worker 1 drains its own half first, then steals from worker 0.
        let mut own = 0;
        let mut stolen = 0;
        while let Some(m) = q.pop(1) {
            if m.stolen {
                stolen += 1;
                assert!(m.start < 10, "stolen work comes from worker 0's half");
            } else {
                own += 1;
            }
        }
        assert!(own > 0);
        assert!(stolen > 0);
    }

    #[test]
    fn concurrent_drain_covers_each_index_exactly_once() {
        let total = 10_000;
        let workers = 8;
        let q = MorselQueue::new(total, workers, 7);
        let mut per_worker: Vec<Vec<usize>> = Vec::new();
        std::thread::scope(|scope| {
            let q = &q;
            let handles: Vec<_> = (0..workers)
                .map(|w| scope.spawn(move || drain(q, w)))
                .collect();
            for h in handles {
                per_worker.push(h.join().unwrap());
            }
        });
        let mut all: Vec<usize> = per_worker.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..total).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_totals_are_fully_assigned() {
        for total in [1usize, 2, 3, 31, 97] {
            for workers in [1usize, 2, 3, 5] {
                let q = MorselQueue::new(total, workers, 3);
                let mut got: Vec<usize> = (0..workers).flat_map(|w| drain(&q, w)).collect();
                got.sort_unstable();
                assert_eq!(got, (0..total).collect::<Vec<_>>(), "{total}/{workers}");
            }
        }
    }

    #[test]
    fn default_morsel_size_is_clamped() {
        assert_eq!(MorselQueue::default_morsel_size(0, 4), 1);
        assert_eq!(MorselQueue::default_morsel_size(10, 4), 1);
        assert_eq!(MorselQueue::default_morsel_size(10_000, 4), 16);
        assert!(MorselQueue::default_morsel_size(200, 4) >= 1);
    }
}
