//! Property-based tests for the query fingerprint: every *spelling* of a
//! query — whitespace, comments, PREFIX declaration order, prefix names,
//! prefixed-vs-full IRIs, `?`-vs-`$` sigils, keyword case — must normalize
//! to the same fingerprint, and changing the query itself must change it.

use proptest::prelude::*;
use turbohom_sparql::fingerprint;

const RDF_NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
const UB_NS: &str = "http://ub.org/";

/// The abstract query all spellings render: LUBM-Q2-shaped, with a FILTER.
///
/// `P:local` marks a ub-prefixed name, `R:local` an rdf-prefixed name,
/// `?name` a variable; everything else is verbatim.
const TEMPLATE: &[&str] = &[
    "SELECT",
    "?X",
    "?Y",
    "WHERE",
    "{",
    "?X",
    "R:type",
    "P:Student",
    ".",
    "?X",
    "P:memberOf",
    "?Y",
    ".",
    "FILTER",
    "(",
    "?X",
    "!=",
    "?Y",
    ")",
    "}",
];

/// One way of spelling the template.
#[derive(Debug, Clone)]
struct Spelling {
    /// Declare ub before rdf (or the other way around).
    ub_first: bool,
    /// The prefix labels to use for (rdf, ub).
    labels: (String, String),
    /// Per-token: write prefixed names as full IRIs instead.
    expand: Vec<bool>,
    /// Per-gap whitespace choice.
    gaps: Vec<u8>,
    /// Write variables with `$` instead of `?`.
    dollar: bool,
    /// Lowercase the keywords.
    lowercase: bool,
}

fn spelling_strategy() -> impl Strategy<Value = Spelling> {
    (
        proptest::bool::ANY,
        "[a-z]{1,4}",
        "[a-z]{1,4}",
        proptest::collection::vec(proptest::bool::ANY, TEMPLATE.len()),
        proptest::collection::vec(0u8..6, TEMPLATE.len() + 1),
        0u8..4,
    )
        .prop_map(|(ub_first, rdf_label, ub_label, expand, gaps, flags)| {
            let ub_label = if ub_label == rdf_label {
                format!("{ub_label}x")
            } else {
                ub_label
            };
            Spelling {
                ub_first,
                labels: (rdf_label, ub_label),
                expand,
                gaps,
                dollar: flags & 1 != 0,
                lowercase: flags & 2 != 0,
            }
        })
}

fn render(spelling: &Spelling) -> String {
    let gap = |i: usize| match spelling.gaps[i] {
        0 => " ",
        1 => "\n",
        2 => "\t",
        3 => "   ",
        4 => " # a comment\n",
        _ => "\n\n",
    };
    let (rdf_label, ub_label) = &spelling.labels;
    let mut out = String::new();
    let rdf_decl = format!("PREFIX {rdf_label}: <{RDF_NS}>\n");
    let ub_decl = format!("PREFIX {ub_label}: <{UB_NS}>\n");
    if spelling.ub_first {
        out.push_str(&ub_decl);
        out.push_str(&rdf_decl);
    } else {
        out.push_str(&rdf_decl);
        out.push_str(&ub_decl);
    }
    for (i, token) in TEMPLATE.iter().enumerate() {
        out.push_str(gap(i));
        if let Some(local) = token.strip_prefix("P:") {
            if spelling.expand[i] {
                out.push_str(&format!("<{UB_NS}{local}>"));
            } else {
                out.push_str(&format!("{ub_label}:{local}"));
            }
        } else if let Some(local) = token.strip_prefix("R:") {
            if spelling.expand[i] {
                out.push_str(&format!("<{RDF_NS}{local}>"));
            } else {
                out.push_str(&format!("{rdf_label}:{local}"));
            }
        } else if let Some(var) = token.strip_prefix('?') {
            out.push(if spelling.dollar { '$' } else { '?' });
            out.push_str(var);
        } else if token.chars().all(|c| c.is_ascii_alphabetic()) && spelling.lowercase {
            out.push_str(&token.to_ascii_lowercase());
        } else {
            out.push_str(token);
        }
    }
    out.push_str(gap(TEMPLATE.len()));
    out
}

/// The reference spelling every variant must agree with.
fn reference() -> String {
    render(&Spelling {
        ub_first: false,
        labels: ("rdf".into(), "ub".into()),
        expand: vec![false; TEMPLATE.len()],
        gaps: vec![0; TEMPLATE.len() + 1],
        dollar: false,
        lowercase: false,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every spelling of the same query has the same fingerprint.
    #[test]
    fn spellings_share_one_fingerprint(spelling in spelling_strategy()) {
        let base = fingerprint(&reference()).unwrap();
        let text = render(&spelling);
        let fp = fingerprint(&text).unwrap();
        prop_assert_eq!(
            &fp.canonical, &base.canonical,
            "spelling {:?} rendered as {:?}", &spelling, &text
        );
        prop_assert_eq!(fp.hash, base.hash);
    }

    /// Changing the query (a predicate IRI) changes the fingerprint, no
    /// matter how either version is spelled.
    #[test]
    fn different_queries_never_collide(
        spelling in spelling_strategy(),
        suffix in "[a-z]{1,8}",
    ) {
        let text = render(&spelling);
        let mutated = text.replace("memberOf", &format!("memberOf{suffix}"));
        let a = fingerprint(&text).unwrap();
        let b = fingerprint(&mutated).unwrap();
        prop_assert!(a.canonical != b.canonical, "mutation vanished: {mutated:?}");
        prop_assert!(a.hash != b.hash);
    }
}
