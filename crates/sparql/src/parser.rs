//! Recursive-descent parser for the SPARQL subset.

use crate::algebra::{GroupPattern, Query, Selection, SparqlTerm, TriplePattern};
use crate::expression::{ArithOp, CompareOp, Expression};
use crate::lexer::{Lexer, Token, TokenKind};
use std::collections::HashMap;
use std::fmt;
use turbohom_rdf::{vocab, Term};

/// A parse error with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the query string.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SPARQL parse error at offset {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a SPARQL query string into the [`Query`] algebra.
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let tokens = Lexer::new(input)
        .tokenize()
        .map_err(|(message, offset)| ParseError { message, offset })?;
    Parser::new(tokens).parse()
}

/// Parsed solution modifiers: `ORDER BY` variables, `LIMIT`, `OFFSET`.
type Modifiers = (Vec<String>, Option<usize>, Option<usize>);

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    prefixes: HashMap<String, String>,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            prefixes: HashMap::new(),
        }
    }

    // ---- token helpers --------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos.min(self.tokens.len() - 1)].offset
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        kind
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            offset: self.offset(),
        })
    }

    fn is_word(&self, word: &str) -> bool {
        matches!(self.peek(), TokenKind::Word(w) if w.eq_ignore_ascii_case(word))
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if self.is_word(word) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_word(&mut self, word: &str) -> Result<(), ParseError> {
        if self.eat_word(word) {
            Ok(())
        } else {
            self.error(format!(
                "expected keyword `{word}`, found `{}`",
                self.peek()
            ))
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if matches!(self.peek(), TokenKind::Punct(p) if *p == c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        if self.eat_punct(c) {
            Ok(())
        } else {
            self.error(format!("expected `{c}`, found `{}`", self.peek()))
        }
    }

    fn eat_operator(&mut self, op: &str) -> bool {
        if matches!(self.peek(), TokenKind::Operator(o) if o == op) {
            self.bump();
            true
        } else {
            false
        }
    }

    // ---- query structure ------------------------------------------------

    fn parse(mut self) -> Result<Query, ParseError> {
        self.parse_prologue()?;
        self.expect_word("SELECT")?;
        let distinct = self.eat_word("DISTINCT") || self.eat_word("REDUCED");
        let selection = self.parse_selection()?;
        // WHERE is technically optional in SPARQL.
        let _ = self.eat_word("WHERE");
        let pattern = self.parse_group()?;
        let (order_by, limit, offset) = self.parse_modifiers()?;
        if !matches!(self.peek(), TokenKind::Eof) {
            return self.error(format!("unexpected trailing token `{}`", self.peek()));
        }
        Ok(Query {
            selection,
            distinct,
            pattern,
            order_by,
            limit,
            offset,
        })
    }

    fn parse_prologue(&mut self) -> Result<(), ParseError> {
        while self.is_word("PREFIX") || self.is_word("BASE") {
            if self.eat_word("BASE") {
                match self.bump() {
                    TokenKind::Iri(_) => {}
                    other => {
                        return self.error(format!("expected IRI after BASE, found `{other}`"))
                    }
                }
                continue;
            }
            self.expect_word("PREFIX")?;
            let prefix = match self.bump() {
                TokenKind::PrefixedName(p, local) if local.is_empty() => p,
                other => {
                    return self.error(format!("expected `prefix:` after PREFIX, found `{other}`"))
                }
            };
            let iri = match self.bump() {
                TokenKind::Iri(iri) => iri,
                other => return self.error(format!("expected IRI in PREFIX, found `{other}`")),
            };
            self.prefixes.insert(prefix, iri);
        }
        Ok(())
    }

    fn parse_selection(&mut self) -> Result<Selection, ParseError> {
        if self.eat_punct('*') {
            return Ok(Selection::All);
        }
        let mut vars = Vec::new();
        while let TokenKind::Variable(v) = self.peek() {
            vars.push(v.clone());
            self.bump();
        }
        if vars.is_empty() {
            return self.error("expected `*` or at least one variable after SELECT");
        }
        Ok(Selection::Variables(vars))
    }

    fn parse_modifiers(&mut self) -> Result<Modifiers, ParseError> {
        let mut order_by = Vec::new();
        let mut limit = None;
        let mut offset = None;
        loop {
            if self.eat_word("ORDER") {
                self.expect_word("BY")?;
                loop {
                    match self.peek().clone() {
                        TokenKind::Variable(v) => {
                            order_by.push(v);
                            self.bump();
                        }
                        TokenKind::Word(w)
                            if w.eq_ignore_ascii_case("ASC") || w.eq_ignore_ascii_case("DESC") =>
                        {
                            self.bump();
                            self.expect_punct('(')?;
                            match self.bump() {
                                TokenKind::Variable(v) => order_by.push(v),
                                other => {
                                    return self.error(format!(
                                        "expected variable in ORDER BY, found `{other}`"
                                    ))
                                }
                            }
                            self.expect_punct(')')?;
                        }
                        _ => break,
                    }
                }
                if order_by.is_empty() {
                    return self.error("empty ORDER BY clause");
                }
            } else if self.eat_word("LIMIT") {
                limit = Some(self.parse_unsigned()?);
            } else if self.eat_word("OFFSET") {
                offset = Some(self.parse_unsigned()?);
            } else {
                break;
            }
        }
        Ok((order_by, limit, offset))
    }

    fn parse_unsigned(&mut self) -> Result<usize, ParseError> {
        match self.bump() {
            TokenKind::Number(n) => n.parse::<usize>().map_err(|_| ParseError {
                message: format!("expected a non-negative integer, found `{n}`"),
                offset: self.offset(),
            }),
            other => self.error(format!("expected a number, found `{other}`")),
        }
    }

    // ---- group patterns ---------------------------------------------------

    fn parse_group(&mut self) -> Result<GroupPattern, ParseError> {
        self.expect_punct('{')?;
        let mut group = GroupPattern::new();
        loop {
            if self.eat_punct('}') {
                break;
            }
            match self.peek() {
                TokenKind::Eof => return self.error("unexpected end of input inside `{ }`"),
                TokenKind::Punct('{') => {
                    // Sub-group, possibly the first branch of a UNION chain.
                    let first = self.parse_group()?;
                    let mut branches = vec![first];
                    while self.eat_word("UNION") {
                        branches.push(self.parse_group()?);
                    }
                    if branches.len() > 1 {
                        group.unions.push(branches);
                    } else {
                        // A plain nested group merges into the parent.
                        let sub = branches.pop().expect("one branch");
                        group.triples.extend(sub.triples);
                        group.optionals.extend(sub.optionals);
                        group.filters.extend(sub.filters);
                        group.unions.extend(sub.unions);
                    }
                    let _ = self.eat_punct('.');
                }
                TokenKind::Word(w) if w.eq_ignore_ascii_case("OPTIONAL") => {
                    self.bump();
                    let opt = self.parse_group()?;
                    group.optionals.push(opt);
                    let _ = self.eat_punct('.');
                }
                TokenKind::Word(w) if w.eq_ignore_ascii_case("FILTER") => {
                    self.bump();
                    let expr = self.parse_expression()?;
                    group.filters.push(expr);
                    let _ = self.eat_punct('.');
                }
                TokenKind::Punct('.') | TokenKind::Punct(';') => {
                    self.bump();
                }
                _ => {
                    self.parse_triples_block(&mut group)?;
                }
            }
        }
        Ok(group)
    }

    /// Parses `subject verb objectList (; verb objectList)* .?` into `group`.
    fn parse_triples_block(&mut self, group: &mut GroupPattern) -> Result<(), ParseError> {
        let subject = self.parse_term()?;
        loop {
            let predicate = self.parse_verb()?;
            loop {
                let object = self.parse_term()?;
                group.triples.push(TriplePattern::new(
                    subject.clone(),
                    predicate.clone(),
                    object,
                ));
                if !self.eat_punct(',') {
                    break;
                }
            }
            if self.eat_punct(';') {
                // A dangling `;` before `.` or `}` is allowed.
                if matches!(self.peek(), TokenKind::Punct('.') | TokenKind::Punct('}')) {
                    break;
                }
                continue;
            }
            break;
        }
        let _ = self.eat_punct('.');
        Ok(())
    }

    /// Parses a predicate position: a term or the `a` keyword.
    fn parse_verb(&mut self) -> Result<SparqlTerm, ParseError> {
        if let TokenKind::Word(w) = self.peek() {
            if w == "a" {
                self.bump();
                return Ok(SparqlTerm::iri(vocab::RDF_TYPE));
            }
        }
        self.parse_term()
    }

    /// Parses a subject/object position.
    fn parse_term(&mut self) -> Result<SparqlTerm, ParseError> {
        match self.bump() {
            TokenKind::Variable(v) => Ok(SparqlTerm::Variable(v)),
            TokenKind::Iri(iri) => Ok(SparqlTerm::Constant(Term::Iri(iri))),
            TokenKind::PrefixedName(prefix, local) => {
                let base = self.resolve_prefix(&prefix)?;
                Ok(SparqlTerm::Constant(Term::Iri(format!("{base}{local}"))))
            }
            TokenKind::StringLiteral(value) => {
                Ok(SparqlTerm::Constant(self.finish_literal(value)?))
            }
            TokenKind::Number(n) => Ok(SparqlTerm::Constant(number_literal(&n))),
            TokenKind::Word(w) if w.eq_ignore_ascii_case("true") => Ok(SparqlTerm::Constant(
                Term::typed_literal("true", vocab::XSD_BOOLEAN),
            )),
            TokenKind::Word(w) if w.eq_ignore_ascii_case("false") => Ok(SparqlTerm::Constant(
                Term::typed_literal("false", vocab::XSD_BOOLEAN),
            )),
            other => self.error(format!("expected a term, found `{other}`")),
        }
    }

    /// Attaches an optional language tag or datatype to a string literal.
    fn finish_literal(&mut self, value: String) -> Result<Term, ParseError> {
        match self.peek().clone() {
            TokenKind::LangTag(lang) => {
                self.bump();
                Ok(Term::lang_literal(value, lang))
            }
            TokenKind::DatatypeMarker => {
                self.bump();
                match self.bump() {
                    TokenKind::Iri(iri) => Ok(Term::typed_literal(value, iri)),
                    TokenKind::PrefixedName(prefix, local) => {
                        let base = self.resolve_prefix(&prefix)?;
                        Ok(Term::typed_literal(value, format!("{base}{local}")))
                    }
                    other => self.error(format!("expected datatype IRI, found `{other}`")),
                }
            }
            _ => Ok(Term::literal(value)),
        }
    }

    fn resolve_prefix(&self, prefix: &str) -> Result<String, ParseError> {
        self.prefixes
            .get(prefix)
            .cloned()
            .ok_or_else(|| ParseError {
                message: format!("undeclared prefix `{prefix}:`"),
                offset: self.offset(),
            })
    }

    // ---- expressions ------------------------------------------------------

    fn parse_expression(&mut self) -> Result<Expression, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expression, ParseError> {
        let mut left = self.parse_and()?;
        while self.eat_operator("||") {
            let right = self.parse_and()?;
            left = Expression::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expression, ParseError> {
        let mut left = self.parse_relational()?;
        while self.eat_operator("&&") {
            let right = self.parse_relational()?;
            left = Expression::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_relational(&mut self) -> Result<Expression, ParseError> {
        let left = self.parse_additive()?;
        let op = match self.peek() {
            TokenKind::Operator(o) => match o.as_str() {
                "=" => Some(CompareOp::Eq),
                "!=" => Some(CompareOp::Ne),
                "<" => Some(CompareOp::Lt),
                "<=" => Some(CompareOp::Le),
                ">" => Some(CompareOp::Gt),
                ">=" => Some(CompareOp::Ge),
                _ => None,
            },
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.parse_additive()?;
            Ok(Expression::Compare(Box::new(left), op, Box::new(right)))
        } else {
            Ok(left)
        }
    }

    fn parse_additive(&mut self) -> Result<Expression, ParseError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            if self.eat_operator("+") {
                let right = self.parse_multiplicative()?;
                left = Expression::Arithmetic(Box::new(left), ArithOp::Add, Box::new(right));
            } else if self.eat_operator("-") {
                let right = self.parse_multiplicative()?;
                left = Expression::Arithmetic(Box::new(left), ArithOp::Sub, Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expression, ParseError> {
        let mut left = self.parse_unary()?;
        loop {
            if self.eat_punct('*') {
                let right = self.parse_unary()?;
                left = Expression::Arithmetic(Box::new(left), ArithOp::Mul, Box::new(right));
            } else if self.eat_operator("/") {
                let right = self.parse_unary()?;
                left = Expression::Arithmetic(Box::new(left), ArithOp::Div, Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_unary(&mut self) -> Result<Expression, ParseError> {
        if self.eat_operator("!") {
            Ok(Expression::Not(Box::new(self.parse_unary()?)))
        } else if self.eat_operator("-") {
            let inner = self.parse_unary()?;
            Ok(Expression::Arithmetic(
                Box::new(Expression::Constant(Term::integer(0))),
                ArithOp::Sub,
                Box::new(inner),
            ))
        } else if self.eat_operator("+") {
            self.parse_unary()
        } else {
            self.parse_primary()
        }
    }

    fn parse_primary(&mut self) -> Result<Expression, ParseError> {
        match self.peek().clone() {
            TokenKind::Punct('(') => {
                self.bump();
                let inner = self.parse_expression()?;
                self.expect_punct(')')?;
                Ok(inner)
            }
            TokenKind::Variable(v) => {
                self.bump();
                Ok(Expression::Variable(v))
            }
            TokenKind::Number(n) => {
                self.bump();
                Ok(Expression::Constant(number_literal(&n)))
            }
            TokenKind::StringLiteral(s) => {
                self.bump();
                let term = self.finish_literal(s)?;
                Ok(Expression::Constant(term))
            }
            TokenKind::Iri(iri) => {
                self.bump();
                Ok(Expression::Constant(Term::Iri(iri)))
            }
            TokenKind::PrefixedName(prefix, local) => {
                self.bump();
                let base = self.resolve_prefix(&prefix)?;
                Ok(Expression::Constant(Term::Iri(format!("{base}{local}"))))
            }
            TokenKind::Word(w) => self.parse_function_call(&w),
            other => self.error(format!("expected an expression, found `{other}`")),
        }
    }

    fn parse_function_call(&mut self, name: &str) -> Result<Expression, ParseError> {
        let upper = name.to_ascii_uppercase();
        match upper.as_str() {
            "TRUE" => {
                self.bump();
                Ok(Expression::Constant(Term::typed_literal(
                    "true",
                    vocab::XSD_BOOLEAN,
                )))
            }
            "FALSE" => {
                self.bump();
                Ok(Expression::Constant(Term::typed_literal(
                    "false",
                    vocab::XSD_BOOLEAN,
                )))
            }
            "REGEX" => {
                self.bump();
                self.expect_punct('(')?;
                let target = self.parse_expression()?;
                self.expect_punct(',')?;
                let pattern = match self.bump() {
                    TokenKind::StringLiteral(s) => s,
                    other => {
                        return self
                            .error(format!("expected REGEX pattern string, found `{other}`"))
                    }
                };
                let flags = if self.eat_punct(',') {
                    match self.bump() {
                        TokenKind::StringLiteral(s) => Some(s),
                        other => {
                            return self
                                .error(format!("expected REGEX flags string, found `{other}`"))
                        }
                    }
                } else {
                    None
                };
                self.expect_punct(')')?;
                Ok(Expression::Regex(Box::new(target), pattern, flags))
            }
            "BOUND" => {
                self.bump();
                self.expect_punct('(')?;
                let var = match self.bump() {
                    TokenKind::Variable(v) => v,
                    other => {
                        return self.error(format!("expected variable in BOUND, found `{other}`"))
                    }
                };
                self.expect_punct(')')?;
                Ok(Expression::Bound(var))
            }
            "LANG" => {
                self.bump();
                self.expect_punct('(')?;
                let inner = self.parse_expression()?;
                self.expect_punct(')')?;
                Ok(Expression::Lang(Box::new(inner)))
            }
            "DATATYPE" => {
                self.bump();
                self.expect_punct('(')?;
                let inner = self.parse_expression()?;
                self.expect_punct(')')?;
                Ok(Expression::Datatype(Box::new(inner)))
            }
            "STR" => {
                // STR(x) is treated as the identity for our comparison
                // semantics (string views are taken automatically).
                self.bump();
                self.expect_punct('(')?;
                let inner = self.parse_expression()?;
                self.expect_punct(')')?;
                Ok(inner)
            }
            _ => self.error(format!("unsupported function `{name}`")),
        }
    }
}

/// Types a bare number token as an `xsd:integer` or `xsd:double` literal.
fn number_literal(text: &str) -> Term {
    if text.contains('.') || text.contains('e') || text.contains('E') {
        Term::typed_literal(text, vocab::XSD_DOUBLE)
    } else {
        Term::typed_literal(text, vocab::XSD_INTEGER)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expression::CompareOp;

    const LUBM_Q1: &str = r#"
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
        SELECT ?X WHERE {
            ?X rdf:type ub:GraduateStudent .
            ?X ub:takesCourse <http://www.Department0.University0.edu/GraduateCourse0> .
        }"#;

    #[test]
    fn parses_lubm_q1_shape() {
        let q = parse_query(LUBM_Q1).unwrap();
        assert_eq!(q.selection, Selection::Variables(vec!["X".into()]));
        assert!(!q.distinct);
        assert_eq!(q.pattern.triples.len(), 2);
        let t0 = &q.pattern.triples[0];
        assert_eq!(t0.subject, SparqlTerm::var("X"));
        assert_eq!(t0.predicate, SparqlTerm::iri(vocab::RDF_TYPE));
        assert_eq!(
            t0.object,
            SparqlTerm::iri("http://swat.cse.lehigh.edu/onto/univ-bench.owl#GraduateStudent")
        );
        assert!(!q.has_general_features());
    }

    #[test]
    fn parses_select_star_and_distinct() {
        let q = parse_query("SELECT DISTINCT * WHERE { ?s ?p ?o . }").unwrap();
        assert!(q.distinct);
        assert_eq!(q.selection, Selection::All);
        assert_eq!(q.projected_variables(), vec!["o", "p", "s"]);
        let t = &q.pattern.triples[0];
        assert!(t.subject.is_variable() && t.predicate.is_variable() && t.object.is_variable());
    }

    #[test]
    fn parses_a_keyword_and_semicolon_comma_shorthand() {
        let q = parse_query(
            r#"PREFIX ex: <http://ex.org/>
               SELECT ?x WHERE { ?x a ex:Product ; ex:feature ex:f1 , ex:f2 . }"#,
        )
        .unwrap();
        assert_eq!(q.pattern.triples.len(), 3);
        assert_eq!(
            q.pattern.triples[0].predicate,
            SparqlTerm::iri(vocab::RDF_TYPE)
        );
        assert_eq!(
            q.pattern.triples[1].object,
            SparqlTerm::iri("http://ex.org/f1")
        );
        assert_eq!(
            q.pattern.triples[2].object,
            SparqlTerm::iri("http://ex.org/f2")
        );
        // All three share the same subject variable.
        for t in &q.pattern.triples {
            assert_eq!(t.subject, SparqlTerm::var("x"));
        }
    }

    #[test]
    fn parses_optional_and_nested_optional() {
        let q = parse_query(
            r#"PREFIX ex: <http://ex.org/>
               SELECT ?p ?r ?h WHERE {
                 ?p a ex:Product .
                 ?p ex:price ?price .
                 OPTIONAL { ?p ex:rating ?r . OPTIONAL { ?p ex:homepage ?h . } }
               }"#,
        )
        .unwrap();
        assert_eq!(q.pattern.triples.len(), 2);
        assert_eq!(q.pattern.optionals.len(), 1);
        let opt = &q.pattern.optionals[0];
        assert_eq!(opt.triples.len(), 1);
        assert_eq!(opt.optionals.len(), 1);
        assert!(q.has_general_features());
    }

    #[test]
    fn parses_filter_expressions() {
        let q = parse_query(
            r#"PREFIX ex: <http://ex.org/>
               SELECT ?product WHERE {
                 ?product ex:rating ?r2 .
                 <http://ex.org/product1> ex:rating ?r1 .
                 FILTER (?r2 > ?r1)
                 FILTER (?r2 >= 3 && ?r2 != 10)
               }"#,
        )
        .unwrap();
        assert_eq!(q.pattern.filters.len(), 2);
        match &q.pattern.filters[0] {
            Expression::Compare(_, op, _) => assert_eq!(*op, CompareOp::Gt),
            other => panic!("unexpected filter {other:?}"),
        }
        assert!(q.pattern.filters[0].is_expensive());
        assert!(!q.pattern.filters[1].is_expensive());
    }

    #[test]
    fn parses_filter_regex_without_parentheses() {
        let q = parse_query(
            r#"PREFIX ex: <http://ex.org/>
               SELECT ?p WHERE { ?p ex:label ?l . FILTER regex(?l, "alpha.*beta", "i") }"#,
        )
        .unwrap();
        assert_eq!(q.pattern.filters.len(), 1);
        match &q.pattern.filters[0] {
            Expression::Regex(_, pattern, flags) => {
                assert_eq!(pattern, "alpha.*beta");
                assert_eq!(flags.as_deref(), Some("i"));
            }
            other => panic!("unexpected filter {other:?}"),
        }
    }

    #[test]
    fn parses_union_with_multiple_branches() {
        let q = parse_query(
            r#"PREFIX ex: <http://ex.org/>
               SELECT ?p WHERE {
                 ?p a ex:Product .
                 { ?p ex:feature ex:f1 . } UNION { ?p ex:feature ex:f2 . } UNION { ?p ex:feature ex:f3 . }
               }"#,
        )
        .unwrap();
        assert_eq!(q.pattern.unions.len(), 1);
        assert_eq!(q.pattern.unions[0].len(), 3);
        assert_eq!(q.pattern.expand_unions().len(), 3);
    }

    #[test]
    fn plain_nested_group_merges_into_parent() {
        let q = parse_query("SELECT ?s WHERE { { ?s ?p ?o . } ?o ?q ?r . }").unwrap();
        assert_eq!(q.pattern.triples.len(), 2);
        assert!(q.pattern.unions.is_empty());
    }

    #[test]
    fn parses_modifiers() {
        let q =
            parse_query("SELECT ?s WHERE { ?s ?p ?o . } ORDER BY DESC(?s) ?o LIMIT 10 OFFSET 5")
                .unwrap();
        assert_eq!(q.order_by, vec!["s", "o"]);
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.offset, Some(5));
    }

    #[test]
    fn parses_literals_with_datatype_and_language() {
        let q = parse_query(
            r#"PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
               SELECT ?s WHERE {
                 ?s <http://ex.org/age> "42"^^xsd:integer .
                 ?s <http://ex.org/name> "Ann"@en .
                 ?s <http://ex.org/score> 3.5 .
                 ?s <http://ex.org/rank> 7 .
               }"#,
        )
        .unwrap();
        let objects: Vec<&Term> = q
            .pattern
            .triples
            .iter()
            .map(|t| t.object.as_constant().unwrap())
            .collect();
        assert_eq!(objects[0], &Term::typed_literal("42", vocab::XSD_INTEGER));
        assert_eq!(objects[1], &Term::lang_literal("Ann", "en"));
        assert_eq!(objects[2], &Term::typed_literal("3.5", vocab::XSD_DOUBLE));
        assert_eq!(objects[3], &Term::typed_literal("7", vocab::XSD_INTEGER));
    }

    #[test]
    fn variable_predicate_is_allowed() {
        let q =
            parse_query("SELECT ?p WHERE { <http://ex.org/s> ?p <http://ex.org/o> . }").unwrap();
        assert!(q.pattern.triples[0].predicate.is_variable());
    }

    #[test]
    fn error_on_undeclared_prefix() {
        let err = parse_query("SELECT ?x WHERE { ?x nope:thing ?y . }").unwrap_err();
        assert!(err.message.contains("undeclared prefix"));
    }

    #[test]
    fn error_on_missing_brace_and_garbage() {
        assert!(parse_query("SELECT ?x WHERE { ?x ?p ?y .").is_err());
        assert!(parse_query("SELECT WHERE { }").is_err());
        assert!(parse_query("ASK { ?s ?p ?o }").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x ?p ?y . } garbage").is_err());
    }

    #[test]
    fn error_reports_offset() {
        let err = parse_query("SELECT ?x WHERE { ?x <http://p> } ").unwrap_err();
        assert!(err.offset > 0);
        assert!(err.to_string().contains("offset"));
    }

    #[test]
    fn filter_with_arithmetic_parses() {
        let q = parse_query(
            "SELECT ?x WHERE { ?x <http://ex.org/v> ?v . FILTER (?v * 2 + 1 > 10 / 2) }",
        )
        .unwrap();
        assert_eq!(q.pattern.filters.len(), 1);
        // 2*3+1=7 > 5 → for v=3 the filter holds.
        let mut ctx = crate::expression::EvalContext::new();
        ctx.insert("v".into(), Term::integer(3));
        assert!(q.pattern.filters[0].evaluate_bool(&ctx));
        ctx.insert("v".into(), Term::integer(1));
        assert!(!q.pattern.filters[0].evaluate_bool(&ctx));
    }

    #[test]
    fn unary_and_bound_in_filters() {
        let q = parse_query(
            "SELECT ?x WHERE { ?x <http://p> ?y . OPTIONAL { ?x <http://q> ?z . } FILTER (!BOUND(?z) || ?z > -5) }",
        )
        .unwrap();
        assert_eq!(q.pattern.filters.len(), 1);
        let mut ctx = crate::expression::EvalContext::new();
        assert!(q.pattern.filters[0].evaluate_bool(&ctx)); // ?z unbound → !BOUND holds
        ctx.insert("z".into(), Term::integer(0));
        assert!(q.pattern.filters[0].evaluate_bool(&ctx)); // 0 > -5
        ctx.insert("z".into(), Term::integer(-10));
        assert!(!q.pattern.filters[0].evaluate_bool(&ctx));
    }
}
