//! SPARQL subset parser and algebra for the TurboHOM++ reproduction.
//!
//! The paper evaluates basic graph pattern (BGP) queries on LUBM, YAGO and
//! BTC2012, and the Berlin SPARQL Benchmark "explore use case" queries which
//! additionally use `OPTIONAL`, `FILTER` and `UNION` (paper Section 5.1).
//! This crate parses exactly that subset:
//!
//! * `PREFIX` declarations and prefixed names,
//! * `SELECT` with a projection list or `*`, `DISTINCT` (recognized and
//!   recorded, excluded from timing as the paper does),
//! * `WHERE` groups containing triple patterns (with `;`/`,` shorthand and
//!   the `a` keyword), `OPTIONAL` groups (possibly nested), `FILTER`
//!   expressions and `UNION` alternatives,
//! * solution modifiers `ORDER BY`, `LIMIT`, `OFFSET` (parsed, recorded).
//!
//! The produced [`Query`] / [`GroupPattern`] algebra is consumed by the
//! transformation crate (to build query graphs) and by the baseline engines
//! directly.

pub mod algebra;
pub mod expression;
pub mod fingerprint;
pub mod lexer;
pub mod parser;

pub use algebra::{GroupPattern, Query, Selection, SparqlTerm, TriplePattern};
pub use expression::{EvalContext, Expression, Value};
pub use fingerprint::{fingerprint, QueryFingerprint};
pub use lexer::{Lexer, Token};
pub use parser::{parse_query, ParseError};
