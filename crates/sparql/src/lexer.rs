//! Tokenizer for the SPARQL subset.
//!
//! The only genuinely tricky part of lexing SPARQL is that `<` starts both an
//! IRI (`<http://…>`) and the less-than operator inside `FILTER`. The lexer
//! resolves the ambiguity by look-ahead: if a `>` appears before any
//! whitespace, the token is an IRI, otherwise it is an operator — which is
//! how every practical SPARQL tokenizer handles it.

use std::fmt;

/// A lexical token with its byte offset in the input (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind/payload.
    pub kind: TokenKind,
    /// Byte offset where the token starts.
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `<http://…>` (the IRI without the angle brackets).
    Iri(String),
    /// `prefix:local` (either part may be empty).
    PrefixedName(String, String),
    /// `?name` or `$name` (without the sigil).
    Variable(String),
    /// `"…"` string literal body (escapes already resolved).
    StringLiteral(String),
    /// `@lang` tag following a string literal (without `@`).
    LangTag(String),
    /// `^^` datatype marker.
    DatatypeMarker,
    /// Integer or decimal number (kept as text; the parser types it).
    Number(String),
    /// A bare word: keyword (`SELECT`, `WHERE`, …), `a`, `true`, `false`,
    /// or a function name (`regex`, `bound`, …).
    Word(String),
    /// Single-character punctuation: `{ } ( ) . ; , *`
    Punct(char),
    /// Operator: `= != < <= > >= && || ! + - /`
    Operator(String),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Iri(i) => write!(f, "<{i}>"),
            TokenKind::PrefixedName(p, l) => write!(f, "{p}:{l}"),
            TokenKind::Variable(v) => write!(f, "?{v}"),
            TokenKind::StringLiteral(s) => write!(f, "\"{s}\""),
            TokenKind::LangTag(l) => write!(f, "@{l}"),
            TokenKind::DatatypeMarker => write!(f, "^^"),
            TokenKind::Number(n) => write!(f, "{n}"),
            TokenKind::Word(w) => write!(f, "{w}"),
            TokenKind::Punct(c) => write!(f, "{c}"),
            TokenKind::Operator(o) => write!(f, "{o}"),
            TokenKind::Eof => write!(f, "<end of input>"),
        }
    }
}

/// The lexer: turns the query text into a token stream.
pub struct Lexer<'a> {
    chars: Vec<char>,
    /// Byte offsets of each char (so error positions refer to the original text).
    offsets: Vec<usize>,
    pos: usize,
    _input: &'a str,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `input`.
    pub fn new(input: &'a str) -> Self {
        let mut chars = Vec::with_capacity(input.len());
        let mut offsets = Vec::with_capacity(input.len());
        for (o, c) in input.char_indices() {
            chars.push(c);
            offsets.push(o);
        }
        Lexer {
            chars,
            offsets,
            pos: 0,
            _input: input,
        }
    }

    /// Tokenizes the whole input. Returns the tokens including a final
    /// [`TokenKind::Eof`], or an error message with a byte offset.
    pub fn tokenize(mut self) -> Result<Vec<Token>, (String, usize)> {
        let mut tokens = Vec::new();
        loop {
            self.skip_whitespace_and_comments();
            let offset = self.current_offset();
            let Some(c) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    offset,
                });
                return Ok(tokens);
            };
            let kind = match c {
                '<' => self.lex_angle()?,
                '?' | '$' => self.lex_variable()?,
                '"' | '\'' => self.lex_string()?,
                '@' => {
                    self.bump();
                    let tag = self.take_while(|c| c.is_alphanumeric() || c == '-');
                    if tag.is_empty() {
                        return Err(("empty language tag".into(), offset));
                    }
                    TokenKind::LangTag(tag)
                }
                '^' => {
                    self.bump();
                    if self.peek() == Some('^') {
                        self.bump();
                        TokenKind::DatatypeMarker
                    } else {
                        return Err(("expected `^^`".into(), offset));
                    }
                }
                '{' | '}' | '(' | ')' | '.' | ';' | ',' | '*' => {
                    // `.` could also start a decimal number like `.5`, but
                    // SPARQL decimals in our benchmarks always have a leading
                    // digit, so `.` is always punctuation here.
                    self.bump();
                    TokenKind::Punct(c)
                }
                '=' => {
                    self.bump();
                    TokenKind::Operator("=".into())
                }
                '!' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        TokenKind::Operator("!=".into())
                    } else {
                        TokenKind::Operator("!".into())
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        TokenKind::Operator(">=".into())
                    } else {
                        TokenKind::Operator(">".into())
                    }
                }
                '&' => {
                    self.bump();
                    if self.peek() == Some('&') {
                        self.bump();
                        TokenKind::Operator("&&".into())
                    } else {
                        return Err(("expected `&&`".into(), offset));
                    }
                }
                '|' => {
                    self.bump();
                    if self.peek() == Some('|') {
                        self.bump();
                        TokenKind::Operator("||".into())
                    } else {
                        return Err(("expected `||`".into(), offset));
                    }
                }
                '+' | '/' => {
                    self.bump();
                    TokenKind::Operator(c.to_string())
                }
                '-' => {
                    self.bump();
                    // A minus immediately followed by a digit is a negative
                    // number literal.
                    if matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                        let digits = self.lex_number_body();
                        TokenKind::Number(format!("-{digits}"))
                    } else {
                        TokenKind::Operator("-".into())
                    }
                }
                d if d.is_ascii_digit() => {
                    let digits = self.lex_number_body();
                    TokenKind::Number(digits)
                }
                c if c.is_alphabetic() || c == '_' => self.lex_word_or_prefixed(),
                other => {
                    return Err((format!("unexpected character {other:?}"), offset));
                }
            };
            tokens.push(Token { kind, offset });
        }
    }

    fn current_offset(&self) -> usize {
        self.offsets
            .get(self.pos)
            .copied()
            .unwrap_or_else(|| self.offsets.last().map(|&o| o + 1).unwrap_or(0))
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn take_while(&mut self, predicate: impl Fn(char) -> bool) -> String {
        let mut out = String::new();
        while let Some(c) = self.peek() {
            if predicate(c) {
                out.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        out
    }

    fn skip_whitespace_and_comments(&mut self) {
        loop {
            while matches!(self.peek(), Some(c) if c.is_whitespace()) {
                self.pos += 1;
            }
            if self.peek() == Some('#') {
                while let Some(c) = self.peek() {
                    if c == '\n' {
                        break;
                    }
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    /// Lexes a token that starts with `<`: either an IRI or a comparison
    /// operator, disambiguated by whether a `>` is reached before whitespace.
    fn lex_angle(&mut self) -> Result<TokenKind, (String, usize)> {
        let offset = self.current_offset();
        let mut ahead = 1usize;
        let mut is_iri = false;
        while let Some(c) = self.peek_at(ahead) {
            if c == '>' {
                is_iri = true;
                break;
            }
            if c.is_whitespace() {
                break;
            }
            ahead += 1;
        }
        if is_iri {
            self.bump(); // '<'
            let mut iri = String::new();
            loop {
                match self.bump() {
                    Some('>') => break,
                    Some(c) => iri.push(c),
                    None => return Err(("unterminated IRI".into(), offset)),
                }
            }
            Ok(TokenKind::Iri(iri))
        } else {
            self.bump();
            if self.peek() == Some('=') {
                self.bump();
                Ok(TokenKind::Operator("<=".into()))
            } else {
                Ok(TokenKind::Operator("<".into()))
            }
        }
    }

    fn lex_variable(&mut self) -> Result<TokenKind, (String, usize)> {
        let offset = self.current_offset();
        self.bump(); // '?' or '$'
        let name = self.take_while(|c| c.is_alphanumeric() || c == '_');
        if name.is_empty() {
            return Err(("empty variable name".into(), offset));
        }
        Ok(TokenKind::Variable(name))
    }

    fn lex_string(&mut self) -> Result<TokenKind, (String, usize)> {
        let offset = self.current_offset();
        let quote = self.bump().expect("caller checked");
        let mut value = String::new();
        loop {
            match self.bump() {
                Some(c) if c == quote => break,
                Some('\\') => match self.bump() {
                    Some('n') => value.push('\n'),
                    Some('t') => value.push('\t'),
                    Some('r') => value.push('\r'),
                    Some('"') => value.push('"'),
                    Some('\'') => value.push('\''),
                    Some('\\') => value.push('\\'),
                    Some(c) => {
                        value.push('\\');
                        value.push(c);
                    }
                    None => return Err(("unterminated escape".into(), offset)),
                },
                Some(c) => value.push(c),
                None => return Err(("unterminated string literal".into(), offset)),
            }
        }
        Ok(TokenKind::StringLiteral(value))
    }

    fn lex_number_body(&mut self) -> String {
        let mut digits = self.take_while(|c| c.is_ascii_digit());
        if self.peek() == Some('.') && matches!(self.peek_at(1), Some(d) if d.is_ascii_digit()) {
            self.bump();
            digits.push('.');
            digits.push_str(&self.take_while(|c| c.is_ascii_digit()));
        }
        // Exponent part (e.g. 1.5e3).
        if matches!(self.peek(), Some('e' | 'E'))
            && matches!(self.peek_at(1), Some(d) if d.is_ascii_digit() || d == '+' || d == '-')
        {
            digits.push(self.bump().unwrap());
            if matches!(self.peek(), Some('+' | '-')) {
                digits.push(self.bump().unwrap());
            }
            digits.push_str(&self.take_while(|c| c.is_ascii_digit()));
        }
        digits
    }

    /// Lexes a bare word, which may turn out to be a prefixed name
    /// (`foaf:name`, `rdf:type`, `:localOnly`) or a keyword/identifier.
    fn lex_word_or_prefixed(&mut self) -> TokenKind {
        let word = self.take_while(|c| c.is_alphanumeric() || c == '_' || c == '-');
        if self.peek() == Some(':') {
            self.bump();
            let local =
                self.take_while(|c| c.is_alphanumeric() || c == '_' || c == '-' || c == '.');
            // Trailing dots belong to the statement terminator.
            let trimmed = local.trim_end_matches('.');
            let removed = local.len() - trimmed.len();
            self.pos -= removed;
            TokenKind::PrefixedName(word, trimmed.to_string())
        } else {
            TokenKind::Word(word)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        Lexer::new(input)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_select_query_skeleton() {
        let toks = kinds("SELECT ?x WHERE { ?x a <http://ex.org/T> . }");
        assert_eq!(
            toks,
            vec![
                TokenKind::Word("SELECT".into()),
                TokenKind::Variable("x".into()),
                TokenKind::Word("WHERE".into()),
                TokenKind::Punct('{'),
                TokenKind::Variable("x".into()),
                TokenKind::Word("a".into()),
                TokenKind::Iri("http://ex.org/T".into()),
                TokenKind::Punct('.'),
                TokenKind::Punct('}'),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_prefixed_names_and_prefix_decl() {
        let toks = kinds("PREFIX rdf: <http://w3.org/rdf#> ?x rdf:type ub:Student .");
        assert!(toks.contains(&TokenKind::PrefixedName("rdf".into(), "".into())));
        assert!(toks.contains(&TokenKind::PrefixedName("rdf".into(), "type".into())));
        assert!(toks.contains(&TokenKind::PrefixedName("ub".into(), "Student".into())));
    }

    #[test]
    fn prefixed_name_before_statement_dot_keeps_dot_separate() {
        let toks = kinds("?x ub:memberOf ub:dept1.univ0 . }");
        // the local part may contain interior dots but the trailing dot is punctuation
        assert!(toks.contains(&TokenKind::PrefixedName("ub".into(), "dept1.univ0".into())));
        assert!(toks.contains(&TokenKind::Punct('.')));
    }

    #[test]
    fn disambiguates_iri_from_less_than() {
        let toks = kinds("FILTER (?x < 5 && ?y <= 3)");
        assert!(toks.contains(&TokenKind::Operator("<".into())));
        assert!(toks.contains(&TokenKind::Operator("<=".into())));
        let toks2 = kinds("?x <http://ex.org/p> ?y .");
        assert!(toks2.contains(&TokenKind::Iri("http://ex.org/p".into())));
    }

    #[test]
    fn lexes_string_literals_with_lang_and_datatype() {
        let toks = kinds(r#""hello"@en "5"^^<http://www.w3.org/2001/XMLSchema#integer>"#);
        assert_eq!(toks[0], TokenKind::StringLiteral("hello".into()));
        assert_eq!(toks[1], TokenKind::LangTag("en".into()));
        assert_eq!(toks[2], TokenKind::StringLiteral("5".into()));
        assert_eq!(toks[3], TokenKind::DatatypeMarker);
        assert!(matches!(toks[4], TokenKind::Iri(_)));
    }

    #[test]
    fn lexes_numbers_including_negative_and_decimal() {
        let toks = kinds("42 -7 3.25 1.5e3");
        assert_eq!(toks[0], TokenKind::Number("42".into()));
        assert_eq!(toks[1], TokenKind::Number("-7".into()));
        assert_eq!(toks[2], TokenKind::Number("3.25".into()));
        assert_eq!(toks[3], TokenKind::Number("1.5e3".into()));
    }

    #[test]
    fn lexes_operators() {
        let toks = kinds("= != > >= && || ! + - * /");
        let ops: Vec<String> = toks
            .iter()
            .filter_map(|t| match t {
                TokenKind::Operator(o) => Some(o.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(
            ops,
            vec!["=", "!=", ">", ">=", "&&", "||", "!", "+", "-", "/"]
        );
        assert!(toks.contains(&TokenKind::Punct('*')));
    }

    #[test]
    fn skips_comments() {
        let toks = kinds("SELECT ?x # trailing comment\n# whole line\nWHERE");
        assert_eq!(
            toks,
            vec![
                TokenKind::Word("SELECT".into()),
                TokenKind::Variable("x".into()),
                TokenKind::Word("WHERE".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn reports_errors_with_offsets() {
        assert!(Lexer::new("SELECT ?").tokenize().is_err());
        assert!(Lexer::new("\"unterminated").tokenize().is_err());
        assert!(Lexer::new("& broken").tokenize().is_err());
        let err = Lexer::new("SELECT ~").tokenize().unwrap_err();
        assert_eq!(err.1, 7);
    }

    #[test]
    fn single_quoted_strings_are_supported() {
        let toks = kinds("'hi there'");
        assert_eq!(toks[0], TokenKind::StringLiteral("hi there".into()));
    }
}
