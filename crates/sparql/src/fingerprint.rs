//! Query normalization and fingerprinting for plan caching.
//!
//! A prepared-query cache needs a key under which every *spelling* of the
//! same query collides and distinct queries never do. Full parsing would
//! give that, but it is exactly the work the cache is supposed to skip — so
//! the fingerprint works on the token stream instead:
//!
//! 1. the lexer already erases whitespace, comments and the `?`/`$` variable
//!    sigil distinction,
//! 2. `PREFIX` declarations are lifted out of the stream and every prefixed
//!    name is expanded to its full IRI (making the fingerprint independent
//!    of declaration order, prefix spelling and prefixed-vs-full-IRI form),
//! 3. the `a` predicate keyword is expanded to the `rdf:type` IRI,
//! 4. keywords are upper-cased (SPARQL keywords are case-insensitive),
//! 5. the canonical tokens are joined with single spaces and hashed
//!    (64-bit FNV-1a).
//!
//! Cache implementations should key on [`QueryFingerprint::canonical`] (the
//! full normalized text, collision-free by construction) and use
//! [`QueryFingerprint::hash`] for display and statistics.

use crate::lexer::{Lexer, Token, TokenKind};
use crate::parser::ParseError;
use std::collections::HashMap;
use std::fmt;
use turbohom_rdf::vocab;

/// The normalized identity of one query text.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryFingerprint {
    /// 64-bit FNV-1a hash of [`canonical`](Self::canonical).
    pub hash: u64,
    /// The canonical query text: prefix-expanded tokens joined by spaces.
    pub canonical: String,
    /// Number of canonical tokens (prologue declarations and EOF excluded).
    /// A cheap size measure for observability: the service attaches it to
    /// the `fingerprint` span so profiles show how big a query was without
    /// shipping its text.
    pub tokens: usize,
}

impl fmt::Display for QueryFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.hash)
    }
}

/// 64-bit FNV-1a over `bytes`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Computes the fingerprint of `query` without parsing it.
///
/// Only lexical errors are reported here; a fingerprintable query can still
/// fail to parse (the cache-miss path surfaces that as usual).
pub fn fingerprint(query: &str) -> Result<QueryFingerprint, ParseError> {
    let tokens = Lexer::new(query)
        .tokenize()
        .map_err(|(message, offset)| ParseError { message, offset })?;

    // Pass 1: collect the prologue's PREFIX declarations (`PREFIX p: <iri>`).
    // Only *leading* declarations are lifted — the prologue is the only
    // place the grammar allows them, so a stray `PREFIX` later in the text
    // must stay in the canonical stream (otherwise an invalid query could
    // share a cache key with a valid one).
    let mut prefixes: HashMap<&str, &str> = HashMap::new();
    let mut declaration = vec![false; tokens.len()];
    let mut i = 0;
    loop {
        // `BASE <iri>`: accepted in the prologue and discarded, exactly
        // like the parser does.
        if let [Token {
            kind: TokenKind::Word(w),
            ..
        }, Token {
            kind: TokenKind::Iri(_),
            ..
        }] = &tokens[i..(i + 2).min(tokens.len())]
        {
            if w.eq_ignore_ascii_case("base") {
                declaration[i] = true;
                declaration[i + 1] = true;
                i += 2;
                continue;
            }
        }
        let [Token {
            kind: TokenKind::Word(w),
            ..
        }, Token {
            kind: TokenKind::PrefixedName(prefix, local),
            ..
        }, Token {
            kind: TokenKind::Iri(iri),
            ..
        }] = &tokens[i..(i + 3).min(tokens.len())]
        else {
            break;
        };
        if !(w.eq_ignore_ascii_case("prefix") && local.is_empty()) {
            break;
        }
        prefixes.insert(prefix.as_str(), iri.as_str());
        declaration[i] = true;
        declaration[i + 1] = true;
        declaration[i + 2] = true;
        i += 3;
    }

    // Pass 2: emit the canonical form of every non-declaration token.
    let mut canonical = String::with_capacity(query.len());
    let mut token_count = 0usize;
    for (token, is_declaration) in tokens.iter().zip(&declaration) {
        if *is_declaration || token.kind == TokenKind::Eof {
            continue;
        }
        token_count += 1;
        if !canonical.is_empty() {
            canonical.push(' ');
        }
        match &token.kind {
            TokenKind::PrefixedName(prefix, local) => match prefixes.get(prefix.as_str()) {
                Some(base) => {
                    canonical.push('<');
                    canonical.push_str(base);
                    canonical.push_str(local);
                    canonical.push('>');
                }
                // Undeclared prefix: keep the raw form (the parser will
                // reject the query on the miss path anyway).
                None => {
                    canonical.push_str(prefix);
                    canonical.push(':');
                    canonical.push_str(local);
                }
            },
            TokenKind::Word(w) if w == "a" => {
                // The `a` predicate keyword is sugar for rdf:type.
                canonical.push('<');
                canonical.push_str(vocab::RDF_TYPE);
                canonical.push('>');
            }
            TokenKind::Word(w) => {
                canonical.extend(w.chars().map(|c| c.to_ascii_uppercase()));
            }
            TokenKind::StringLiteral(s) => {
                // Re-escape so a literal containing quotes cannot collide
                // with a differently tokenized query text.
                canonical.push('"');
                for c in s.chars() {
                    match c {
                        '"' => canonical.push_str("\\\""),
                        '\\' => canonical.push_str("\\\\"),
                        '\n' => canonical.push_str("\\n"),
                        '\r' => canonical.push_str("\\r"),
                        '\t' => canonical.push_str("\\t"),
                        c => canonical.push(c),
                    }
                }
                canonical.push('"');
            }
            other => {
                canonical.push_str(&other.to_string());
            }
        }
    }

    Ok(QueryFingerprint {
        hash: fnv1a(canonical.as_bytes()),
        canonical,
        tokens: token_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(q: &str) -> QueryFingerprint {
        fingerprint(q).unwrap()
    }

    #[test]
    fn whitespace_and_comments_are_erased() {
        let a = fp("SELECT ?x WHERE { ?x <http://p> ?y . }");
        let b = fp("select\n\t?x  # projection\nwhere {\n  ?x <http://p> ?y .\n}\n");
        assert_eq!(a, b);
        let c = fp("SELECT ?x WHERE { ?x <http://q> ?y . }");
        assert_ne!(a, c);
    }

    #[test]
    fn prefix_order_and_spelling_do_not_matter() {
        let a = fp(
            "PREFIX ub: <http://ub.org/> PREFIX rdf: <http://w3.org/rdf#> \
             SELECT ?x WHERE { ?x rdf:type ub:Student . }",
        );
        let b = fp(
            "PREFIX rdf: <http://w3.org/rdf#> PREFIX ub: <http://ub.org/> \
             SELECT ?x WHERE { ?x rdf:type ub:Student . }",
        );
        let c = fp("PREFIX u: <http://ub.org/> PREFIX r: <http://w3.org/rdf#> \
             SELECT ?x WHERE { ?x r:type u:Student . }");
        let d = fp("SELECT ?x WHERE { ?x <http://w3.org/rdf#type> <http://ub.org/Student> . }");
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a, d);
    }

    #[test]
    fn a_keyword_expands_to_rdf_type() {
        let a = fp("SELECT ?x WHERE { ?x a <http://ub.org/Student> . }");
        let b = fp("PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> \
             SELECT ?x WHERE { ?x rdf:type <http://ub.org/Student> . }");
        assert_eq!(a, b);
    }

    #[test]
    fn variable_sigil_is_normalized() {
        assert_eq!(
            fp("SELECT ?x WHERE { ?x <http://p> ?y . }"),
            fp("SELECT $x WHERE { $x <http://p> $y . }")
        );
        // ... but renaming a variable is a different query.
        assert_ne!(
            fp("SELECT ?x WHERE { ?x <http://p> ?y . }"),
            fp("SELECT ?z WHERE { ?z <http://p> ?y . }")
        );
    }

    #[test]
    fn keyword_case_is_insensitive_but_literals_are_not() {
        assert_eq!(
            fp("SELECT ?x WHERE { ?x <http://p> \"v\" . }"),
            fp("sElEcT ?x wHeRe { ?x <http://p> \"v\" . }")
        );
        assert_ne!(
            fp("SELECT ?x WHERE { ?x <http://p> \"v\" . }"),
            fp("SELECT ?x WHERE { ?x <http://p> \"V\" . }")
        );
    }

    #[test]
    fn base_declarations_are_discarded_like_the_parser_does() {
        let plain = fp("PREFIX p: <http://x/> SELECT ?v WHERE { ?v p:q ?o . }");
        let with_base =
            fp("BASE <http://b/> PREFIX p: <http://x/> SELECT ?v WHERE { ?v p:q ?o . }");
        let base_between =
            fp("PREFIX p: <http://x/> BASE <http://b/> SELECT ?v WHERE { ?v p:q ?o . }");
        assert_eq!(plain, with_base);
        assert_eq!(plain, base_between);
    }

    #[test]
    fn only_prologue_prefixes_are_lifted() {
        // A PREFIX declaration *after* the body is invalid SPARQL (the
        // parser rejects it); it must not canonicalize to the same key as
        // the valid prologue form, or a warm cache would serve results for
        // a query a cold service rejects.
        let valid = fp("PREFIX p: <http://x/> SELECT ?v WHERE { ?v p:q ?w . }");
        let invalid = fingerprint("SELECT ?v WHERE { ?v p:q ?w . } PREFIX p: <http://x/>").unwrap();
        assert_ne!(valid, invalid);
        assert!(invalid.canonical.contains("PREFIX"));
    }

    #[test]
    fn lexical_errors_are_reported() {
        let err = fingerprint("SELECT ~").unwrap_err();
        assert_eq!(err.offset, 7);
    }

    #[test]
    fn display_is_the_hex_hash() {
        let f = fp("SELECT ?x WHERE { ?x <http://p> ?y . }");
        assert_eq!(f.to_string(), format!("{:016x}", f.hash));
    }

    #[test]
    fn token_count_excludes_prologue_and_eof() {
        // SELECT ?x WHERE { ?x <http://p> ?y . } → 9 canonical tokens.
        let f = fp("SELECT ?x WHERE { ?x <http://p> ?y . }");
        assert_eq!(f.tokens, 9);
        // Prologue declarations are lifted out, so an equivalent prefixed
        // spelling reports the same count.
        let g = fp("PREFIX e: <http://> SELECT ?x WHERE { ?x e:p ?y . }");
        assert_eq!(g.tokens, 9);
    }
}
