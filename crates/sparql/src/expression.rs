//! `FILTER` expressions and their evaluation.
//!
//! The paper distinguishes *inexpensive* filters (selection conditions,
//! applied while matching) from *expensive* ones (join conditions over two
//! variables, regular expressions) that are applied after the basic pattern
//! matching produces solutions (Section 5.1, BSBM Q5/Q6). The engine makes
//! that split by inspecting [`Expression::is_expensive`]; the evaluation
//! itself is shared and lives here.

use std::collections::HashMap;
use turbohom_rdf::Term;

/// A FILTER expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expression {
    /// A variable reference, e.g. `?price`.
    Variable(String),
    /// A constant RDF term (IRI or literal).
    Constant(Term),
    /// Comparison.
    Compare(Box<Expression>, CompareOp, Box<Expression>),
    /// Logical conjunction.
    And(Box<Expression>, Box<Expression>),
    /// Logical disjunction.
    Or(Box<Expression>, Box<Expression>),
    /// Logical negation.
    Not(Box<Expression>),
    /// Arithmetic.
    Arithmetic(Box<Expression>, ArithOp, Box<Expression>),
    /// `REGEX(expr, pattern [, flags])`. Only the `i` flag is honoured.
    Regex(Box<Expression>, String, Option<String>),
    /// `BOUND(?var)`.
    Bound(String),
    /// `LANG(expr) = "tag"` shorthand is not needed by the benchmarks, but
    /// `LANGMATCHES`-free `lang()` access is kept for completeness.
    Lang(Box<Expression>),
    /// `DATATYPE(expr)`.
    Datatype(Box<Expression>),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// A runtime value during expression evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An RDF term (IRI, literal, blank node).
    Term(Term),
    /// A numeric value (literals parsed as numbers, arithmetic results).
    Number(f64),
    /// A boolean.
    Boolean(bool),
    /// An unbound variable (OPTIONAL may leave variables unbound).
    Unbound,
}

impl Value {
    /// The effective boolean value per SPARQL semantics (simplified):
    /// booleans are themselves, numbers are `!= 0`, non-empty strings are
    /// true, unbound is an error treated as `false`.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Boolean(b) => *b,
            Value::Number(n) => *n != 0.0,
            Value::Term(Term::Literal { lexical, .. }) => !lexical.is_empty(),
            Value::Term(_) => true,
            Value::Unbound => false,
        }
    }

    /// Attempts a numeric view of the value.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            Value::Boolean(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Term(t) => t.as_double(),
            Value::Unbound => None,
        }
    }

    /// A string view used for string comparison and REGEX.
    pub fn as_string(&self) -> Option<String> {
        match self {
            Value::Term(Term::Literal { lexical, .. }) => Some(lexical.clone()),
            Value::Term(Term::Iri(iri)) => Some(iri.clone()),
            Value::Term(Term::BlankNode(b)) => Some(format!("_:{b}")),
            Value::Number(n) => Some(n.to_string()),
            Value::Boolean(b) => Some(b.to_string()),
            Value::Unbound => None,
        }
    }
}

/// The variable bindings an expression is evaluated against.
pub type EvalContext = HashMap<String, Term>;

impl Expression {
    /// The variables referenced by this expression.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_variables(&mut out);
        out.dedup();
        out
    }

    fn collect_variables(&self, out: &mut Vec<String>) {
        match self {
            Expression::Variable(v) | Expression::Bound(v) => out.push(v.clone()),
            Expression::Constant(_) => {}
            Expression::Compare(a, _, b) | Expression::And(a, b) | Expression::Or(a, b) => {
                a.collect_variables(out);
                b.collect_variables(out);
            }
            Expression::Arithmetic(a, _, b) => {
                a.collect_variables(out);
                b.collect_variables(out);
            }
            Expression::Not(e) | Expression::Lang(e) | Expression::Datatype(e) => {
                e.collect_variables(out)
            }
            Expression::Regex(e, _, _) => e.collect_variables(out),
        }
    }

    /// Returns `true` if the filter is "expensive" in the paper's sense:
    /// it references more than one variable (a join condition) or uses a
    /// regular expression. Expensive filters are applied after pattern
    /// matching; cheap ones during matching (Section 5.1).
    pub fn is_expensive(&self) -> bool {
        if matches!(self, Expression::Regex(..)) {
            return true;
        }
        let mut vars = self.variables();
        vars.sort();
        vars.dedup();
        vars.len() > 1 || self.contains_regex()
    }

    fn contains_regex(&self) -> bool {
        match self {
            Expression::Regex(..) => true,
            Expression::Compare(a, _, b)
            | Expression::And(a, b)
            | Expression::Or(a, b)
            | Expression::Arithmetic(a, _, b) => a.contains_regex() || b.contains_regex(),
            Expression::Not(e) | Expression::Lang(e) | Expression::Datatype(e) => {
                e.contains_regex()
            }
            _ => false,
        }
    }

    /// Evaluates the expression under `bindings`.
    pub fn evaluate(&self, bindings: &EvalContext) -> Value {
        match self {
            Expression::Variable(v) => match bindings.get(v) {
                Some(term) => Value::Term(term.clone()),
                None => Value::Unbound,
            },
            Expression::Constant(t) => Value::Term(t.clone()),
            Expression::Bound(v) => Value::Boolean(bindings.contains_key(v)),
            Expression::Compare(a, op, b) => {
                let av = a.evaluate(bindings);
                let bv = b.evaluate(bindings);
                if matches!(av, Value::Unbound) || matches!(bv, Value::Unbound) {
                    return Value::Boolean(false);
                }
                Value::Boolean(compare(&av, *op, &bv))
            }
            Expression::And(a, b) => {
                Value::Boolean(a.evaluate(bindings).as_bool() && b.evaluate(bindings).as_bool())
            }
            Expression::Or(a, b) => {
                Value::Boolean(a.evaluate(bindings).as_bool() || b.evaluate(bindings).as_bool())
            }
            Expression::Not(e) => Value::Boolean(!e.evaluate(bindings).as_bool()),
            Expression::Arithmetic(a, op, b) => {
                match (
                    a.evaluate(bindings).as_number(),
                    b.evaluate(bindings).as_number(),
                ) {
                    (Some(x), Some(y)) => Value::Number(match op {
                        ArithOp::Add => x + y,
                        ArithOp::Sub => x - y,
                        ArithOp::Mul => x * y,
                        ArithOp::Div => {
                            if y == 0.0 {
                                return Value::Unbound;
                            }
                            x / y
                        }
                    }),
                    _ => Value::Unbound,
                }
            }
            Expression::Regex(e, pattern, flags) => {
                let value = e.evaluate(bindings);
                match value.as_string() {
                    Some(s) => {
                        let case_insensitive =
                            flags.as_deref().map(|f| f.contains('i')).unwrap_or(false);
                        Value::Boolean(regex_match(&s, pattern, case_insensitive))
                    }
                    None => Value::Boolean(false),
                }
            }
            Expression::Lang(e) => match e.evaluate(bindings) {
                Value::Term(Term::Literal {
                    language: Some(lang),
                    ..
                }) => Value::Term(Term::literal(lang)),
                _ => Value::Term(Term::literal("")),
            },
            Expression::Datatype(e) => match e.evaluate(bindings) {
                Value::Term(Term::Literal {
                    datatype: Some(dt), ..
                }) => Value::Term(Term::iri(dt)),
                Value::Term(Term::Literal { .. }) => {
                    Value::Term(Term::iri(turbohom_rdf::vocab::XSD_STRING))
                }
                _ => Value::Unbound,
            },
        }
    }

    /// Evaluates the expression to its effective boolean value.
    pub fn evaluate_bool(&self, bindings: &EvalContext) -> bool {
        self.evaluate(bindings).as_bool()
    }
}

/// Compares two values: numerically when both sides have a numeric view,
/// otherwise by string form.
fn compare(a: &Value, op: CompareOp, b: &Value) -> bool {
    if let (Some(x), Some(y)) = (a.as_number(), b.as_number()) {
        return match op {
            CompareOp::Eq => x == y,
            CompareOp::Ne => x != y,
            CompareOp::Lt => x < y,
            CompareOp::Le => x <= y,
            CompareOp::Gt => x > y,
            CompareOp::Ge => x >= y,
        };
    }
    let (x, y) = match (a.as_string(), b.as_string()) {
        (Some(x), Some(y)) => (x, y),
        _ => return false,
    };
    match op {
        CompareOp::Eq => x == y,
        CompareOp::Ne => x != y,
        CompareOp::Lt => x < y,
        CompareOp::Le => x <= y,
        CompareOp::Gt => x > y,
        CompareOp::Ge => x >= y,
    }
}

/// A small regular-expression matcher supporting the constructs the BSBM
/// queries use: literal characters, `.`, `.*`, `.+`, `^`, `$`, and
/// case-insensitive matching. Unanchored patterns match anywhere in the
/// string (standard regex "search" semantics).
pub fn regex_match(text: &str, pattern: &str, case_insensitive: bool) -> bool {
    let (text, pattern) = if case_insensitive {
        (text.to_lowercase(), pattern.to_lowercase())
    } else {
        (text.to_string(), pattern.to_string())
    };
    let anchored_start = pattern.starts_with('^');
    let anchored_end = pattern.ends_with('$') && !pattern.ends_with("\\$");
    let core: &str = {
        let s = pattern.strip_prefix('^').unwrap_or(&pattern);
        let s = if anchored_end {
            s.strip_suffix('$').unwrap_or(s)
        } else {
            s
        };
        s
    };
    let tokens = tokenize_regex(core);
    let text_chars: Vec<char> = text.chars().collect();
    if anchored_start {
        matches_here(&tokens, 0, &text_chars, 0, anchored_end)
    } else {
        (0..=text_chars.len())
            .any(|start| matches_here(&tokens, 0, &text_chars, start, anchored_end))
    }
}

#[derive(Debug, Clone, PartialEq)]
enum RegexToken {
    Literal(char),
    AnyChar,
    Star(Box<RegexToken>),
    Plus(Box<RegexToken>),
}

fn tokenize_regex(pattern: &str) -> Vec<RegexToken> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let base = match chars[i] {
            '.' => RegexToken::AnyChar,
            '\\' if i + 1 < chars.len() => {
                i += 1;
                RegexToken::Literal(chars[i])
            }
            c => RegexToken::Literal(c),
        };
        i += 1;
        if i < chars.len() && chars[i] == '*' {
            tokens.push(RegexToken::Star(Box::new(base)));
            i += 1;
        } else if i < chars.len() && chars[i] == '+' {
            tokens.push(RegexToken::Plus(Box::new(base)));
            i += 1;
        } else {
            tokens.push(base);
        }
    }
    tokens
}

fn single_matches(token: &RegexToken, c: char) -> bool {
    match token {
        RegexToken::Literal(l) => *l == c,
        RegexToken::AnyChar => true,
        _ => unreachable!("quantified tokens handled by caller"),
    }
}

fn matches_here(
    tokens: &[RegexToken],
    ti: usize,
    text: &[char],
    pos: usize,
    anchored_end: bool,
) -> bool {
    if ti == tokens.len() {
        return !anchored_end || pos == text.len();
    }
    match &tokens[ti] {
        RegexToken::Star(inner) => {
            // Zero or more occurrences of `inner`.
            let mut p = pos;
            loop {
                if matches_here(tokens, ti + 1, text, p, anchored_end) {
                    return true;
                }
                if p < text.len() && single_matches(inner, text[p]) {
                    p += 1;
                } else {
                    return false;
                }
            }
        }
        RegexToken::Plus(inner) => {
            if pos < text.len() && single_matches(inner, text[pos]) {
                let star = RegexToken::Star(inner.clone());
                let mut rest = vec![star];
                rest.extend_from_slice(&tokens[ti + 1..]);
                matches_here(&rest, 0, text, pos + 1, anchored_end)
            } else {
                false
            }
        }
        simple => {
            if pos < text.len() && single_matches(simple, text[pos]) {
                matches_here(tokens, ti + 1, text, pos + 1, anchored_end)
            } else {
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(pairs: &[(&str, Term)]) -> EvalContext {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    fn num(n: i64) -> Expression {
        Expression::Constant(Term::integer(n))
    }

    fn var(name: &str) -> Expression {
        Expression::Variable(name.to_string())
    }

    #[test]
    fn numeric_comparisons() {
        let bindings = ctx(&[("x", Term::integer(5)), ("y", Term::integer(9))]);
        let e = Expression::Compare(Box::new(var("x")), CompareOp::Lt, Box::new(var("y")));
        assert!(e.evaluate_bool(&bindings));
        let e2 = Expression::Compare(Box::new(var("x")), CompareOp::Ge, Box::new(num(5)));
        assert!(e2.evaluate_bool(&bindings));
        let e3 = Expression::Compare(Box::new(var("x")), CompareOp::Gt, Box::new(var("y")));
        assert!(!e3.evaluate_bool(&bindings));
    }

    #[test]
    fn string_comparison_falls_back_lexicographically() {
        let bindings = ctx(&[
            ("a", Term::literal("apple")),
            ("b", Term::literal("banana")),
        ]);
        let e = Expression::Compare(Box::new(var("a")), CompareOp::Lt, Box::new(var("b")));
        assert!(e.evaluate_bool(&bindings));
        let eq = Expression::Compare(
            Box::new(var("a")),
            CompareOp::Eq,
            Box::new(Expression::Constant(Term::literal("apple"))),
        );
        assert!(eq.evaluate_bool(&bindings));
    }

    #[test]
    fn unbound_comparisons_are_false_and_bound_detects_them() {
        let bindings = ctx(&[("x", Term::integer(1))]);
        let cmp = Expression::Compare(Box::new(var("missing")), CompareOp::Eq, Box::new(num(1)));
        assert!(!cmp.evaluate_bool(&bindings));
        assert!(Expression::Bound("x".into()).evaluate_bool(&bindings));
        assert!(!Expression::Bound("missing".into()).evaluate_bool(&bindings));
        let not_bound = Expression::Not(Box::new(Expression::Bound("missing".into())));
        assert!(not_bound.evaluate_bool(&bindings));
    }

    #[test]
    fn logical_connectives() {
        let t = Expression::Constant(Term::literal("x"));
        let f = Expression::Compare(Box::new(num(1)), CompareOp::Eq, Box::new(num(2)));
        let bindings = EvalContext::new();
        assert!(Expression::And(Box::new(t.clone()), Box::new(t.clone())).evaluate_bool(&bindings));
        assert!(!Expression::And(Box::new(t.clone()), Box::new(f.clone())).evaluate_bool(&bindings));
        assert!(Expression::Or(Box::new(f.clone()), Box::new(t.clone())).evaluate_bool(&bindings));
        assert!(!Expression::Or(Box::new(f.clone()), Box::new(f)).evaluate_bool(&bindings));
    }

    #[test]
    fn arithmetic_and_division_by_zero() {
        let bindings = ctx(&[("x", Term::integer(10))]);
        let sum = Expression::Arithmetic(Box::new(var("x")), ArithOp::Add, Box::new(num(5)));
        assert_eq!(sum.evaluate(&bindings).as_number(), Some(15.0));
        let prod = Expression::Arithmetic(Box::new(var("x")), ArithOp::Mul, Box::new(num(3)));
        let cmp = Expression::Compare(Box::new(prod), CompareOp::Eq, Box::new(num(30)));
        assert!(cmp.evaluate_bool(&bindings));
        let div0 = Expression::Arithmetic(Box::new(var("x")), ArithOp::Div, Box::new(num(0)));
        assert_eq!(div0.evaluate(&bindings), Value::Unbound);
    }

    #[test]
    fn regex_literal_and_wildcards() {
        assert!(regex_match("ProductType123", "Type", false));
        assert!(regex_match("ProductType123", "^Product", false));
        assert!(!regex_match("ProductType123", "^Type", false));
        assert!(regex_match("ProductType123", "123$", false));
        assert!(regex_match("abcdef", "a.c", false));
        assert!(regex_match("abbbbc", "ab*c", false));
        assert!(regex_match("ac", "ab*c", false));
        assert!(!regex_match("ac", "ab+c", false));
        assert!(regex_match("abc", "ab+c", false));
        assert!(regex_match("word and more", "word.*more", false));
        assert!(regex_match("HELLO", "hello", true));
        assert!(!regex_match("HELLO", "hello", false));
        assert!(regex_match("x", "", false));
        assert!(regex_match("", "^$", false));
    }

    #[test]
    fn regex_expression_evaluation() {
        let bindings = ctx(&[("label", Term::literal("great product alpha"))]);
        let e = Expression::Regex(Box::new(var("label")), "alpha".into(), None);
        assert!(e.evaluate_bool(&bindings));
        let e_ci = Expression::Regex(Box::new(var("label")), "ALPHA".into(), Some("i".into()));
        assert!(e_ci.evaluate_bool(&bindings));
        let e_miss = Expression::Regex(Box::new(var("label")), "beta".into(), None);
        assert!(!e_miss.evaluate_bool(&bindings));
    }

    #[test]
    fn expensive_classification() {
        // Join condition over two variables → expensive (BSBM Q5 style).
        let join = Expression::Compare(Box::new(var("r2")), CompareOp::Gt, Box::new(var("r1")));
        assert!(join.is_expensive());
        // Single-variable selection → cheap.
        let sel = Expression::Compare(Box::new(var("price")), CompareOp::Lt, Box::new(num(100)));
        assert!(!sel.is_expensive());
        // Regex → expensive (BSBM Q6 style).
        let re = Expression::Regex(Box::new(var("label")), "x".into(), None);
        assert!(re.is_expensive());
        // Same variable twice is still cheap.
        let twice = Expression::And(
            Box::new(Expression::Compare(
                Box::new(var("p")),
                CompareOp::Gt,
                Box::new(num(1)),
            )),
            Box::new(Expression::Compare(
                Box::new(var("p")),
                CompareOp::Lt,
                Box::new(num(9)),
            )),
        );
        assert!(!twice.is_expensive());
    }

    #[test]
    fn variables_collection() {
        let e = Expression::And(
            Box::new(Expression::Compare(
                Box::new(var("a")),
                CompareOp::Lt,
                Box::new(var("b")),
            )),
            Box::new(Expression::Bound("c".into())),
        );
        let mut vars = e.variables();
        vars.sort();
        assert_eq!(vars, vec!["a", "b", "c"]);
    }

    #[test]
    fn lang_and_datatype_accessors() {
        let bindings = ctx(&[
            ("l", Term::lang_literal("chat", "fr")),
            (
                "d",
                Term::typed_literal("5", turbohom_rdf::vocab::XSD_INTEGER),
            ),
            ("p", Term::literal("plain")),
        ]);
        let lang = Expression::Lang(Box::new(var("l"))).evaluate(&bindings);
        assert_eq!(lang, Value::Term(Term::literal("fr")));
        let dt = Expression::Datatype(Box::new(var("d"))).evaluate(&bindings);
        assert_eq!(dt, Value::Term(Term::iri(turbohom_rdf::vocab::XSD_INTEGER)));
        let dts = Expression::Datatype(Box::new(var("p"))).evaluate(&bindings);
        assert_eq!(dts, Value::Term(Term::iri(turbohom_rdf::vocab::XSD_STRING)));
    }

    #[test]
    fn value_coercions() {
        assert!(Value::Boolean(true).as_bool());
        assert!(!Value::Unbound.as_bool());
        assert!(Value::Number(2.0).as_bool());
        assert!(!Value::Number(0.0).as_bool());
        assert_eq!(Value::Term(Term::integer(7)).as_number(), Some(7.0));
        assert_eq!(Value::Boolean(true).as_number(), Some(1.0));
        assert_eq!(Value::Unbound.as_string(), None);
        assert_eq!(
            Value::Term(Term::iri("http://x")).as_string(),
            Some("http://x".to_string())
        );
    }
}
