//! The SPARQL algebra produced by the parser.
//!
//! The shape follows what the TurboHOM++ engine needs rather than the full
//! W3C algebra: a query is a projection over one [`GroupPattern`], and a
//! group is a required basic graph pattern plus `OPTIONAL` sub-groups,
//! `FILTER` expressions and `UNION` alternatives — the structure used by the
//! BSBM explore use case (paper Section 5.1).

use crate::expression::Expression;
use std::collections::BTreeSet;
use turbohom_rdf::Term;

/// A term position in a triple pattern: a variable or a constant RDF term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SparqlTerm {
    /// A variable, e.g. `?x` (stored without the leading `?`).
    Variable(String),
    /// A constant RDF term (IRI or literal).
    Constant(Term),
}

impl SparqlTerm {
    /// Convenience constructor for a variable.
    pub fn var(name: impl Into<String>) -> Self {
        SparqlTerm::Variable(name.into())
    }

    /// Convenience constructor for an IRI constant.
    pub fn iri(value: impl Into<String>) -> Self {
        SparqlTerm::Constant(Term::iri(value))
    }

    /// Convenience constructor for a plain literal constant.
    pub fn literal(value: impl Into<String>) -> Self {
        SparqlTerm::Constant(Term::literal(value))
    }

    /// Returns the variable name if this is a variable.
    pub fn as_variable(&self) -> Option<&str> {
        match self {
            SparqlTerm::Variable(v) => Some(v),
            SparqlTerm::Constant(_) => None,
        }
    }

    /// Returns the constant term if this is a constant.
    pub fn as_constant(&self) -> Option<&Term> {
        match self {
            SparqlTerm::Variable(_) => None,
            SparqlTerm::Constant(t) => Some(t),
        }
    }

    /// Returns `true` if this is a variable.
    pub fn is_variable(&self) -> bool {
        matches!(self, SparqlTerm::Variable(_))
    }
}

/// A triple pattern `subject predicate object`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TriplePattern {
    /// The subject position.
    pub subject: SparqlTerm,
    /// The predicate position.
    pub predicate: SparqlTerm,
    /// The object position.
    pub object: SparqlTerm,
}

impl TriplePattern {
    /// Creates a new triple pattern.
    pub fn new(subject: SparqlTerm, predicate: SparqlTerm, object: SparqlTerm) -> Self {
        TriplePattern {
            subject,
            predicate,
            object,
        }
    }

    /// The variables mentioned by this pattern, in subject/predicate/object order.
    pub fn variables(&self) -> Vec<&str> {
        [&self.subject, &self.predicate, &self.object]
            .into_iter()
            .filter_map(|t| t.as_variable())
            .collect()
    }

    /// Number of constant positions (used by the baselines' selectivity
    /// heuristics: more constants ⇒ more selective).
    pub fn bound_positions(&self) -> usize {
        [&self.subject, &self.predicate, &self.object]
            .into_iter()
            .filter(|t| !t.is_variable())
            .count()
    }
}

/// A group graph pattern: the unit inside `{ ... }`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupPattern {
    /// The required triple patterns (the basic graph pattern).
    pub triples: Vec<TriplePattern>,
    /// `OPTIONAL { ... }` sub-groups, in syntactic order. May be nested.
    pub optionals: Vec<GroupPattern>,
    /// `FILTER (...)` expressions attached to this group.
    pub filters: Vec<Expression>,
    /// `{ A } UNION { B } [UNION { C } ...]` alternatives. Each entry is one
    /// union construct; its `Vec` holds the branches.
    pub unions: Vec<Vec<GroupPattern>>,
}

impl GroupPattern {
    /// Creates an empty group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` if the group contains nothing at all.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
            && self.optionals.is_empty()
            && self.filters.is_empty()
            && self.unions.is_empty()
    }

    /// All variables mentioned anywhere in the group (required part,
    /// optionals, filters and unions), sorted and deduplicated.
    pub fn all_variables(&self) -> Vec<String> {
        let mut set = BTreeSet::new();
        self.collect_variables(&mut set);
        set.into_iter().collect()
    }

    fn collect_variables(&self, out: &mut BTreeSet<String>) {
        for t in &self.triples {
            for v in t.variables() {
                out.insert(v.to_string());
            }
        }
        for opt in &self.optionals {
            opt.collect_variables(out);
        }
        for f in &self.filters {
            for v in f.variables() {
                out.insert(v);
            }
        }
        for union in &self.unions {
            for branch in union {
                branch.collect_variables(out);
            }
        }
    }

    /// Total number of triple patterns including optionals and unions.
    pub fn pattern_count(&self) -> usize {
        self.triples.len()
            + self
                .optionals
                .iter()
                .map(GroupPattern::pattern_count)
                .sum::<usize>()
            + self
                .unions
                .iter()
                .flat_map(|u| u.iter().map(GroupPattern::pattern_count))
                .sum::<usize>()
    }

    /// Expands the `UNION` constructs into a list of union-free groups (the
    /// "split into sub-queries" strategy of Section 5.1). Each returned group
    /// contains this group's required triples/optionals/filters plus one
    /// branch choice per union construct (cartesian combination).
    pub fn expand_unions(&self) -> Vec<GroupPattern> {
        let base = GroupPattern {
            triples: self.triples.clone(),
            optionals: self.optionals.clone(),
            filters: self.filters.clone(),
            unions: Vec::new(),
        };
        let mut expanded = vec![base];
        for union in &self.unions {
            let mut next = Vec::new();
            for partial in &expanded {
                for branch in union {
                    // The branch itself may contain unions; expand recursively.
                    for branch_expanded in branch.expand_unions() {
                        let mut combined = partial.clone();
                        combined.triples.extend(branch_expanded.triples.clone());
                        combined.optionals.extend(branch_expanded.optionals.clone());
                        combined.filters.extend(branch_expanded.filters.clone());
                        next.push(combined);
                    }
                }
            }
            expanded = next;
        }
        expanded
    }
}

/// The `SELECT` projection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selection {
    /// `SELECT *` — project every variable of the group.
    All,
    /// `SELECT ?a ?b ...` — project the listed variables (without `?`).
    Variables(Vec<String>),
}

/// A parsed SPARQL query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The projection.
    pub selection: Selection,
    /// Whether `DISTINCT` was present (recorded; the engines ignore it when
    /// timing pure pattern matching, as the paper prescribes in Section 7.1).
    pub distinct: bool,
    /// The `WHERE` group.
    pub pattern: GroupPattern,
    /// `ORDER BY` variables (recorded, not applied during matching).
    pub order_by: Vec<String>,
    /// `LIMIT`, if present.
    pub limit: Option<usize>,
    /// `OFFSET`, if present.
    pub offset: Option<usize>,
}

impl Query {
    /// The projected variable names for this query, resolving `SELECT *`
    /// against the variables of the pattern.
    pub fn projected_variables(&self) -> Vec<String> {
        match &self.selection {
            Selection::All => self.pattern.all_variables(),
            Selection::Variables(vars) => vars.clone(),
        }
    }

    /// Returns `true` if the query uses any feature beyond a plain BGP
    /// (OPTIONAL / FILTER / UNION).
    pub fn has_general_features(&self) -> bool {
        !self.pattern.optionals.is_empty()
            || !self.pattern.filters.is_empty()
            || !self.pattern.unions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp(s: &str, p: &str, o: &str) -> TriplePattern {
        let term = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                SparqlTerm::var(v)
            } else {
                SparqlTerm::iri(x)
            }
        };
        TriplePattern::new(term(s), term(p), term(o))
    }

    #[test]
    fn sparql_term_accessors() {
        let v = SparqlTerm::var("x");
        assert!(v.is_variable());
        assert_eq!(v.as_variable(), Some("x"));
        assert!(v.as_constant().is_none());
        let c = SparqlTerm::iri("http://ex.org/a");
        assert!(!c.is_variable());
        assert_eq!(c.as_constant(), Some(&Term::iri("http://ex.org/a")));
    }

    #[test]
    fn pattern_variables_and_selectivity() {
        let p = tp("?x", "http://p", "?y");
        assert_eq!(p.variables(), vec!["x", "y"]);
        assert_eq!(p.bound_positions(), 1);
        let q = tp("http://s", "http://p", "http://o");
        assert_eq!(q.bound_positions(), 3);
    }

    #[test]
    fn group_all_variables_recurse_into_optionals_and_unions() {
        let mut g = GroupPattern::new();
        g.triples.push(tp("?x", "http://p", "?y"));
        let mut opt = GroupPattern::new();
        opt.triples.push(tp("?x", "http://q", "?z"));
        g.optionals.push(opt);
        let mut b1 = GroupPattern::new();
        b1.triples.push(tp("?x", "http://r", "?w"));
        let mut b2 = GroupPattern::new();
        b2.triples.push(tp("?x", "http://r", "?v"));
        g.unions.push(vec![b1, b2]);
        assert_eq!(g.all_variables(), vec!["v", "w", "x", "y", "z"]);
        assert_eq!(g.pattern_count(), 4);
    }

    #[test]
    fn union_expansion_produces_one_group_per_branch() {
        let mut g = GroupPattern::new();
        g.triples.push(tp("?x", "http://p", "?y"));
        let mut b1 = GroupPattern::new();
        b1.triples.push(tp("?x", "http://f", "http://feature1"));
        let mut b2 = GroupPattern::new();
        b2.triples.push(tp("?x", "http://f", "http://feature2"));
        g.unions.push(vec![b1, b2]);
        let expanded = g.expand_unions();
        assert_eq!(expanded.len(), 2);
        for e in &expanded {
            assert_eq!(e.triples.len(), 2);
            assert!(e.unions.is_empty());
        }
    }

    #[test]
    fn union_expansion_is_cartesian_over_multiple_unions() {
        let mut g = GroupPattern::new();
        let branch = |p: &str| {
            let mut b = GroupPattern::new();
            b.triples.push(tp("?x", p, "?y"));
            b
        };
        g.unions.push(vec![branch("http://a"), branch("http://b")]);
        g.unions.push(vec![
            branch("http://c"),
            branch("http://d"),
            branch("http://e"),
        ]);
        assert_eq!(g.expand_unions().len(), 6);
    }

    #[test]
    fn union_expansion_without_unions_is_identity() {
        let mut g = GroupPattern::new();
        g.triples.push(tp("?x", "http://p", "?y"));
        let expanded = g.expand_unions();
        assert_eq!(expanded.len(), 1);
        assert_eq!(expanded[0].triples, g.triples);
    }

    #[test]
    fn query_projection_resolution() {
        let mut g = GroupPattern::new();
        g.triples.push(tp("?b", "http://p", "?a"));
        let q = Query {
            selection: Selection::All,
            distinct: false,
            pattern: g.clone(),
            order_by: vec![],
            limit: None,
            offset: None,
        };
        assert_eq!(q.projected_variables(), vec!["a", "b"]);
        assert!(!q.has_general_features());

        let q2 = Query {
            selection: Selection::Variables(vec!["b".into()]),
            distinct: true,
            pattern: g,
            order_by: vec![],
            limit: Some(10),
            offset: None,
        };
        assert_eq!(q2.projected_variables(), vec!["b"]);
    }
}
