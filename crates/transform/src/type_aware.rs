//! The type-aware transformation (paper Section 4.1, Definition 3).
//!
//! Triples whose predicate is `rdf:type` or `rdfs:subClassOf` are not turned
//! into edges. Instead, the classes an entity belongs to — following
//! `rdf:type` once and `rdfs:subClassOf` transitively — become the entity
//! vertex's *label set*. The class terms themselves stop being vertices
//! (unless they also participate in ordinary triples), which is what shrinks
//! the data and query graphs: `|V'| = |V| − |V_type|` in the paper's
//! notation.
//!
//! The directly asserted types are retained separately as `Lsimple` so that
//! queries under the simple entailment regime can be answered (Section 4.2).

use crate::common::{GraphMappings, TransformKind, TransformedGraph};
use std::collections::{HashMap, HashSet};
use turbohom_graph::{LabeledGraphBuilder, VLabel};
use turbohom_rdf::{Dataset, TermId};

/// Applies the type-aware transformation to `dataset`.
pub fn type_aware_transform(dataset: &Dataset) -> TransformedGraph {
    let rdf_type = dataset.rdf_type_id();
    let subclassof = dataset.subclassof_id();

    let is_type_pred = |p: TermId| Some(p) == rdf_type;
    let is_subclass_pred = |p: TermId| Some(p) == subclassof;

    // ---- Pass 1: collect the schema hierarchy and direct type assertions.
    let mut subclass_edges: HashMap<TermId, Vec<TermId>> = HashMap::new();
    let mut direct_types: HashMap<TermId, Vec<TermId>> = HashMap::new();
    for t in dataset.triples.iter() {
        if is_subclass_pred(t.p) {
            subclass_edges.entry(t.s).or_default().push(t.o);
        } else if is_type_pred(t.p) {
            direct_types.entry(t.s).or_default().push(t.o);
        }
    }

    // Transitive superclass closure (schema graphs are tiny; DFS per class).
    let superclasses = |class: TermId| -> Vec<TermId> {
        let mut out = Vec::new();
        let mut seen: HashSet<TermId> = HashSet::new();
        let mut stack: Vec<TermId> = subclass_edges.get(&class).cloned().unwrap_or_default();
        while let Some(c) = stack.pop() {
            if c != class && seen.insert(c) {
                out.push(c);
                if let Some(next) = subclass_edges.get(&c) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        out
    };

    // ---- Pass 2: intern ids deterministically (triple insertion order).
    let mut mappings = GraphMappings::default();
    for t in dataset.triples.iter() {
        if is_type_pred(t.p) {
            mappings.intern_vertex(t.s);
            mappings.intern_vlabel(t.o);
        } else if is_subclass_pred(t.p) {
            // Classes get labels but not vertices.
            mappings.intern_vlabel(t.s);
            mappings.intern_vlabel(t.o);
        } else {
            mappings.intern_vertex(t.s);
            mappings.intern_vertex(t.o);
            mappings.intern_elabel(t.p);
        }
    }

    // ---- Pass 3: compute per-vertex label sets (full closure and Lsimple).
    let n = mappings.vertex_to_term.len();
    let mut full_labels: Vec<Vec<VLabel>> = vec![Vec::new(); n];
    let mut simple_labels: Vec<Vec<VLabel>> = vec![Vec::new(); n];
    for (&subject, types) in &direct_types {
        let v = mappings
            .vertex_of(subject)
            .expect("typed subjects are interned as vertices");
        let mut full: HashSet<TermId> = HashSet::new();
        for &class in types {
            full.insert(class);
            for sup in superclasses(class) {
                full.insert(sup);
            }
            let l = mappings.intern_vlabel(class);
            if !simple_labels[v.index()].contains(&l) {
                simple_labels[v.index()].push(l);
            }
        }
        for class in full {
            let l = mappings.intern_vlabel(class);
            if !full_labels[v.index()].contains(&l) {
                full_labels[v.index()].push(l);
            }
        }
    }
    for l in simple_labels.iter_mut() {
        l.sort_unstable();
    }

    // ---- Pass 4: build the CSR graph from the non-schema triples.
    let mut builder = LabeledGraphBuilder::with_capacity(n, dataset.len());
    for labels in full_labels.into_iter() {
        builder.add_vertex(labels);
    }
    for t in dataset.triples.iter() {
        if is_type_pred(t.p) || is_subclass_pred(t.p) {
            continue;
        }
        let s = mappings.vertex_of(t.s).expect("interned above");
        let o = mappings.vertex_of(t.o).expect("interned above");
        let p = mappings.elabel_of(t.p).expect("interned above");
        builder.add_edge(s, o, p);
    }

    TransformedGraph::assemble(
        TransformKind::TypeAware,
        builder.build(),
        mappings,
        Some(simple_labels),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbohom_graph::Direction;
    use turbohom_rdf::{vocab, Term};

    fn ub(l: &str) -> String {
        format!("http://ub.org/{l}")
    }

    /// The RDF graph of paper Figure 3 (same fixture as the direct test).
    fn figure3_dataset() -> Dataset {
        let mut ds = Dataset::new();
        ds.insert_iris(&ub("student1"), vocab::RDF_TYPE, &ub("GraduateStudent"));
        ds.insert_iris(
            &ub("GraduateStudent"),
            vocab::RDFS_SUBCLASSOF,
            &ub("Student"),
        );
        ds.insert_iris(&ub("univ1"), vocab::RDF_TYPE, &ub("University"));
        ds.insert_iris(&ub("dept1.univ1"), vocab::RDF_TYPE, &ub("Department"));
        ds.insert_iris(
            &ub("student1"),
            &ub("undergraduateDegreeFrom"),
            &ub("univ1"),
        );
        ds.insert_iris(&ub("student1"), &ub("memberOf"), &ub("dept1.univ1"));
        ds.insert_iris(&ub("dept1.univ1"), &ub("subOrganizationOf"), &ub("univ1"));
        ds.insert(
            &Term::iri(ub("student1")),
            &Term::iri(ub("telephone")),
            &Term::literal("012-345-6789"),
        );
        ds.insert(
            &Term::iri(ub("student1")),
            &Term::iri(ub("emailAddress")),
            &Term::literal("john@dept1.univ1.edu"),
        );
        ds
    }

    fn vertex(t: &TransformedGraph, ds: &Dataset, term: &Term) -> turbohom_graph::VertexId {
        t.mappings
            .vertex_of(ds.dictionary.id_of(term).unwrap())
            .unwrap()
    }

    #[test]
    fn figure7_vertex_and_edge_counts() {
        // Figure 7d: 5 vertices (student1, univ1, dept1.univ1, two literals),
        // 5 edges, 4 vertex labels (GraduateStudent, Student, University,
        // Department), 5 edge labels.
        let ds = figure3_dataset();
        let t = type_aware_transform(&ds);
        assert_eq!(t.kind, TransformKind::TypeAware);
        assert_eq!(t.graph.vertex_count(), 5);
        assert_eq!(t.graph.edge_count(), 5);
        assert_eq!(t.graph.vertex_label_count(), 4);
        assert_eq!(t.graph.edge_label_count(), 5);
    }

    #[test]
    fn type_closure_becomes_label_set() {
        let ds = figure3_dataset();
        let t = type_aware_transform(&ds);
        let student1 = vertex(&t, &ds, &Term::iri(ub("student1")));
        // L(student1) = {GraduateStudent, Student} — Student via subClassOf.
        let grad = t
            .mappings
            .vlabel_of(ds.dictionary.id_of_iri(&ub("GraduateStudent")).unwrap())
            .unwrap();
        let student = t
            .mappings
            .vlabel_of(ds.dictionary.id_of_iri(&ub("Student")).unwrap())
            .unwrap();
        assert!(t.graph.has_label(student1, grad));
        assert!(t.graph.has_label(student1, student));
        assert_eq!(t.graph.labels(student1).len(), 2);
    }

    #[test]
    fn simple_labels_only_keep_direct_assertions() {
        let ds = figure3_dataset();
        let t = type_aware_transform(&ds);
        let student1 = vertex(&t, &ds, &Term::iri(ub("student1")));
        let grad = t
            .mappings
            .vlabel_of(ds.dictionary.id_of_iri(&ub("GraduateStudent")).unwrap())
            .unwrap();
        let simple = t.simple_labels_of(student1);
        assert_eq!(simple, &[grad]);
        assert!(simple.len() < t.graph.labels(student1).len());
    }

    #[test]
    fn class_terms_are_not_vertices() {
        let ds = figure3_dataset();
        let t = type_aware_transform(&ds);
        for class in ["GraduateStudent", "Student", "University", "Department"] {
            let id = ds.dictionary.id_of_iri(&ub(class)).unwrap();
            assert!(
                t.mappings.vertex_of(id).is_none(),
                "{class} must not be a vertex"
            );
            assert!(
                t.mappings.vlabel_of(id).is_some(),
                "{class} must be a label"
            );
        }
    }

    #[test]
    fn non_schema_topology_is_preserved() {
        let ds = figure3_dataset();
        let t = type_aware_transform(&ds);
        let student1 = vertex(&t, &ds, &Term::iri(ub("student1")));
        let univ1 = vertex(&t, &ds, &Term::iri(ub("univ1")));
        let dept = vertex(&t, &ds, &Term::iri(ub("dept1.univ1")));
        let el = |name: &str| {
            t.mappings
                .elabel_of(ds.dictionary.id_of_iri(&ub(name)).unwrap())
                .unwrap()
        };
        assert!(t
            .graph
            .has_edge(student1, univ1, el("undergraduateDegreeFrom")));
        assert!(t.graph.has_edge(student1, dept, el("memberOf")));
        assert!(t.graph.has_edge(dept, univ1, el("subOrganizationOf")));
        // No rdf:type edge label exists at all.
        let rdf_type_id = ds.dictionary.id_of_iri(vocab::RDF_TYPE).unwrap();
        assert!(t.mappings.elabel_of(rdf_type_id).is_none());
    }

    #[test]
    fn edge_reduction_matches_schema_triple_count() {
        // |E_type-aware| = |E_direct| − (#type triples + #subClassOf triples).
        let ds = figure3_dataset();
        let direct = crate::direct::direct_transform(&ds);
        let aware = type_aware_transform(&ds);
        let schema_triples = 4; // 3 rdf:type + 1 subClassOf
        assert_eq!(
            aware.graph.edge_count(),
            direct.graph.edge_count() - schema_triples
        );
        assert!(aware.graph.vertex_count() < direct.graph.vertex_count());
    }

    #[test]
    fn inverse_label_index_reflects_closure() {
        let ds = figure3_dataset();
        let t = type_aware_transform(&ds);
        let student = t
            .mappings
            .vlabel_of(ds.dictionary.id_of_iri(&ub("Student")).unwrap())
            .unwrap();
        assert_eq!(t.inverse_labels.frequency(student), 1);
        let university = t
            .mappings
            .vlabel_of(ds.dictionary.id_of_iri(&ub("University")).unwrap())
            .unwrap();
        let univ1 = vertex(&t, &ds, &Term::iri(ub("univ1")));
        assert_eq!(t.inverse_labels.vertices_with_label(university), &[univ1]);
    }

    #[test]
    fn deep_class_hierarchy_is_folded_transitively() {
        let mut ds = Dataset::new();
        ds.insert_iris(&ub("A"), vocab::RDFS_SUBCLASSOF, &ub("B"));
        ds.insert_iris(&ub("B"), vocab::RDFS_SUBCLASSOF, &ub("C"));
        ds.insert_iris(&ub("C"), vocab::RDFS_SUBCLASSOF, &ub("D"));
        ds.insert_iris(&ub("x"), vocab::RDF_TYPE, &ub("A"));
        ds.insert_iris(&ub("x"), &ub("knows"), &ub("y"));
        let t = type_aware_transform(&ds);
        let x = vertex(&t, &ds, &Term::iri(ub("x")));
        assert_eq!(t.graph.labels(x).len(), 4);
        assert_eq!(t.simple_labels_of(x).len(), 1);
    }

    #[test]
    fn cyclic_hierarchy_terminates() {
        let mut ds = Dataset::new();
        ds.insert_iris(&ub("A"), vocab::RDFS_SUBCLASSOF, &ub("B"));
        ds.insert_iris(&ub("B"), vocab::RDFS_SUBCLASSOF, &ub("A"));
        ds.insert_iris(&ub("x"), vocab::RDF_TYPE, &ub("A"));
        ds.insert_iris(&ub("x"), &ub("p"), &ub("y"));
        let t = type_aware_transform(&ds);
        let x = vertex(&t, &ds, &Term::iri(ub("x")));
        assert_eq!(t.graph.labels(x).len(), 2);
    }

    #[test]
    fn entity_appearing_only_in_type_triples_still_becomes_vertex() {
        let mut ds = Dataset::new();
        ds.insert_iris(&ub("lonely"), vocab::RDF_TYPE, &ub("Thing"));
        let t = type_aware_transform(&ds);
        assert_eq!(t.graph.vertex_count(), 1);
        assert_eq!(t.graph.edge_count(), 0);
        let lonely = vertex(&t, &ds, &Term::iri(ub("lonely")));
        assert_eq!(t.graph.labels(lonely).len(), 1);
        assert_eq!(t.graph.degree(lonely, Direction::Outgoing), 0);
    }

    #[test]
    fn class_used_as_entity_is_both_label_and_vertex() {
        // A class that also participates in a non-schema triple (common in
        // BTC-style data) must be a vertex *and* a label.
        let mut ds = Dataset::new();
        ds.insert_iris(&ub("x"), vocab::RDF_TYPE, &ub("Curious"));
        ds.insert_iris(&ub("Curious"), &ub("definedBy"), &ub("ontology1"));
        let t = type_aware_transform(&ds);
        let curious_id = ds.dictionary.id_of_iri(&ub("Curious")).unwrap();
        assert!(t.mappings.vertex_of(curious_id).is_some());
        assert!(t.mappings.vlabel_of(curious_id).is_some());
    }

    #[test]
    fn empty_dataset() {
        let t = type_aware_transform(&Dataset::new());
        assert_eq!(t.graph.vertex_count(), 0);
        assert_eq!(t.graph.edge_count(), 0);
        assert_eq!(t.graph.vertex_label_count(), 0);
    }
}
