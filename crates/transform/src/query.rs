//! SPARQL group pattern → query graph transformation.
//!
//! Under the **direct** transformation every triple pattern becomes a query
//! edge and every distinct term/variable becomes a query vertex (Figure 5b).
//! Under the **type-aware** transformation, `?x rdf:type <Class>` patterns
//! are folded into the label set of `?x`'s query vertex and produce no edge
//! (Figure 8) — the reduction that makes candidate regions smaller.
//!
//! OPTIONAL clauses are part of the same query graph: their vertices and
//! edges are annotated with a *clause id* so the matcher can apply the
//! nullify-and-keep-searching strategy of Section 5.1. FILTER expressions
//! are collected and handed to the engine, which applies cheap ones during
//! matching and expensive ones afterwards.
//!
//! UNION constructs must be expanded (via
//! [`GroupPattern::expand_unions`](turbohom_sparql::GroupPattern::expand_unions))
//! before calling [`transform_query`]; passing a group that still contains
//! unions is an error.

use crate::common::{TransformError, TransformKind, TransformedGraph};
use std::collections::HashMap;
use turbohom_graph::{ELabel, QueryEdge, QueryGraph, QueryVertex, VLabel, VertexId};
use turbohom_rdf::{vocab, Dictionary, Term};
use turbohom_sparql::{Expression, GroupPattern, SparqlTerm};

/// A query graph plus the clause/filter metadata the engine needs.
#[derive(Debug, Clone)]
pub struct TransformedQuery {
    /// The query graph (two-attribute vertices).
    pub graph: QueryGraph,
    /// `true` if some constant in the query does not occur in the data at
    /// all — the result set is empty and the engine can return immediately.
    pub unsatisfiable: bool,
    /// For every query vertex: the OPTIONAL clause it belongs to, or `None`
    /// for the required part. A vertex shared between the required part and
    /// an OPTIONAL clause is required.
    pub vertex_clause: Vec<Option<usize>>,
    /// For every query edge: the OPTIONAL clause it belongs to.
    pub edge_clause: Vec<Option<usize>>,
    /// For every OPTIONAL clause: its parent clause (`None` = attached to the
    /// required part). Nested OPTIONALs form a forest.
    pub clause_parents: Vec<Option<usize>>,
    /// All FILTER expressions of the query (required part and OPTIONALs).
    pub filters: Vec<Expression>,
}

impl TransformedQuery {
    /// Number of OPTIONAL clauses.
    pub fn clause_count(&self) -> usize {
        self.clause_parents.len()
    }

    /// Returns `true` if the query has any OPTIONAL clause.
    pub fn has_optionals(&self) -> bool {
        !self.clause_parents.is_empty()
    }
}

/// Internal mutable draft of a query vertex.
#[derive(Debug, Clone, Default)]
struct VertexDraft {
    labels: Vec<VLabel>,
    bound: Option<VertexId>,
    variable: Option<String>,
    clause: Option<usize>,
    clause_set: bool,
}

/// Internal mutable draft of a query edge.
#[derive(Debug, Clone)]
struct EdgeDraft {
    from: usize,
    to: usize,
    label: Option<ELabel>,
    variable: Option<String>,
    clause: Option<usize>,
}

struct QueryBuilder<'a> {
    data: &'a TransformedGraph,
    dictionary: &'a Dictionary,
    vertices: Vec<VertexDraft>,
    edges: Vec<EdgeDraft>,
    var_map: HashMap<String, usize>,
    const_map: HashMap<Term, usize>,
    clause_parents: Vec<Option<usize>>,
    filters: Vec<Expression>,
    unsatisfiable: bool,
}

impl<'a> QueryBuilder<'a> {
    fn new(data: &'a TransformedGraph, dictionary: &'a Dictionary) -> Self {
        QueryBuilder {
            data,
            dictionary,
            vertices: Vec::new(),
            edges: Vec::new(),
            var_map: HashMap::new(),
            const_map: HashMap::new(),
            clause_parents: Vec::new(),
            filters: Vec::new(),
            unsatisfiable: false,
        }
    }

    /// Returns (creating if necessary) the vertex index for a subject/object
    /// position, and records the clause in which it first appeared.
    fn vertex_for(&mut self, term: &SparqlTerm, clause: Option<usize>) -> usize {
        let idx = match term {
            SparqlTerm::Variable(name) => {
                if let Some(&i) = self.var_map.get(name) {
                    i
                } else {
                    let i = self.vertices.len();
                    self.vertices.push(VertexDraft {
                        variable: Some(name.clone()),
                        ..VertexDraft::default()
                    });
                    self.var_map.insert(name.clone(), i);
                    i
                }
            }
            SparqlTerm::Constant(t) => {
                if let Some(&i) = self.const_map.get(t) {
                    i
                } else {
                    let i = self.vertices.len();
                    let bound = self
                        .dictionary
                        .id_of(t)
                        .and_then(|id| self.data.mappings.vertex_of(id));
                    let bound = match bound {
                        Some(b) => Some(b),
                        None => {
                            // The constant does not exist as a data vertex.
                            // In the required part this makes the whole query
                            // unsatisfiable; inside an OPTIONAL clause it only
                            // means that clause can never match. Either way
                            // the vertex is pinned to a sentinel id no data
                            // vertex can equal, so it never matches anything.
                            if clause.is_none() {
                                self.unsatisfiable = true;
                            }
                            Some(VertexId(u32::MAX))
                        }
                    };
                    self.vertices.push(VertexDraft {
                        bound,
                        ..VertexDraft::default()
                    });
                    self.const_map.insert(t.clone(), i);
                    i
                }
            }
        };
        // Required part wins over optional clauses; the first clause wins
        // among optionals.
        if !self.vertices[idx].clause_set {
            self.vertices[idx].clause = clause;
            self.vertices[idx].clause_set = true;
        } else if clause.is_none() {
            self.vertices[idx].clause = None;
        }
        idx
    }

    fn add_group(
        &mut self,
        group: &GroupPattern,
        clause: Option<usize>,
    ) -> Result<(), TransformError> {
        if !group.unions.is_empty() {
            return Err(TransformError::UnsupportedTerm(
                "UNION must be expanded before query transformation".into(),
            ));
        }
        for pattern in &group.triples {
            self.add_triple(pattern, clause)?;
        }
        self.filters.extend(group.filters.iter().cloned());
        for optional in &group.optionals {
            let id = self.clause_parents.len();
            self.clause_parents.push(clause);
            self.add_group(optional, Some(id))?;
        }
        Ok(())
    }

    fn add_triple(
        &mut self,
        pattern: &turbohom_sparql::TriplePattern,
        clause: Option<usize>,
    ) -> Result<(), TransformError> {
        let type_aware = self.data.kind == TransformKind::TypeAware;
        if type_aware {
            if let Some(pred) = pattern.predicate.as_constant().and_then(Term::as_iri) {
                if pred == vocab::RDF_TYPE {
                    return self.fold_type_pattern(pattern, clause);
                }
                if pred == vocab::RDFS_SUBCLASSOF {
                    // Schema triples are not represented in the type-aware
                    // graph at all; the engine falls back to the direct graph.
                    return Err(TransformError::VariableSubclassUnsupported);
                }
            }
        }
        // Ordinary pattern: subject --predicate--> object.
        let s = self.vertex_for(&pattern.subject, clause);
        let o = self.vertex_for(&pattern.object, clause);
        let (label, variable) = match &pattern.predicate {
            SparqlTerm::Variable(name) => (None, Some(name.clone())),
            SparqlTerm::Constant(t) => {
                let el = self
                    .dictionary
                    .id_of(t)
                    .and_then(|id| self.data.mappings.elabel_of(id));
                let el = match el {
                    Some(el) => el,
                    None => {
                        // The predicate never occurs in the data. Required
                        // part: the query is unsatisfiable. OPTIONAL clause:
                        // only that clause can never match. The sentinel edge
                        // label matches no data edge, which gives both cases
                        // the right behaviour during the search.
                        if clause.is_none() {
                            self.unsatisfiable = true;
                        }
                        ELabel(u32::MAX)
                    }
                };
                (Some(el), None)
            }
        };
        self.edges.push(EdgeDraft {
            from: s,
            to: o,
            label,
            variable,
            clause,
        });
        Ok(())
    }

    /// Folds `?x rdf:type <Class>` into the label set of `?x` (type-aware
    /// transformation only).
    fn fold_type_pattern(
        &mut self,
        pattern: &turbohom_sparql::TriplePattern,
        clause: Option<usize>,
    ) -> Result<(), TransformError> {
        let class = match &pattern.object {
            SparqlTerm::Constant(t) => t,
            SparqlTerm::Variable(_) => return Err(TransformError::VariableTypeUnsupported),
        };
        if clause.is_some() {
            // Folding a label would silently turn an optional constraint into
            // a required one; let the engine fall back to the direct graph.
            return Err(TransformError::VariableTypeUnsupported);
        }
        let s = self.vertex_for(&pattern.subject, clause);
        let vlabel = self
            .dictionary
            .id_of(class)
            .and_then(|id| self.data.mappings.vlabel_of(id));
        match vlabel {
            Some(l) => {
                if !self.vertices[s].labels.contains(&l) {
                    self.vertices[s].labels.push(l);
                }
            }
            None => {
                // The class is never used in the data: nothing can have it.
                self.unsatisfiable = true;
            }
        }
        Ok(())
    }

    fn finish(self) -> TransformedQuery {
        let mut graph = QueryGraph::new();
        let mut vertex_clause = Vec::with_capacity(self.vertices.len());
        for draft in &self.vertices {
            let mut labels = draft.labels.clone();
            labels.sort_unstable();
            labels.dedup();
            graph.add_vertex(QueryVertex {
                labels,
                bound: draft.bound,
                variable: draft.variable.clone(),
            });
            vertex_clause.push(draft.clause);
        }
        let mut edge_clause = Vec::with_capacity(self.edges.len());
        for edge in &self.edges {
            graph.add_edge(QueryEdge {
                from: edge.from,
                to: edge.to,
                label: edge.label,
                variable: edge.variable.clone(),
            });
            edge_clause.push(edge.clause);
        }
        TransformedQuery {
            graph,
            unsatisfiable: self.unsatisfiable,
            vertex_clause,
            edge_clause,
            clause_parents: self.clause_parents,
            filters: self.filters,
        }
    }
}

/// Transforms a (union-free) SPARQL group pattern into a query graph against
/// `data`, under `data`'s transformation kind.
pub fn transform_query(
    pattern: &GroupPattern,
    data: &TransformedGraph,
    dictionary: &Dictionary,
) -> Result<TransformedQuery, TransformError> {
    let mut builder = QueryBuilder::new(data, dictionary);
    builder.add_group(pattern, None)?;
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::direct_transform;
    use crate::type_aware::type_aware_transform;
    use turbohom_rdf::Dataset;
    use turbohom_sparql::parse_query;

    fn ub(l: &str) -> String {
        format!("http://ub.org/{l}")
    }

    /// The running example dataset (paper Figure 3) plus one more student so
    /// multi-solution behaviour is visible downstream.
    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        ds.insert_iris(&ub("student1"), vocab::RDF_TYPE, &ub("GraduateStudent"));
        ds.insert_iris(&ub("student1"), vocab::RDF_TYPE, &ub("Student"));
        ds.insert_iris(
            &ub("GraduateStudent"),
            vocab::RDFS_SUBCLASSOF,
            &ub("Student"),
        );
        ds.insert_iris(&ub("univ1"), vocab::RDF_TYPE, &ub("University"));
        ds.insert_iris(&ub("dept1"), vocab::RDF_TYPE, &ub("Department"));
        ds.insert_iris(
            &ub("student1"),
            &ub("undergraduateDegreeFrom"),
            &ub("univ1"),
        );
        ds.insert_iris(&ub("student1"), &ub("memberOf"), &ub("dept1"));
        ds.insert_iris(&ub("dept1"), &ub("subOrganizationOf"), &ub("univ1"));
        ds
    }

    const TRIANGLE_QUERY: &str = r#"
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        PREFIX ub: <http://ub.org/>
        SELECT ?X ?Y ?Z WHERE {
            ?X rdf:type ub:Student .
            ?Y rdf:type ub:University .
            ?Z rdf:type ub:Department .
            ?X ub:undergraduateDegreeFrom ?Y .
            ?X ub:memberOf ?Z .
            ?Z ub:subOrganizationOf ?Y .
        }"#;

    #[test]
    fn type_aware_query_matches_figure8_shape() {
        // Figure 5b (direct): 6 vertices / 6 edges. Figure 8 (type-aware):
        // 3 vertices / 3 edges, one label per vertex.
        let ds = dataset();
        let q = parse_query(TRIANGLE_QUERY).unwrap();
        let data = type_aware_transform(&ds);
        let tq = transform_query(&q.pattern, &data, &ds.dictionary).unwrap();
        assert!(!tq.unsatisfiable);
        assert_eq!(tq.graph.vertex_count(), 3);
        assert_eq!(tq.graph.edge_count(), 3);
        for v in tq.graph.vertices() {
            assert_eq!(v.labels.len(), 1);
            assert!(v.bound.is_none());
        }
        assert!(tq.graph.is_connected());
        assert!(!tq.has_optionals());
    }

    #[test]
    fn direct_query_matches_figure5_shape() {
        let ds = dataset();
        let q = parse_query(TRIANGLE_QUERY).unwrap();
        let data = direct_transform(&ds);
        let tq = transform_query(&q.pattern, &data, &ds.dictionary).unwrap();
        assert!(!tq.unsatisfiable);
        assert_eq!(tq.graph.vertex_count(), 6);
        assert_eq!(tq.graph.edge_count(), 6);
        // The three class vertices are bound constants.
        let bound_count = tq
            .graph
            .vertices()
            .iter()
            .filter(|v| v.bound.is_some())
            .count();
        assert_eq!(bound_count, 3);
    }

    #[test]
    fn constant_subject_becomes_bound_vertex() {
        let ds = dataset();
        let query = parse_query(
            r#"PREFIX ub: <http://ub.org/>
               SELECT ?d WHERE { <http://ub.org/student1> ub:memberOf ?d . }"#,
        )
        .unwrap();
        let data = type_aware_transform(&ds);
        let tq = transform_query(&query.pattern, &data, &ds.dictionary).unwrap();
        assert_eq!(tq.graph.vertex_count(), 2);
        let student_vertex = tq
            .graph
            .vertices()
            .iter()
            .find(|v| v.bound.is_some())
            .unwrap();
        let expected = data
            .mappings
            .vertex_of(ds.dictionary.id_of_iri(&ub("student1")).unwrap())
            .unwrap();
        assert_eq!(student_vertex.bound, Some(expected));
    }

    #[test]
    fn unknown_constant_or_class_or_predicate_is_unsatisfiable() {
        let ds = dataset();
        let data = type_aware_transform(&ds);
        for q in [
            // unknown entity
            r#"PREFIX ub: <http://ub.org/> SELECT ?d WHERE { <http://ub.org/ghost> ub:memberOf ?d . }"#,
            // unknown class
            r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> PREFIX ub: <http://ub.org/>
               SELECT ?x WHERE { ?x rdf:type ub:Alien . }"#,
            // unknown predicate
            r#"PREFIX ub: <http://ub.org/> SELECT ?x WHERE { ?x ub:eats ?y . }"#,
        ] {
            let parsed = parse_query(q).unwrap();
            let tq = transform_query(&parsed.pattern, &data, &ds.dictionary).unwrap();
            assert!(tq.unsatisfiable, "query should be unsatisfiable: {q}");
        }
    }

    #[test]
    fn variable_class_is_rejected_under_type_aware() {
        let ds = dataset();
        let data = type_aware_transform(&ds);
        let q = parse_query(
            r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
               SELECT ?x ?t WHERE { ?x rdf:type ?t . }"#,
        )
        .unwrap();
        assert!(matches!(
            transform_query(&q.pattern, &data, &ds.dictionary),
            Err(TransformError::VariableTypeUnsupported)
        ));
        // ... but accepted under the direct transformation.
        let direct = direct_transform(&ds);
        let tq = transform_query(&q.pattern, &direct, &ds.dictionary).unwrap();
        assert!(!tq.unsatisfiable);
        assert_eq!(tq.graph.edge_count(), 1);
    }

    #[test]
    fn variable_predicate_produces_unlabeled_edge() {
        let ds = dataset();
        let data = type_aware_transform(&ds);
        let q = parse_query(
            r#"SELECT ?p WHERE { <http://ub.org/student1> ?p <http://ub.org/univ1> . }"#,
        )
        .unwrap();
        let tq = transform_query(&q.pattern, &data, &ds.dictionary).unwrap();
        assert_eq!(tq.graph.edge_count(), 1);
        let edge = tq.graph.edge(0);
        assert!(edge.label.is_none());
        assert_eq!(edge.variable.as_deref(), Some("p"));
    }

    #[test]
    fn optional_clauses_are_annotated() {
        let ds = {
            let mut ds = dataset();
            ds.insert_iris(&ub("student1"), &ub("email"), &ub("mail1"));
            ds
        };
        let data = type_aware_transform(&ds);
        let q = parse_query(
            r#"PREFIX ub: <http://ub.org/>
               SELECT ?d ?e ?ph WHERE {
                 <http://ub.org/student1> ub:memberOf ?d .
                 OPTIONAL { <http://ub.org/student1> ub:email ?e .
                            OPTIONAL { <http://ub.org/student1> ub:phone ?ph . } }
               }"#,
        )
        .unwrap();
        let tq = transform_query(&q.pattern, &data, &ds.dictionary).unwrap();
        assert_eq!(tq.clause_count(), 2);
        assert_eq!(tq.clause_parents[0], None);
        assert_eq!(tq.clause_parents[1], Some(0));
        // The required edge has no clause; the optional edges carry theirs.
        assert_eq!(tq.edge_clause[0], None);
        assert_eq!(tq.edge_clause[1], Some(0));
        assert_eq!(tq.edge_clause[2], Some(1));
        // ?e belongs to clause 0, ?ph to clause 1, ?d to the required part.
        let idx_of = |name: &str| tq.graph.vertex_of_variable(name).unwrap();
        assert_eq!(tq.vertex_clause[idx_of("d")], None);
        assert_eq!(tq.vertex_clause[idx_of("e")], Some(0));
        assert_eq!(tq.vertex_clause[idx_of("ph")], Some(1));
        // The constant subject appears first in the required part.
        let student_idx = tq
            .graph
            .vertices()
            .iter()
            .position(|v| v.bound.is_some())
            .unwrap();
        assert_eq!(tq.vertex_clause[student_idx], None);
        // Unknown predicate `phone` only occurs inside an OPTIONAL: the
        // overall query is still answerable (the inner clause just never
        // matches), so the pattern must NOT be flagged unsatisfiable.
        assert!(!tq.unsatisfiable);
        // The unknown predicate is represented by a sentinel edge label that
        // matches no data edge.
        assert_eq!(
            tq.graph.edge(2).label,
            Some(turbohom_graph::ELabel(u32::MAX))
        );
    }

    #[test]
    fn filters_are_collected_from_all_clauses() {
        let ds = dataset();
        let data = type_aware_transform(&ds);
        let q = parse_query(
            r#"PREFIX ub: <http://ub.org/>
               SELECT ?x WHERE {
                 ?x ub:memberOf ?d . FILTER (?x != ?d)
                 OPTIONAL { ?x ub:undergraduateDegreeFrom ?u . FILTER BOUND(?u) }
               }"#,
        )
        .unwrap();
        let tq = transform_query(&q.pattern, &data, &ds.dictionary).unwrap();
        assert_eq!(tq.filters.len(), 2);
    }

    #[test]
    fn shared_constant_is_one_query_vertex() {
        let ds = dataset();
        let data = type_aware_transform(&ds);
        let q = parse_query(
            r#"PREFIX ub: <http://ub.org/>
               SELECT ?a ?b WHERE {
                 ?a ub:memberOf <http://ub.org/dept1> .
                 ?b ub:subOrganizationOf <http://ub.org/univ1> .
                 <http://ub.org/dept1> ub:subOrganizationOf ?c .
               }"#,
        )
        .unwrap();
        let tq = transform_query(&q.pattern, &data, &ds.dictionary).unwrap();
        // Vertices: ?a, ?b, ?c, dept1 (shared by patterns 1 and 3), univ1.
        assert_eq!(tq.graph.vertex_count(), 5);
    }

    #[test]
    fn unexpanded_union_is_an_error() {
        let ds = dataset();
        let data = type_aware_transform(&ds);
        let q = parse_query(
            r#"PREFIX ub: <http://ub.org/>
               SELECT ?x WHERE { { ?x ub:memberOf ?d . } UNION { ?x ub:subOrganizationOf ?d . } }"#,
        )
        .unwrap();
        assert!(transform_query(&q.pattern, &data, &ds.dictionary).is_err());
        // After expansion each branch transforms fine.
        for branch in q.pattern.expand_unions() {
            assert!(transform_query(&branch, &data, &ds.dictionary).is_ok());
        }
    }

    #[test]
    fn subclassof_query_falls_back() {
        let ds = dataset();
        let data = type_aware_transform(&ds);
        let q = parse_query(
            r#"PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
               SELECT ?c WHERE { ?c rdfs:subClassOf <http://ub.org/Student> . }"#,
        )
        .unwrap();
        assert!(matches!(
            transform_query(&q.pattern, &data, &ds.dictionary),
            Err(TransformError::VariableSubclassUnsupported)
        ));
    }
}
