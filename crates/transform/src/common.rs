//! Shared types of the data-graph transformations.

use std::fmt;
use turbohom_graph::{ELabel, InverseLabelIndex, LabeledGraph, PredicateIndex, VLabel, VertexId};
use turbohom_rdf::TermId;
use turbohom_storage::{FlatCsr, FlatVec, SectionCursor, SnapshotError, SnapshotWriter};

/// Snapshot section tags (components 0x06 mappings, 0x07 transformed graph).
const TAG_MAP_TERM_TO_VERTEX: u64 = 0x0601;
const TAG_MAP_VERTEX_TO_TERM: u64 = 0x0602;
const TAG_MAP_TERM_TO_VLABEL: u64 = 0x0603;
const TAG_MAP_VLABEL_TO_TERM: u64 = 0x0604;
const TAG_MAP_TERM_TO_ELABEL: u64 = 0x0605;
const TAG_MAP_ELABEL_TO_TERM: u64 = 0x0606;
const TAG_TRANSFORM_META: u64 = 0x0701;
const TAG_SIMPLE_LABEL_OFFSETS: u64 = 0x0702;
const TAG_SIMPLE_LABELS: u64 = 0x0703;

/// Sentinel in the dense term→graph-id arrays for "not mapped".
const UNMAPPED: u32 = u32::MAX;

/// Which transformation produced a [`TransformedGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransformKind {
    /// The direct transformation of Section 3.2.
    Direct,
    /// The type-aware transformation of Section 4.1.
    TypeAware,
}

/// Bidirectional mappings between RDF term ids and graph-level ids.
///
/// These are the `FV`, `FVL`, `FEL` functions of Definition 3 (and their
/// inverses). All six directions are dense flat arrays (the forward ones
/// indexed by term id with a sentinel for unmapped terms), so the whole
/// structure serializes into a snapshot and reads back in place.
#[derive(Debug, Clone, Default)]
pub struct GraphMappings {
    /// RDF term → data vertex (`UNMAPPED` sentinel when absent).
    term_to_vertex: FlatVec<u32>,
    /// Data vertex → RDF term (dense).
    pub vertex_to_term: FlatVec<TermId>,
    /// RDF class term → vertex label (empty for the direct transformation).
    term_to_vlabel: FlatVec<u32>,
    /// Vertex label → RDF class term (dense).
    pub vlabel_to_term: FlatVec<TermId>,
    /// RDF predicate term → edge label.
    term_to_elabel: FlatVec<u32>,
    /// Edge label → RDF predicate term (dense).
    pub elabel_to_term: FlatVec<TermId>,
}

fn forward_get(arr: &FlatVec<u32>, term: TermId) -> Option<u32> {
    arr.get(term.index()).copied().filter(|&v| v != UNMAPPED)
}

fn forward_set(arr: &mut FlatVec<u32>, term: TermId, value: u32) {
    let arr = arr.to_mut();
    if arr.len() <= term.index() {
        arr.resize(term.index() + 1, UNMAPPED);
    }
    arr[term.index()] = value;
}

impl GraphMappings {
    /// Looks up the data vertex of an RDF term.
    pub fn vertex_of(&self, term: TermId) -> Option<VertexId> {
        forward_get(&self.term_to_vertex, term).map(VertexId)
    }

    /// Looks up the RDF term of a data vertex.
    pub fn term_of_vertex(&self, v: VertexId) -> Option<TermId> {
        self.vertex_to_term.get(v.index()).copied()
    }

    /// Looks up the vertex label of an RDF class term.
    pub fn vlabel_of(&self, term: TermId) -> Option<VLabel> {
        forward_get(&self.term_to_vlabel, term).map(VLabel)
    }

    /// Looks up the RDF class term of a vertex label.
    pub fn term_of_vlabel(&self, l: VLabel) -> Option<TermId> {
        self.vlabel_to_term.get(l.index()).copied()
    }

    /// Looks up the edge label of an RDF predicate term.
    pub fn elabel_of(&self, term: TermId) -> Option<ELabel> {
        forward_get(&self.term_to_elabel, term).map(ELabel)
    }

    /// Looks up the RDF predicate term of an edge label.
    pub fn term_of_elabel(&self, l: ELabel) -> Option<TermId> {
        self.elabel_to_term.get(l.index()).copied()
    }

    /// Interns a term as a data vertex, returning the existing id if present.
    pub(crate) fn intern_vertex(&mut self, term: TermId) -> VertexId {
        if let Some(v) = self.vertex_of(term) {
            return v;
        }
        let v = VertexId(self.vertex_to_term.len() as u32);
        forward_set(&mut self.term_to_vertex, term, v.0);
        self.vertex_to_term.to_mut().push(term);
        v
    }

    /// Interns a class term as a vertex label.
    pub(crate) fn intern_vlabel(&mut self, term: TermId) -> VLabel {
        if let Some(l) = self.vlabel_of(term) {
            return l;
        }
        let l = VLabel(self.vlabel_to_term.len() as u32);
        forward_set(&mut self.term_to_vlabel, term, l.0);
        self.vlabel_to_term.to_mut().push(term);
        l
    }

    /// Interns a predicate term as an edge label.
    pub(crate) fn intern_elabel(&mut self, term: TermId) -> ELabel {
        if let Some(l) = self.elabel_of(term) {
            return l;
        }
        let l = ELabel(self.elabel_to_term.len() as u32);
        forward_set(&mut self.term_to_elabel, term, l.0);
        self.elabel_to_term.to_mut().push(term);
        l
    }

    /// Serializes all six mapping arrays as snapshot sections.
    pub fn write_sections(&self, w: &mut SnapshotWriter) {
        w.section(TAG_MAP_TERM_TO_VERTEX, &self.term_to_vertex);
        w.section(TAG_MAP_VERTEX_TO_TERM, &self.vertex_to_term);
        w.section(TAG_MAP_TERM_TO_VLABEL, &self.term_to_vlabel);
        w.section(TAG_MAP_VLABEL_TO_TERM, &self.vlabel_to_term);
        w.section(TAG_MAP_TERM_TO_ELABEL, &self.term_to_elabel);
        w.section(TAG_MAP_ELABEL_TO_TERM, &self.elabel_to_term);
    }

    /// Reconstructs the mappings from a snapshot, validating that forward
    /// and reverse arrays agree so lookups stay total.
    pub fn read_sections(cur: &mut SectionCursor<'_>) -> Result<Self, SnapshotError> {
        let m = GraphMappings {
            term_to_vertex: cur.next_section(TAG_MAP_TERM_TO_VERTEX)?,
            vertex_to_term: cur.next_section(TAG_MAP_VERTEX_TO_TERM)?,
            term_to_vlabel: cur.next_section(TAG_MAP_TERM_TO_VLABEL)?,
            vlabel_to_term: cur.next_section(TAG_MAP_VLABEL_TO_TERM)?,
            term_to_elabel: cur.next_section(TAG_MAP_TERM_TO_ELABEL)?,
            elabel_to_term: cur.next_section(TAG_MAP_ELABEL_TO_TERM)?,
        };
        for (fwd, rev, what) in [
            (&m.term_to_vertex, &m.vertex_to_term, "vertex"),
            (&m.term_to_vlabel, &m.vlabel_to_term, "vertex label"),
            (&m.term_to_elabel, &m.elabel_to_term, "edge label"),
        ] {
            let n = rev.len() as u32;
            if fwd.iter().any(|&g| g != UNMAPPED && g >= n) {
                return Err(SnapshotError::Malformed(format!(
                    "term-to-{what} mapping points outside the reverse array"
                )));
            }
            for (i, t) in rev.iter().enumerate() {
                if fwd.get(t.index()).copied() != Some(i as u32) {
                    return Err(SnapshotError::Malformed(format!(
                        "{what} mapping arrays disagree at graph id {i}"
                    )));
                }
            }
        }
        Ok(m)
    }
}

/// A labeled graph together with its indexes and its mappings back to RDF
/// terms. This is what the matching engine executes against.
#[derive(Debug, Clone)]
pub struct TransformedGraph {
    /// Which transformation built this graph.
    pub kind: TransformKind,
    /// The CSR labeled graph.
    pub graph: LabeledGraph,
    /// The inverse vertex label list (Figure 9a).
    pub inverse_labels: InverseLabelIndex,
    /// The predicate index (Section 4.2).
    pub predicates: PredicateIndex,
    /// Term ↔ graph id mappings.
    pub mappings: GraphMappings,
    /// For the type-aware transformation: the *directly asserted* label set
    /// of every vertex (`Lsimple`, Section 4.2) as a CSR, used under the
    /// simple entailment regime. `None` for the direct transformation.
    pub simple_labels: Option<FlatCsr<VLabel>>,
}

impl TransformedGraph {
    /// Builds the derived indexes for `graph` and assembles the bundle.
    pub fn assemble(
        kind: TransformKind,
        graph: LabeledGraph,
        mappings: GraphMappings,
        simple_labels: Option<Vec<Vec<VLabel>>>,
    ) -> Self {
        let inverse_labels = InverseLabelIndex::build(&graph);
        let predicates = PredicateIndex::build(&graph);
        TransformedGraph {
            kind,
            graph,
            inverse_labels,
            predicates,
            mappings,
            simple_labels: simple_labels.map(|rows| FlatCsr::from_rows(&rows)),
        }
    }

    /// The simple-entailment label set of `v`: the directly asserted types
    /// when available, the full label set otherwise.
    pub fn simple_labels_of(&self, v: VertexId) -> &[VLabel] {
        match &self.simple_labels {
            Some(per_vertex) => per_vertex.row(v.index()),
            None => self.graph.labels(v),
        }
    }

    /// Serializes the whole bundle (meta, graph, indexes, mappings, simple
    /// labels) as snapshot sections.
    pub fn write_sections(&self, w: &mut SnapshotWriter) {
        let meta: [u64; 2] = [
            match self.kind {
                TransformKind::Direct => 0,
                TransformKind::TypeAware => 1,
            },
            self.simple_labels.is_some() as u64,
        ];
        w.section(TAG_TRANSFORM_META, &meta);
        self.graph.write_sections(w);
        self.inverse_labels.write_sections(w);
        self.predicates.write_sections(w);
        self.mappings.write_sections(w);
        let empty = FlatCsr::default();
        let sl = self.simple_labels.as_ref().unwrap_or(&empty);
        w.section(TAG_SIMPLE_LABEL_OFFSETS, sl.offsets());
        w.section(TAG_SIMPLE_LABELS, sl.data());
    }

    /// Reconstructs the bundle reading everything in place from a snapshot.
    pub fn read_sections(cur: &mut SectionCursor<'_>) -> Result<Self, SnapshotError> {
        let meta: FlatVec<u64> = cur.next_section(TAG_TRANSFORM_META)?;
        if meta.len() != 2 {
            return Err(SnapshotError::Malformed(
                "transformed graph meta section length".into(),
            ));
        }
        let kind = match meta[0] {
            0 => TransformKind::Direct,
            1 => TransformKind::TypeAware,
            k => {
                return Err(SnapshotError::Malformed(format!(
                    "unknown transform kind {k}"
                )))
            }
        };
        let graph = LabeledGraph::read_sections(cur)?;
        let inverse_labels = InverseLabelIndex::read_sections(cur)?;
        let predicates = PredicateIndex::read_sections(cur)?;
        let mappings = GraphMappings::read_sections(cur)?;
        let sl = FlatCsr::from_parts(
            cur.next_section(TAG_SIMPLE_LABEL_OFFSETS)?,
            cur.next_section(TAG_SIMPLE_LABELS)?,
        )?;
        let simple_labels = if meta[1] != 0 {
            if sl.num_rows() != graph.vertex_count() {
                return Err(SnapshotError::Malformed(
                    "simple label CSR does not cover every vertex".into(),
                ));
            }
            Some(sl)
        } else {
            None
        };
        if mappings.vertex_to_term.len() != graph.vertex_count() {
            return Err(SnapshotError::Malformed(
                "mappings do not cover every vertex".into(),
            ));
        }
        Ok(TransformedGraph {
            kind,
            graph,
            inverse_labels,
            predicates,
            mappings,
            simple_labels,
        })
    }
}

/// Errors the transformations can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// The query contains `?x rdf:type ?class` with a variable class, which
    /// the type-aware transformation cannot fold (the engine falls back to
    /// the direct transformation for such queries).
    VariableTypeUnsupported,
    /// The query contains a triple whose predicate is `rdfs:subClassOf` with
    /// a variable; same fallback applies.
    VariableSubclassUnsupported,
    /// A blank node appeared where the transformation cannot handle it.
    UnsupportedTerm(String),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::VariableTypeUnsupported => write!(
                f,
                "type-aware transformation cannot fold `rdf:type` with a variable class"
            ),
            TransformError::VariableSubclassUnsupported => write!(
                f,
                "type-aware transformation cannot fold `rdfs:subClassOf` with a variable"
            ),
            TransformError::UnsupportedTerm(t) => write!(f, "unsupported term in query: {t}"),
        }
    }
}

impl std::error::Error for TransformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut m = GraphMappings::default();
        let v0 = m.intern_vertex(TermId(10));
        let v1 = m.intern_vertex(TermId(20));
        let v0b = m.intern_vertex(TermId(10));
        assert_eq!(v0, v0b);
        assert_eq!(v0, VertexId(0));
        assert_eq!(v1, VertexId(1));
        assert_eq!(m.term_of_vertex(v1), Some(TermId(20)));
        assert_eq!(m.vertex_of(TermId(20)), Some(v1));
        assert_eq!(m.vertex_of(TermId(99)), None);

        let l0 = m.intern_vlabel(TermId(5));
        assert_eq!(l0, VLabel(0));
        assert_eq!(m.term_of_vlabel(l0), Some(TermId(5)));
        assert_eq!(m.vlabel_of(TermId(6)), None);

        let e0 = m.intern_elabel(TermId(7));
        let e1 = m.intern_elabel(TermId(8));
        assert_eq!(m.term_of_elabel(e1), Some(TermId(8)));
        assert_eq!(m.elabel_of(TermId(7)), Some(e0));
    }

    #[test]
    fn transformed_graph_snapshot_round_trip() {
        use turbohom_graph::LabeledGraphBuilder;
        use turbohom_storage::{Snapshot, SnapshotWriter};

        let mut mappings = GraphMappings::default();
        let v0 = mappings.intern_vertex(TermId(10));
        let v1 = mappings.intern_vertex(TermId(11));
        let v2 = mappings.intern_vertex(TermId(12));
        let el = mappings.intern_elabel(TermId(20));
        mappings.intern_vlabel(TermId(30));
        mappings.intern_vlabel(TermId(31));

        let mut b = LabeledGraphBuilder::new();
        b.add_vertex(vec![VLabel(0)]);
        b.add_vertex(vec![VLabel(0), VLabel(1)]);
        b.add_vertex(vec![]);
        b.add_edge(v0, v1, el);
        b.add_edge(v1, v2, el);
        let graph = b.build();

        let simple = vec![vec![VLabel(0)], vec![VLabel(1)], vec![]];
        let original =
            TransformedGraph::assemble(TransformKind::TypeAware, graph, mappings, Some(simple));

        let mut w = SnapshotWriter::new();
        original.write_sections(&mut w);
        let dir = std::env::temp_dir().join("turbohom-transform-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("transformed.snap");
        w.write_to(&path).unwrap();

        let snap = Snapshot::open(&path).unwrap();
        let mut cur = snap.cursor();
        let loaded = TransformedGraph::read_sections(&mut cur).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.kind, TransformKind::TypeAware);
        assert_eq!(loaded.graph.vertex_count(), 3);
        assert_eq!(loaded.graph.edge_count(), 2);
        for v in loaded.graph.vertices() {
            assert_eq!(loaded.graph.labels(v), original.graph.labels(v));
            assert_eq!(loaded.simple_labels_of(v), original.simple_labels_of(v));
            assert_eq!(
                loaded.mappings.term_of_vertex(v),
                original.mappings.term_of_vertex(v)
            );
        }
        assert_eq!(loaded.mappings.vertex_of(TermId(11)), Some(v1));
        assert_eq!(loaded.mappings.elabel_of(TermId(20)), Some(el));
        assert_eq!(
            loaded.predicates.subjects(el),
            original.predicates.subjects(el)
        );
        assert_eq!(
            loaded.inverse_labels.vertices_with_label(VLabel(0)),
            original.inverse_labels.vertices_with_label(VLabel(0))
        );
    }

    #[test]
    fn transform_error_messages() {
        assert!(TransformError::VariableTypeUnsupported
            .to_string()
            .contains("rdf:type"));
        assert!(TransformError::UnsupportedTerm("x".into())
            .to_string()
            .contains('x'));
    }
}
