//! Shared types of the data-graph transformations.

use std::collections::HashMap;
use std::fmt;
use turbohom_graph::{ELabel, InverseLabelIndex, LabeledGraph, PredicateIndex, VLabel, VertexId};
use turbohom_rdf::TermId;

/// Which transformation produced a [`TransformedGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransformKind {
    /// The direct transformation of Section 3.2.
    Direct,
    /// The type-aware transformation of Section 4.1.
    TypeAware,
}

/// Bidirectional mappings between RDF term ids and graph-level ids.
///
/// These are the `FV`, `FVL`, `FEL` functions of Definition 3 (and their
/// inverses), materialized as hash maps / dense vectors.
#[derive(Debug, Clone, Default)]
pub struct GraphMappings {
    /// RDF term → data vertex.
    pub term_to_vertex: HashMap<TermId, VertexId>,
    /// Data vertex → RDF term (dense).
    pub vertex_to_term: Vec<TermId>,
    /// RDF class term → vertex label (empty for the direct transformation).
    pub term_to_vlabel: HashMap<TermId, VLabel>,
    /// Vertex label → RDF class term (dense).
    pub vlabel_to_term: Vec<TermId>,
    /// RDF predicate term → edge label.
    pub term_to_elabel: HashMap<TermId, ELabel>,
    /// Edge label → RDF predicate term (dense).
    pub elabel_to_term: Vec<TermId>,
}

impl GraphMappings {
    /// Looks up the data vertex of an RDF term.
    pub fn vertex_of(&self, term: TermId) -> Option<VertexId> {
        self.term_to_vertex.get(&term).copied()
    }

    /// Looks up the RDF term of a data vertex.
    pub fn term_of_vertex(&self, v: VertexId) -> Option<TermId> {
        self.vertex_to_term.get(v.index()).copied()
    }

    /// Looks up the vertex label of an RDF class term.
    pub fn vlabel_of(&self, term: TermId) -> Option<VLabel> {
        self.term_to_vlabel.get(&term).copied()
    }

    /// Looks up the RDF class term of a vertex label.
    pub fn term_of_vlabel(&self, l: VLabel) -> Option<TermId> {
        self.vlabel_to_term.get(l.index()).copied()
    }

    /// Looks up the edge label of an RDF predicate term.
    pub fn elabel_of(&self, term: TermId) -> Option<ELabel> {
        self.term_to_elabel.get(&term).copied()
    }

    /// Looks up the RDF predicate term of an edge label.
    pub fn term_of_elabel(&self, l: ELabel) -> Option<TermId> {
        self.elabel_to_term.get(l.index()).copied()
    }

    /// Interns a term as a data vertex, returning the existing id if present.
    pub(crate) fn intern_vertex(&mut self, term: TermId) -> VertexId {
        if let Some(&v) = self.term_to_vertex.get(&term) {
            return v;
        }
        let v = VertexId(self.vertex_to_term.len() as u32);
        self.vertex_to_term.push(term);
        self.term_to_vertex.insert(term, v);
        v
    }

    /// Interns a class term as a vertex label.
    pub(crate) fn intern_vlabel(&mut self, term: TermId) -> VLabel {
        if let Some(&l) = self.term_to_vlabel.get(&term) {
            return l;
        }
        let l = VLabel(self.vlabel_to_term.len() as u32);
        self.vlabel_to_term.push(term);
        self.term_to_vlabel.insert(term, l);
        l
    }

    /// Interns a predicate term as an edge label.
    pub(crate) fn intern_elabel(&mut self, term: TermId) -> ELabel {
        if let Some(&l) = self.term_to_elabel.get(&term) {
            return l;
        }
        let l = ELabel(self.elabel_to_term.len() as u32);
        self.elabel_to_term.push(term);
        self.term_to_elabel.insert(term, l);
        l
    }
}

/// A labeled graph together with its indexes and its mappings back to RDF
/// terms. This is what the matching engine executes against.
#[derive(Debug, Clone)]
pub struct TransformedGraph {
    /// Which transformation built this graph.
    pub kind: TransformKind,
    /// The CSR labeled graph.
    pub graph: LabeledGraph,
    /// The inverse vertex label list (Figure 9a).
    pub inverse_labels: InverseLabelIndex,
    /// The predicate index (Section 4.2).
    pub predicates: PredicateIndex,
    /// Term ↔ graph id mappings.
    pub mappings: GraphMappings,
    /// For the type-aware transformation: the *directly asserted* label set
    /// of every vertex (`Lsimple`, Section 4.2), used under the simple
    /// entailment regime. `None` for the direct transformation.
    pub simple_labels: Option<Vec<Vec<VLabel>>>,
}

impl TransformedGraph {
    /// Builds the derived indexes for `graph` and assembles the bundle.
    pub fn assemble(
        kind: TransformKind,
        graph: LabeledGraph,
        mappings: GraphMappings,
        simple_labels: Option<Vec<Vec<VLabel>>>,
    ) -> Self {
        let inverse_labels = InverseLabelIndex::build(&graph);
        let predicates = PredicateIndex::build(&graph);
        TransformedGraph {
            kind,
            graph,
            inverse_labels,
            predicates,
            mappings,
            simple_labels,
        }
    }

    /// The simple-entailment label set of `v`: the directly asserted types
    /// when available, the full label set otherwise.
    pub fn simple_labels_of(&self, v: VertexId) -> &[VLabel] {
        match &self.simple_labels {
            Some(per_vertex) => per_vertex
                .get(v.index())
                .map(|l| l.as_slice())
                .unwrap_or(&[]),
            None => self.graph.labels(v),
        }
    }
}

/// Errors the transformations can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// The query contains `?x rdf:type ?class` with a variable class, which
    /// the type-aware transformation cannot fold (the engine falls back to
    /// the direct transformation for such queries).
    VariableTypeUnsupported,
    /// The query contains a triple whose predicate is `rdfs:subClassOf` with
    /// a variable; same fallback applies.
    VariableSubclassUnsupported,
    /// A blank node appeared where the transformation cannot handle it.
    UnsupportedTerm(String),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::VariableTypeUnsupported => write!(
                f,
                "type-aware transformation cannot fold `rdf:type` with a variable class"
            ),
            TransformError::VariableSubclassUnsupported => write!(
                f,
                "type-aware transformation cannot fold `rdfs:subClassOf` with a variable"
            ),
            TransformError::UnsupportedTerm(t) => write!(f, "unsupported term in query: {t}"),
        }
    }
}

impl std::error::Error for TransformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut m = GraphMappings::default();
        let v0 = m.intern_vertex(TermId(10));
        let v1 = m.intern_vertex(TermId(20));
        let v0b = m.intern_vertex(TermId(10));
        assert_eq!(v0, v0b);
        assert_eq!(v0, VertexId(0));
        assert_eq!(v1, VertexId(1));
        assert_eq!(m.term_of_vertex(v1), Some(TermId(20)));
        assert_eq!(m.vertex_of(TermId(20)), Some(v1));
        assert_eq!(m.vertex_of(TermId(99)), None);

        let l0 = m.intern_vlabel(TermId(5));
        assert_eq!(l0, VLabel(0));
        assert_eq!(m.term_of_vlabel(l0), Some(TermId(5)));
        assert_eq!(m.vlabel_of(TermId(6)), None);

        let e0 = m.intern_elabel(TermId(7));
        let e1 = m.intern_elabel(TermId(8));
        assert_eq!(m.term_of_elabel(e1), Some(TermId(8)));
        assert_eq!(m.elabel_of(TermId(7)), Some(e0));
    }

    #[test]
    fn transform_error_messages() {
        assert!(TransformError::VariableTypeUnsupported
            .to_string()
            .contains("rdf:type"));
        assert!(TransformError::UnsupportedTerm("x".into())
            .to_string()
            .contains('x'));
    }
}
