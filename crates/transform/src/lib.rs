//! RDF → labeled-graph transformations (paper Sections 3.2 and 4.1).
//!
//! Two transformations take an encoded RDF [`Dataset`](turbohom_rdf::Dataset)
//! to a [`LabeledGraph`](turbohom_graph::LabeledGraph) the matching engine
//! can run on:
//!
//! * the **direct transformation** ([`direct_transform`]): every subject and
//!   object becomes a vertex, every predicate becomes an edge label, and the
//!   topology of the RDF graph is kept verbatim. Constants in queries become
//!   *bound* query vertices. This is what the paper's plain `TurboHOM` runs
//!   on (Figure 6 / Table 7 "direct transformation" rows).
//! * the **type-aware transformation** ([`type_aware_transform`]): triples
//!   with `rdf:type` / `rdfs:subClassOf` predicates are folded into vertex
//!   *label sets* (following the class hierarchy transitively), so the data
//!   and query graphs shrink and simplify — the paper's key idea
//!   (Definition 3). The simple-entailment label set `Lsimple` (directly
//!   asserted types only) is retained alongside.
//!
//! [`transform_query`] turns a parsed SPARQL [`GroupPattern`]
//! (including nested OPTIONAL clauses) into a [`QueryGraph`] under either
//! transformation, producing the two-attribute query vertices of
//! Section 4.1.

pub mod common;
pub mod direct;
pub mod query;
pub mod type_aware;

pub use common::{GraphMappings, TransformError, TransformKind, TransformedGraph};
pub use direct::direct_transform;
pub use query::{transform_query, TransformedQuery};
pub use type_aware::type_aware_transform;

// Re-exported so downstream crates don't need to depend on the algebra crate
// just to name the input type.
pub use turbohom_sparql::GroupPattern;
