//! The direct transformation (paper Section 3.2).
//!
//! Subjects and objects become vertices, predicates become edge labels, and
//! no vertex labels are assigned: the paper's "vertex label function is the
//! identity" is realised here through the *ID attribute* instead — a
//! constant in a query maps to a bound query vertex, which constrains the
//! match to exactly that data vertex, which is equivalent to carrying the
//! identity label and cheaper to index.

use crate::common::{GraphMappings, TransformKind, TransformedGraph};
use turbohom_graph::LabeledGraphBuilder;
use turbohom_rdf::Dataset;

/// Applies the direct transformation to `dataset`.
pub fn direct_transform(dataset: &Dataset) -> TransformedGraph {
    let mut mappings = GraphMappings::default();

    // First pass: intern every subject and object as a vertex, predicates as
    // edge labels (iteration order fixes the id assignment deterministically).
    for t in dataset.triples.iter() {
        mappings.intern_vertex(t.s);
        mappings.intern_vertex(t.o);
        mappings.intern_elabel(t.p);
    }

    let mut builder =
        LabeledGraphBuilder::with_capacity(mappings.vertex_to_term.len(), dataset.len());
    for _ in 0..mappings.vertex_to_term.len() {
        builder.add_vertex(Vec::new());
    }
    for t in dataset.triples.iter() {
        let s = mappings.vertex_of(t.s).expect("interned above");
        let o = mappings.vertex_of(t.o).expect("interned above");
        let p = mappings.elabel_of(t.p).expect("interned above");
        builder.add_edge(s, o, p);
    }

    TransformedGraph::assemble(TransformKind::Direct, builder.build(), mappings, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbohom_graph::Direction;
    use turbohom_rdf::vocab;

    /// The RDF graph of paper Figure 3.
    fn figure3_dataset() -> Dataset {
        let mut ds = Dataset::new();
        let ub = |l: &str| format!("http://ub.org/{l}");
        ds.insert_iris(&ub("student1"), vocab::RDF_TYPE, &ub("GraduateStudent"));
        ds.insert_iris(
            &ub("GraduateStudent"),
            vocab::RDFS_SUBCLASSOF,
            &ub("Student"),
        );
        ds.insert_iris(&ub("univ1"), vocab::RDF_TYPE, &ub("University"));
        ds.insert_iris(&ub("dept1.univ1"), vocab::RDF_TYPE, &ub("Department"));
        ds.insert_iris(
            &ub("student1"),
            &ub("undergraduateDegreeFrom"),
            &ub("univ1"),
        );
        ds.insert_iris(&ub("student1"), &ub("memberOf"), &ub("dept1.univ1"));
        ds.insert_iris(&ub("dept1.univ1"), &ub("subOrganizationOf"), &ub("univ1"));
        ds.insert(
            &turbohom_rdf::Term::iri(ub("student1")),
            &turbohom_rdf::Term::iri(ub("telephone")),
            &turbohom_rdf::Term::literal("012-345-6789"),
        );
        ds.insert(
            &turbohom_rdf::Term::iri(ub("student1")),
            &turbohom_rdf::Term::iri(ub("emailAddress")),
            &turbohom_rdf::Term::literal("john@dept1.univ1.edu"),
        );
        ds
    }

    #[test]
    fn figure4_vertex_and_edge_counts() {
        // Figure 4: 9 vertices (GraduateStudent, Student, University,
        // Department, student1, univ1, dept1.univ1, and the two literals) and
        // 9 edges, 7 distinct edge labels.
        let ds = figure3_dataset();
        let t = direct_transform(&ds);
        assert_eq!(t.kind, TransformKind::Direct);
        assert_eq!(t.graph.vertex_count(), 9);
        assert_eq!(t.graph.edge_count(), 9);
        assert_eq!(t.graph.edge_label_count(), 7);
        // No vertex labels under the direct transformation.
        assert_eq!(t.graph.vertex_label_count(), 0);
        for v in t.graph.vertices() {
            assert!(t.graph.labels(v).is_empty());
        }
    }

    #[test]
    fn topology_is_preserved() {
        let ds = figure3_dataset();
        let t = direct_transform(&ds);
        let dict = &ds.dictionary;
        let vertex = |iri: &str| {
            t.mappings
                .vertex_of(dict.id_of_iri(&format!("http://ub.org/{iri}")).unwrap())
                .unwrap()
        };
        let elabel = |iri: &str| {
            t.mappings
                .elabel_of(dict.id_of_iri(&format!("http://ub.org/{iri}")).unwrap())
                .unwrap()
        };
        let student1 = vertex("student1");
        let univ1 = vertex("univ1");
        let dept = vertex("dept1.univ1");
        assert!(t
            .graph
            .has_edge(student1, univ1, elabel("undergraduateDegreeFrom")));
        assert!(t.graph.has_edge(student1, dept, elabel("memberOf")));
        assert!(t.graph.has_edge(dept, univ1, elabel("subOrganizationOf")));
        // rdf:type edges are ordinary edges under the direct transformation.
        let rdf_type = t
            .mappings
            .elabel_of(dict.id_of_iri(vocab::RDF_TYPE).unwrap())
            .unwrap();
        let grad = vertex("GraduateStudent");
        assert!(t.graph.has_edge(student1, grad, rdf_type));
    }

    #[test]
    fn predicate_index_covers_all_predicates() {
        let ds = figure3_dataset();
        let t = direct_transform(&ds);
        let rdf_type = t
            .mappings
            .elabel_of(ds.dictionary.id_of_iri(vocab::RDF_TYPE).unwrap())
            .unwrap();
        assert_eq!(t.predicates.subjects(rdf_type).len(), 3);
        assert_eq!(t.predicates.edge_count(rdf_type), 3);
    }

    #[test]
    fn mapping_round_trips() {
        let ds = figure3_dataset();
        let t = direct_transform(&ds);
        for v in t.graph.vertices() {
            let term = t.mappings.term_of_vertex(v).unwrap();
            assert_eq!(t.mappings.vertex_of(term), Some(v));
        }
        for (i, &term) in t.mappings.elabel_to_term.iter().enumerate() {
            let el = t.mappings.elabel_of(term).expect("interned");
            assert_eq!(el.index(), i);
            assert_eq!(t.mappings.term_of_elabel(el), Some(term));
        }
    }

    #[test]
    fn simple_labels_fall_back_to_graph_labels() {
        let ds = figure3_dataset();
        let t = direct_transform(&ds);
        assert!(t.simple_labels.is_none());
        for v in t.graph.vertices() {
            assert_eq!(t.simple_labels_of(v), t.graph.labels(v));
        }
    }

    #[test]
    fn empty_dataset_produces_empty_graph() {
        let ds = Dataset::new();
        let t = direct_transform(&ds);
        assert_eq!(t.graph.vertex_count(), 0);
        assert_eq!(t.graph.edge_count(), 0);
    }

    #[test]
    fn literals_become_vertices() {
        let ds = figure3_dataset();
        let t = direct_transform(&ds);
        let phone = ds
            .dictionary
            .id_of(&turbohom_rdf::Term::literal("012-345-6789"))
            .unwrap();
        let phone_v = t.mappings.vertex_of(phone).unwrap();
        assert_eq!(t.graph.degree(phone_v, Direction::Incoming), 1);
        assert_eq!(t.graph.degree(phone_v, Direction::Outgoing), 0);
    }
}
