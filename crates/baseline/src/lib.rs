//! Relational-style baseline RDF engines.
//!
//! The paper compares TurboHOM++ against three engines that all process
//! SPARQL by *joins over triple tables* rather than graph exploration:
//! RDF-3X (exhaustive sorted permutation indexes + merge joins), TripleBit
//! (compact bit-matrix storage + specialized joins) and an anonymized
//! commercial "System-X" (bitmap indexes). This crate provides two faithful
//! stand-ins for that execution model:
//!
//! * [`MergeJoinEngine`] — RDF-3X style: all six orderings of the triple
//!   table ([`PermutationIndexes`]), triple-pattern range scans, and
//!   sort-merge joins with a greedy selectivity-based join order.
//! * [`HashJoinEngine`] — the "specialized join" family (TripleBit /
//!   System-X stand-in): the same scans joined with hash joins.
//!
//! Both support the general SPARQL features the BSBM explore use case needs
//! (OPTIONAL as left outer join, FILTER, UNION), so every benchmark query in
//! this repository can be cross-checked between the graph-exploration engine
//! and the join engines.
//!
//! What matters for reproducing the paper's evaluation is the *scaling
//! behaviour*: these engines scan data proportional to the dataset size even
//! for highly selective queries, whereas TurboHOM++ explores only the
//! candidate regions reachable from its starting vertices — which is exactly
//! the constant-vs-growing elapsed-time split of Table 3.

pub mod engine;
pub mod permutation;
pub mod relation;

pub use engine::{BaselineEngine, BaselineStats, HashJoinEngine, JoinStrategy, MergeJoinEngine};
pub use permutation::PermutationIndexes;
pub use relation::Relation;
