//! The join-based query engines (RDF-3X / System-X stand-ins).
//!
//! Execution model: every triple pattern becomes a range scan over the
//! [`PermutationIndexes`]; the scans are combined with binary joins in a
//! greedy, selectivity-driven order; OPTIONAL becomes a left outer join,
//! FILTER a selection over the intermediate relation, UNION a concatenation
//! of the expanded branches. The two engines differ only in the physical
//! join operator (sort-merge vs hash).

use crate::permutation::PermutationIndexes;
use crate::relation::Relation;
use std::collections::HashMap;
use turbohom_rdf::{Dataset, TermId};
use turbohom_sparql::{EvalContext, Expression, GroupPattern, Query, SparqlTerm, TriplePattern};

/// Physical join operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Sort both inputs on the join key and merge (the RDF-3X way — its
    /// scans are already sorted, so merging is the natural operator).
    SortMerge,
    /// Build a hash table over the smaller input and probe with the larger
    /// one (the TripleBit / System-X stand-in).
    Hash,
}

/// Execution counters of one baseline query run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BaselineStats {
    /// Triples produced by the index scans.
    pub scanned_triples: usize,
    /// Number of binary joins performed.
    pub joins: usize,
    /// Total rows of all intermediate join results.
    pub intermediate_rows: usize,
    /// Rows of the final relation.
    pub solutions: usize,
}

/// A join-based SPARQL engine over one dataset.
pub struct BaselineEngine<'a> {
    dataset: &'a Dataset,
    indexes: &'a PermutationIndexes,
    strategy: JoinStrategy,
}

/// RDF-3X-style engine: permutation-index scans + sort-merge joins.
pub struct MergeJoinEngine;

impl MergeJoinEngine {
    /// Creates the RDF-3X-style engine. Deliberately returns the shared
    /// [`BaselineEngine`] runner rather than `Self` — `MergeJoinEngine` and
    /// `HashJoinEngine` are facade names for the two join strategies.
    #[allow(clippy::new_ret_no_self)]
    pub fn new<'a>(dataset: &'a Dataset, indexes: &'a PermutationIndexes) -> BaselineEngine<'a> {
        BaselineEngine {
            dataset,
            indexes,
            strategy: JoinStrategy::SortMerge,
        }
    }
}

/// Hash-join engine: permutation-index scans + hash joins.
pub struct HashJoinEngine;

impl HashJoinEngine {
    /// Creates the hash-join engine. Deliberately returns the shared
    /// [`BaselineEngine`] runner rather than `Self`, like
    /// [`MergeJoinEngine::new`].
    #[allow(clippy::new_ret_no_self)]
    pub fn new<'a>(dataset: &'a Dataset, indexes: &'a PermutationIndexes) -> BaselineEngine<'a> {
        BaselineEngine {
            dataset,
            indexes,
            strategy: JoinStrategy::Hash,
        }
    }
}

impl<'a> BaselineEngine<'a> {
    /// The physical join operator this engine uses.
    pub fn strategy(&self) -> JoinStrategy {
        self.strategy
    }

    /// Executes a parsed SPARQL query, returning the result relation (over
    /// all pattern variables) and the execution counters.
    pub fn execute(&self, query: &Query) -> (Relation, BaselineStats) {
        let mut stats = BaselineStats::default();
        let header = query.pattern.all_variables();
        let mut out = Relation::empty(header.clone());
        for branch in query.pattern.expand_unions() {
            let r = self.evaluate_group(&branch, &mut stats);
            out.append(r.project(&header));
        }
        stats.solutions = out.len();
        (out, stats)
    }

    /// Evaluates one union-free group: required BGP, then OPTIONAL left
    /// joins, then FILTER selections.
    fn evaluate_group(&self, group: &GroupPattern, stats: &mut BaselineStats) -> Relation {
        let mut current = self.evaluate_bgp(&group.triples, stats);
        for optional in &group.optionals {
            let right = self.evaluate_group(optional, stats);
            stats.joins += 1;
            current = self.left_join(&current, &right);
            stats.intermediate_rows += current.len();
        }
        for filter in &group.filters {
            current = self.apply_filter(current, filter);
        }
        current
    }

    /// Evaluates a basic graph pattern with greedy join ordering: start from
    /// the most selective scan, repeatedly join the smallest relation that
    /// shares a variable with the result so far (falling back to a cartesian
    /// product only when nothing is connected).
    fn evaluate_bgp(&self, patterns: &[TriplePattern], stats: &mut BaselineStats) -> Relation {
        if patterns.is_empty() {
            return Relation::unit();
        }
        let mut scans: Vec<Relation> = patterns
            .iter()
            .map(|p| self.scan_pattern(p, stats))
            .collect();
        // Start with the smallest scan.
        scans.sort_by_key(|r| r.len());
        let mut current = scans.remove(0);
        while !scans.is_empty() {
            // Prefer a relation connected to the current result.
            let connected = scans
                .iter()
                .enumerate()
                .filter(|(_, r)| !current.shared_vars(r).is_empty())
                .min_by_key(|(_, r)| r.len())
                .map(|(i, _)| i);
            let idx = connected.unwrap_or(0);
            let right = scans.remove(idx);
            stats.joins += 1;
            current = self.inner_join(&current, &right);
            stats.intermediate_rows += current.len();
            if current.is_empty() {
                // Early exit: the remaining joins cannot resurrect rows.
                break;
            }
        }
        current
    }

    /// Scans one triple pattern into a relation over its variables.
    fn scan_pattern(&self, pattern: &TriplePattern, stats: &mut BaselineStats) -> Relation {
        let resolve = |term: &SparqlTerm| -> Result<Option<TermId>, ()> {
            match term {
                SparqlTerm::Variable(_) => Ok(None),
                SparqlTerm::Constant(t) => match self.dataset.dictionary.id_of(t) {
                    Some(id) => Ok(Some(id)),
                    None => Err(()),
                },
            }
        };
        // Build the (deduplicated) header.
        let mut vars: Vec<String> = Vec::new();
        for t in [&pattern.subject, &pattern.predicate, &pattern.object] {
            if let Some(v) = t.as_variable() {
                if !vars.iter().any(|x| x == v) {
                    vars.push(v.to_string());
                }
            }
        }
        let (s, p, o) = match (
            resolve(&pattern.subject),
            resolve(&pattern.predicate),
            resolve(&pattern.object),
        ) {
            (Ok(s), Ok(p), Ok(o)) => (s, p, o),
            // A constant that is not in the dictionary matches nothing.
            _ => return Relation::empty(vars),
        };
        let triples = self.indexes.scan((s, p, o));
        stats.scanned_triples += triples.len();
        let mut rows = Vec::with_capacity(triples.len());
        'next: for t in triples {
            let mut row: Vec<Option<TermId>> = vec![None; vars.len()];
            for (term, value) in [
                (&pattern.subject, t.s),
                (&pattern.predicate, t.p),
                (&pattern.object, t.o),
            ] {
                if let Some(v) = term.as_variable() {
                    let col = vars.iter().position(|x| x == v).expect("var in header");
                    match row[col] {
                        None => row[col] = Some(value),
                        // Repeated variable inside one pattern (e.g. ?x ?p ?x)
                        // must bind to the same term.
                        Some(existing) if existing != value => continue 'next,
                        Some(_) => {}
                    }
                }
            }
            rows.push(row);
        }
        Relation { vars, rows }
    }

    /// Inner join on the shared variables (cartesian product if none).
    fn inner_join(&self, left: &Relation, right: &Relation) -> Relation {
        let shared = left.shared_vars(right);
        let out_vars = joined_header(left, right);
        let mut out = Relation::empty(out_vars);
        match self.strategy {
            JoinStrategy::Hash => {
                let index = build_hash_index(right, &shared);
                for lrow in &left.rows {
                    let Some(key) = key_of(left, lrow, &shared) else {
                        continue;
                    };
                    if let Some(matches) = index.get(&key) {
                        for &ri in matches {
                            out.rows
                                .push(combine(left, lrow, right, &right.rows[ri], &out.vars));
                        }
                    }
                }
            }
            JoinStrategy::SortMerge => {
                let mut lsorted = sorted_by_key(left, &shared);
                let mut rsorted = sorted_by_key(right, &shared);
                if shared.is_empty() {
                    // Cartesian product.
                    for (_, lrow) in &lsorted {
                        for (_, rrow) in &rsorted {
                            out.rows.push(combine(left, lrow, right, rrow, &out.vars));
                        }
                    }
                    return out;
                }
                lsorted.retain(|(k, _)| k.is_some());
                rsorted.retain(|(k, _)| k.is_some());
                let (mut i, mut j) = (0usize, 0usize);
                while i < lsorted.len() && j < rsorted.len() {
                    let lk = lsorted[i].0.as_ref().unwrap();
                    let rk = rsorted[j].0.as_ref().unwrap();
                    match lk.cmp(rk) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            // Expand the equal-key blocks on both sides.
                            let i_end = (i..lsorted.len())
                                .take_while(|&x| lsorted[x].0.as_ref() == Some(lk))
                                .last()
                                .unwrap()
                                + 1;
                            let j_end = (j..rsorted.len())
                                .take_while(|&x| rsorted[x].0.as_ref() == Some(rk))
                                .last()
                                .unwrap()
                                + 1;
                            for (_, lrow) in &lsorted[i..i_end] {
                                for (_, rrow) in &rsorted[j..j_end] {
                                    out.rows.push(combine(left, lrow, right, rrow, &out.vars));
                                }
                            }
                            i = i_end;
                            j = j_end;
                        }
                    }
                }
            }
        }
        out
    }

    /// Left outer join: every left row is kept; unmatched right variables
    /// become `None` (SPARQL OPTIONAL semantics).
    fn left_join(&self, left: &Relation, right: &Relation) -> Relation {
        let shared = left.shared_vars(right);
        let out_vars = joined_header(left, right);
        let mut out = Relation::empty(out_vars);
        let index = build_hash_index(right, &shared);
        let nulls: Vec<Option<TermId>> = vec![None; right.vars.len()];
        for lrow in &left.rows {
            let matches = key_of(left, lrow, &shared)
                .and_then(|key| index.get(&key))
                .cloned()
                .unwrap_or_default();
            if matches.is_empty() {
                out.rows.push(combine(left, lrow, right, &nulls, &out.vars));
            } else {
                for ri in matches {
                    out.rows
                        .push(combine(left, lrow, right, &right.rows[ri], &out.vars));
                }
            }
        }
        out
    }

    /// Keeps the rows that satisfy `filter`.
    fn apply_filter(&self, relation: Relation, filter: &Expression) -> Relation {
        let vars = relation.vars.clone();
        let rows = relation
            .rows
            .into_iter()
            .filter(|row| {
                let mut ctx = EvalContext::new();
                for (i, var) in vars.iter().enumerate() {
                    if let Some(id) = row[i] {
                        if let Some(term) = self.dataset.dictionary.term(id) {
                            ctx.insert(var.clone(), term.clone());
                        }
                    }
                }
                filter.evaluate_bool(&ctx)
            })
            .collect();
        Relation { vars, rows }
    }
}

/// Header of a join result: left variables followed by right-only variables.
fn joined_header(left: &Relation, right: &Relation) -> Vec<String> {
    let mut vars = left.vars.clone();
    for v in &right.vars {
        if !vars.contains(v) {
            vars.push(v.clone());
        }
    }
    vars
}

/// Extracts the join key of a row (None if any key variable is unbound).
fn key_of(rel: &Relation, row: &[Option<TermId>], shared: &[String]) -> Option<Vec<TermId>> {
    let mut key = Vec::with_capacity(shared.len());
    for v in shared {
        match rel.value(row, v) {
            Some(id) => key.push(id),
            None => return None,
        }
    }
    Some(key)
}

/// Builds a hash index from key tuple to row indices.
fn build_hash_index(rel: &Relation, shared: &[String]) -> HashMap<Vec<TermId>, Vec<usize>> {
    let mut index: HashMap<Vec<TermId>, Vec<usize>> = HashMap::new();
    for (i, row) in rel.rows.iter().enumerate() {
        if let Some(key) = key_of(rel, row, shared) {
            index.entry(key).or_default().push(i);
        }
    }
    index
}

/// A row of a [`Relation`] paired with its extracted join key (`None` when
/// any key column is unbound).
type KeyedRow<'r> = (Option<Vec<TermId>>, &'r Vec<Option<TermId>>);

/// Pairs every row with its join key and sorts by it (None keys last).
fn sorted_by_key<'r>(rel: &'r Relation, shared: &[String]) -> Vec<KeyedRow<'r>> {
    let mut rows: Vec<KeyedRow<'r>> = rel
        .rows
        .iter()
        .map(|row| (key_of(rel, row, shared), row))
        .collect();
    rows.sort_by(|a, b| match (&a.0, &b.0) {
        (Some(x), Some(y)) => x.cmp(y),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => std::cmp::Ordering::Equal,
    });
    rows
}

/// Combines a left row and a right row into the output header layout.
fn combine(
    left: &Relation,
    lrow: &[Option<TermId>],
    right: &Relation,
    rrow: &[Option<TermId>],
    out_vars: &[String],
) -> Vec<Option<TermId>> {
    out_vars
        .iter()
        .map(|v| match left.column(v) {
            Some(i) => lrow[i],
            None => right.column(v).and_then(|i| rrow[i]),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbohom_rdf::{vocab, Term};
    use turbohom_sparql::parse_query;

    fn ub(l: &str) -> String {
        format!("http://ub.org/{l}")
    }

    /// Three universities × two departments × four students, plus ages.
    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        for u in 0..3 {
            let univ = ub(&format!("univ{u}"));
            ds.insert_iris(&univ, vocab::RDF_TYPE, &ub("University"));
            for d in 0..2 {
                let dept = ub(&format!("dept{u}_{d}"));
                ds.insert_iris(&dept, vocab::RDF_TYPE, &ub("Department"));
                ds.insert_iris(&dept, &ub("subOrganizationOf"), &univ);
                for s in 0..4 {
                    let student = ub(&format!("student{u}_{d}_{s}"));
                    ds.insert_iris(&student, vocab::RDF_TYPE, &ub("Student"));
                    ds.insert_iris(&student, &ub("memberOf"), &dept);
                    ds.insert_iris(&student, &ub("undergraduateDegreeFrom"), &univ);
                    ds.insert(
                        &Term::iri(student.clone()),
                        &Term::iri(ub("age")),
                        &Term::integer(20 + s as i64),
                    );
                    if s == 0 {
                        ds.insert_iris(&student, &ub("email"), &ub(&format!("mail{u}_{d}")));
                    }
                }
            }
        }
        ds
    }

    const TRIANGLE: &str = r#"
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        PREFIX ub: <http://ub.org/>
        SELECT ?x ?y ?z WHERE {
            ?x rdf:type ub:Student . ?y rdf:type ub:University . ?z rdf:type ub:Department .
            ?x ub:undergraduateDegreeFrom ?y . ?x ub:memberOf ?z . ?z ub:subOrganizationOf ?y .
        }"#;

    fn run(
        ds: &Dataset,
        idx: &PermutationIndexes,
        strategy: JoinStrategy,
        q: &str,
    ) -> (Relation, BaselineStats) {
        let query = parse_query(q).unwrap();
        let engine = match strategy {
            JoinStrategy::SortMerge => MergeJoinEngine::new(ds, idx),
            JoinStrategy::Hash => HashJoinEngine::new(ds, idx),
        };
        engine.execute(&query)
    }

    #[test]
    fn triangle_query_counts_24_solutions_with_both_strategies() {
        let ds = dataset();
        let idx = PermutationIndexes::build(&ds);
        for strategy in [JoinStrategy::SortMerge, JoinStrategy::Hash] {
            let (rel, stats) = run(&ds, &idx, strategy, TRIANGLE);
            assert_eq!(rel.len(), 24, "{strategy:?}");
            assert_eq!(stats.solutions, 24);
            assert!(stats.joins >= 5);
            assert!(stats.scanned_triples > 0);
        }
    }

    #[test]
    fn merge_and_hash_join_produce_identical_row_sets() {
        let ds = dataset();
        let idx = PermutationIndexes::build(&ds);
        let (mut a, _) = run(&ds, &idx, JoinStrategy::SortMerge, TRIANGLE);
        let (mut b, _) = run(&ds, &idx, JoinStrategy::Hash, TRIANGLE);
        a.deduplicate();
        b.deduplicate();
        assert_eq!(a, b);
    }

    #[test]
    fn bound_subject_query() {
        let ds = dataset();
        let idx = PermutationIndexes::build(&ds);
        let (rel, _) = run(
            &ds,
            &idx,
            JoinStrategy::SortMerge,
            r#"PREFIX ub: <http://ub.org/>
               SELECT ?d WHERE { <http://ub.org/student0_0_0> ub:memberOf ?d . }"#,
        );
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn unknown_constant_yields_empty_result() {
        let ds = dataset();
        let idx = PermutationIndexes::build(&ds);
        let (rel, _) = run(
            &ds,
            &idx,
            JoinStrategy::Hash,
            r#"PREFIX ub: <http://ub.org/>
               SELECT ?d WHERE { <http://ub.org/ghost> ub:memberOf ?d . }"#,
        );
        assert!(rel.is_empty());
    }

    #[test]
    fn optional_keeps_unmatched_rows_with_nulls() {
        let ds = dataset();
        let idx = PermutationIndexes::build(&ds);
        let (rel, _) = run(
            &ds,
            &idx,
            JoinStrategy::SortMerge,
            r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
               PREFIX ub: <http://ub.org/>
               SELECT ?x ?m WHERE {
                 ?x rdf:type ub:Student .
                 OPTIONAL { ?x ub:email ?m . }
               }"#,
        );
        // 24 students; 6 have an email.
        assert_eq!(rel.len(), 24);
        let m_col = rel.column("m").unwrap();
        let bound = rel.rows.iter().filter(|r| r[m_col].is_some()).count();
        assert_eq!(bound, 6);
    }

    #[test]
    fn filter_on_numeric_literals() {
        let ds = dataset();
        let idx = PermutationIndexes::build(&ds);
        let (rel, _) = run(
            &ds,
            &idx,
            JoinStrategy::Hash,
            r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
               PREFIX ub: <http://ub.org/>
               SELECT ?x WHERE { ?x rdf:type ub:Student . ?x ub:age ?a . FILTER (?a >= 22) }"#,
        );
        assert_eq!(rel.len(), 12);
    }

    #[test]
    fn join_condition_filter() {
        let ds = dataset();
        let idx = PermutationIndexes::build(&ds);
        let (rel, _) = run(
            &ds,
            &idx,
            JoinStrategy::SortMerge,
            r#"PREFIX ub: <http://ub.org/>
               SELECT ?a ?b WHERE {
                 ?a ub:memberOf ?d . ?b ub:memberOf ?d .
                 ?a ub:age ?agea . ?b ub:age ?ageb .
                 FILTER (?agea > ?ageb)
               }"#,
        );
        // 6 departments × C(4,2) ordered pairs = 36.
        assert_eq!(rel.len(), 36);
    }

    #[test]
    fn union_concatenates_branches() {
        let ds = dataset();
        let idx = PermutationIndexes::build(&ds);
        let (rel, _) = run(
            &ds,
            &idx,
            JoinStrategy::Hash,
            r#"PREFIX ub: <http://ub.org/>
               SELECT ?x WHERE {
                 { ?x ub:memberOf <http://ub.org/dept0_0> . }
                 UNION
                 { ?x ub:memberOf <http://ub.org/dept0_1> . }
               }"#,
        );
        assert_eq!(rel.len(), 8);
    }

    #[test]
    fn variable_predicate_scan() {
        let ds = dataset();
        let idx = PermutationIndexes::build(&ds);
        let (rel, _) = run(
            &ds,
            &idx,
            JoinStrategy::SortMerge,
            r#"SELECT ?p ?o WHERE { <http://ub.org/student0_0_0> ?p ?o . }"#,
        );
        // type, memberOf, undergraduateDegreeFrom, age, email = 5 triples.
        assert_eq!(rel.len(), 5);
    }

    #[test]
    fn repeated_variable_in_one_pattern_requires_equality() {
        let mut ds = Dataset::new();
        ds.insert_iris(&ub("a"), &ub("knows"), &ub("a"));
        ds.insert_iris(&ub("a"), &ub("knows"), &ub("b"));
        let idx = PermutationIndexes::build(&ds);
        let (rel, _) = run(
            &ds,
            &idx,
            JoinStrategy::Hash,
            r#"PREFIX ub: <http://ub.org/> SELECT ?x WHERE { ?x ub:knows ?x . }"#,
        );
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn empty_bgp_returns_unit() {
        let ds = dataset();
        let idx = PermutationIndexes::build(&ds);
        let engine = MergeJoinEngine::new(&ds, &idx);
        let query =
            parse_query("SELECT ?x WHERE { OPTIONAL { ?x <http://ub.org/email> ?m . } }").unwrap();
        let (rel, _) = engine.execute(&query);
        // Unit left-joined with 6 email rows → 6 rows.
        assert_eq!(rel.len(), 6);
    }

    #[test]
    fn cartesian_product_when_patterns_share_nothing() {
        let ds = dataset();
        let idx = PermutationIndexes::build(&ds);
        let (rel, _) = run(
            &ds,
            &idx,
            JoinStrategy::SortMerge,
            r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
               PREFIX ub: <http://ub.org/>
               SELECT ?u ?d WHERE { ?u rdf:type ub:University . ?d rdf:type ub:Department . }"#,
        );
        // 3 universities × 6 departments.
        assert_eq!(rel.len(), 18);
    }
}
