//! The intermediate result representation of the join-based engines.
//!
//! A [`Relation`] is a flat table: a header of variable names and rows of
//! optional term ids (`None` only appears for variables introduced by an
//! OPTIONAL clause that did not match — the SQL `NULL` of a left outer
//! join).

use turbohom_rdf::TermId;

/// A named-column table of term-id rows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Relation {
    /// Column names (SPARQL variable names, without `?`).
    pub vars: Vec<String>,
    /// Rows; each row has exactly `vars.len()` entries.
    pub rows: Vec<Vec<Option<TermId>>>,
}

impl Relation {
    /// An empty relation with the given header and no rows.
    pub fn empty(vars: Vec<String>) -> Self {
        Relation {
            vars,
            rows: Vec::new(),
        }
    }

    /// The "unit" relation: no columns, exactly one (empty) row. It is the
    /// identity of the join, used as the seed when folding a BGP.
    pub fn unit() -> Self {
        Relation {
            vars: Vec::new(),
            rows: vec![Vec::new()],
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The column index of `var`, if present.
    pub fn column(&self, var: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == var)
    }

    /// The value of `var` in `row`.
    pub fn value(&self, row: &[Option<TermId>], var: &str) -> Option<TermId> {
        self.column(var).and_then(|i| row[i])
    }

    /// The variables shared with another relation.
    pub fn shared_vars(&self, other: &Relation) -> Vec<String> {
        self.vars
            .iter()
            .filter(|v| other.column(v).is_some())
            .cloned()
            .collect()
    }

    /// Projects the relation onto `vars` (missing variables become all-`None`
    /// columns, matching SPARQL's treatment of unbound projections).
    pub fn project(&self, vars: &[String]) -> Relation {
        let indices: Vec<Option<usize>> = vars.iter().map(|v| self.column(v)).collect();
        let rows = self
            .rows
            .iter()
            .map(|row| {
                indices
                    .iter()
                    .map(|i| i.and_then(|i| row[i]))
                    .collect::<Vec<_>>()
            })
            .collect();
        Relation {
            vars: vars.to_vec(),
            rows,
        }
    }

    /// Removes duplicate rows (used for DISTINCT and for UNION result
    /// hygiene in tests; the benchmark timings skip it as the paper does).
    pub fn deduplicate(&mut self) {
        self.rows.sort_unstable();
        self.rows.dedup();
    }

    /// Appends another relation with the same header.
    ///
    /// # Panics
    /// Panics if the headers differ (callers align headers via [`project`](Relation::project)).
    pub fn append(&mut self, mut other: Relation) {
        assert_eq!(
            self.vars, other.vars,
            "appending relations with different headers"
        );
        self.rows.append(&mut other.rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> Option<TermId> {
        Some(TermId(n))
    }

    #[test]
    fn unit_and_empty() {
        let unit = Relation::unit();
        assert_eq!(unit.len(), 1);
        assert!(unit.vars.is_empty());
        let empty = Relation::empty(vec!["x".into()]);
        assert!(empty.is_empty());
    }

    #[test]
    fn column_lookup_and_value() {
        let r = Relation {
            vars: vec!["x".into(), "y".into()],
            rows: vec![vec![id(1), id(2)], vec![id(3), None]],
        };
        assert_eq!(r.column("y"), Some(1));
        assert_eq!(r.column("z"), None);
        assert_eq!(r.value(&r.rows[0], "y"), Some(TermId(2)));
        assert_eq!(r.value(&r.rows[1], "y"), None);
    }

    #[test]
    fn shared_vars_projection_and_append() {
        let a = Relation {
            vars: vec!["x".into(), "y".into()],
            rows: vec![vec![id(1), id(2)]],
        };
        let b = Relation {
            vars: vec!["y".into(), "z".into()],
            rows: vec![vec![id(2), id(9)]],
        };
        assert_eq!(a.shared_vars(&b), vec!["y"]);
        let projected = a.project(&["y".into(), "w".into()]);
        assert_eq!(projected.vars, vec!["y", "w"]);
        assert_eq!(projected.rows, vec![vec![id(2), None]]);

        let mut combined = a.project(&["x".into(), "y".into(), "z".into()]);
        combined.append(b.project(&["x".into(), "y".into(), "z".into()]));
        assert_eq!(combined.len(), 2);
        assert_eq!(combined.rows[1], vec![None, id(2), id(9)]);
    }

    #[test]
    fn deduplicate_removes_copies() {
        let mut r = Relation {
            vars: vec!["x".into()],
            rows: vec![vec![id(1)], vec![id(1)], vec![id(2)]],
        };
        r.deduplicate();
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "different headers")]
    fn append_with_mismatched_headers_panics() {
        let mut a = Relation::empty(vec!["x".into()]);
        a.append(Relation::empty(vec!["y".into()]));
    }
}
