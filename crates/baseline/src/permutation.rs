//! The six sorted triple permutations (RDF-3X's storage layout).
//!
//! RDF-3X materializes the triple table in all six attribute orders so that
//! any triple pattern with any subset of bound positions can be answered by
//! a binary-searched range scan whose output is already sorted — the
//! property its merge joins rely on. [`PermutationIndexes`] reproduces that
//! layout in memory.

use turbohom_rdf::{Dataset, TermId, Triple};
use turbohom_storage::{FlatVec, SectionCursor, SnapshotError, SnapshotWriter};

/// Snapshot section tags (component 0x08): meta, then the six orderings in
/// [`Ordering::all`] order.
const TAG_PERM_META: u64 = 0x0800;
const TAG_PERM_FIRST_ORDER: u64 = 0x0801;

/// Which position of a triple a component refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pos {
    S,
    P,
    O,
}

/// The six orderings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ordering {
    /// subject, predicate, object
    Spo,
    /// subject, object, predicate
    Sop,
    /// predicate, subject, object
    Pso,
    /// predicate, object, subject
    Pos,
    /// object, subject, predicate
    Osp,
    /// object, predicate, subject
    Ops,
}

impl Ordering {
    fn key(self) -> [Pos; 3] {
        match self {
            Ordering::Spo => [Pos::S, Pos::P, Pos::O],
            Ordering::Sop => [Pos::S, Pos::O, Pos::P],
            Ordering::Pso => [Pos::P, Pos::S, Pos::O],
            Ordering::Pos => [Pos::P, Pos::O, Pos::S],
            Ordering::Osp => [Pos::O, Pos::S, Pos::P],
            Ordering::Ops => [Pos::O, Pos::P, Pos::S],
        }
    }

    fn all() -> [Ordering; 6] {
        [
            Ordering::Spo,
            Ordering::Sop,
            Ordering::Pso,
            Ordering::Pos,
            Ordering::Osp,
            Ordering::Ops,
        ]
    }
}

fn component(t: &Triple, p: Pos) -> TermId {
    match p {
        Pos::S => t.s,
        Pos::P => t.p,
        Pos::O => t.o,
    }
}

fn sort_key(t: &Triple, ordering: Ordering) -> (TermId, TermId, TermId) {
    let k = ordering.key();
    (component(t, k[0]), component(t, k[1]), component(t, k[2]))
}

/// A triple pattern over term ids; `None` marks a variable position.
pub type IdPattern = (Option<TermId>, Option<TermId>, Option<TermId>);

/// All six sorted copies of the triple table.
#[derive(Debug, Clone)]
pub struct PermutationIndexes {
    orders: [(Ordering, FlatVec<Triple>); 6],
    len: usize,
}

impl PermutationIndexes {
    /// Builds the six orderings from a dataset.
    pub fn build(dataset: &Dataset) -> Self {
        let base: Vec<Triple> = dataset.triples.iter().copied().collect();
        let orders = Ordering::all().map(|o| {
            let mut v = base.clone();
            v.sort_unstable_by_key(|t| sort_key(t, o));
            (o, v.into())
        });
        PermutationIndexes {
            orders,
            len: base.len(),
        }
    }

    /// Serializes the six orderings as snapshot sections.
    pub fn write_sections(&self, w: &mut SnapshotWriter) {
        let meta: [u64; 1] = [self.len as u64];
        w.section(TAG_PERM_META, &meta);
        for (i, (_, table)) in self.orders.iter().enumerate() {
            w.section(TAG_PERM_FIRST_ORDER + i as u64, table);
        }
    }

    /// Reconstructs the six orderings reading them in place from a snapshot.
    pub fn read_sections(cur: &mut SectionCursor<'_>) -> Result<Self, SnapshotError> {
        let meta: FlatVec<u64> = cur.next_section(TAG_PERM_META)?;
        if meta.len() != 1 {
            return Err(SnapshotError::Malformed(
                "permutation meta section length".into(),
            ));
        }
        let len = meta[0] as usize;
        let mut tables: Vec<FlatVec<Triple>> = Vec::with_capacity(6);
        for i in 0..6u64 {
            let table: FlatVec<Triple> = cur.next_section(TAG_PERM_FIRST_ORDER + i)?;
            if table.len() != len {
                return Err(SnapshotError::Malformed(format!(
                    "permutation table {i} holds {} triples, expected {len}",
                    table.len()
                )));
            }
            tables.push(table);
        }
        let mut it = tables.into_iter();
        let orders = Ordering::all().map(|o| (o, it.next().expect("six tables read above")));
        for (o, table) in &orders {
            if table
                .windows(2)
                .any(|w| sort_key(&w[0], *o) > sort_key(&w[1], *o))
            {
                return Err(SnapshotError::Malformed(format!(
                    "permutation table {o:?} is not sorted"
                )));
            }
        }
        Ok(PermutationIndexes { orders, len })
    }

    /// Total number of triples indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Chooses the ordering whose key prefix covers the bound positions of
    /// `pattern` so a contiguous range scan answers it.
    fn choose_ordering(pattern: IdPattern) -> Ordering {
        let (s, p, o) = (
            pattern.0.is_some(),
            pattern.1.is_some(),
            pattern.2.is_some(),
        );
        match (s, p, o) {
            (true, true, true) | (true, true, false) => Ordering::Spo,
            (true, false, true) => Ordering::Sop,
            (true, false, false) => Ordering::Spo,
            (false, true, true) => Ordering::Pos,
            (false, true, false) => Ordering::Pso,
            (false, false, true) => Ordering::Osp,
            (false, false, false) => Ordering::Spo,
        }
    }

    fn table(&self, ordering: Ordering) -> &[Triple] {
        &self
            .orders
            .iter()
            .find(|(o, _)| *o == ordering)
            .expect("all orderings are materialized")
            .1
    }

    /// Scans all triples matching `pattern`. The result is a contiguous
    /// slice of the best-fitting ordering (so it is globally sorted by that
    /// ordering's key) with any non-prefix bound positions post-filtered.
    pub fn scan(&self, pattern: IdPattern) -> Vec<Triple> {
        let ordering = Self::choose_ordering(pattern);
        let table = self.table(ordering);
        let key = ordering.key();
        let bound_at = |pos: Pos| match pos {
            Pos::S => pattern.0,
            Pos::P => pattern.1,
            Pos::O => pattern.2,
        };
        // Determine how long the bound prefix of the ordering key is.
        let mut prefix: Vec<(Pos, TermId)> = Vec::new();
        for pos in key {
            match bound_at(pos) {
                Some(id) => prefix.push((pos, id)),
                None => break,
            }
        }
        let range = if prefix.is_empty() {
            0..table.len()
        } else {
            let lower =
                table.partition_point(|t| prefix_cmp(t, &prefix) == std::cmp::Ordering::Less);
            let upper =
                table.partition_point(|t| prefix_cmp(t, &prefix) != std::cmp::Ordering::Greater);
            lower..upper
        };
        table[range]
            .iter()
            .filter(|t| {
                pattern.0.is_none_or(|s| t.s == s)
                    && pattern.1.is_none_or(|p| t.p == p)
                    && pattern.2.is_none_or(|o| t.o == o)
            })
            .copied()
            .collect()
    }

    /// Estimates the number of triples matching `pattern` (exact for bound
    /// prefixes of the chosen ordering — a stand-in for RDF-3X's statistics).
    pub fn estimate(&self, pattern: IdPattern) -> usize {
        let ordering = Self::choose_ordering(pattern);
        let table = self.table(ordering);
        let key = ordering.key();
        let bound_at = |pos: Pos| match pos {
            Pos::S => pattern.0,
            Pos::P => pattern.1,
            Pos::O => pattern.2,
        };
        let mut prefix: Vec<(Pos, TermId)> = Vec::new();
        for pos in key {
            match bound_at(pos) {
                Some(id) => prefix.push((pos, id)),
                None => break,
            }
        }
        if prefix.is_empty() {
            return table.len();
        }
        let lower = table.partition_point(|t| prefix_cmp(t, &prefix) == std::cmp::Ordering::Less);
        let upper =
            table.partition_point(|t| prefix_cmp(t, &prefix) != std::cmp::Ordering::Greater);
        upper - lower
    }
}

/// Compares a triple's key prefix against the bound prefix values.
fn prefix_cmp(t: &Triple, prefix: &[(Pos, TermId)]) -> std::cmp::Ordering {
    for (pos, id) in prefix {
        let c = component(t, *pos).cmp(id);
        if c != std::cmp::Ordering::Equal {
            return c;
        }
    }
    std::cmp::Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbohom_rdf::Term;

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        for i in 0..4 {
            for j in 0..3 {
                ds.insert(
                    &Term::iri(format!("http://s{i}")),
                    &Term::iri(format!("http://p{j}")),
                    &Term::iri(format!("http://o{}", (i + j) % 5)),
                );
            }
        }
        ds
    }

    fn id(ds: &Dataset, iri: &str) -> TermId {
        ds.dictionary.id_of_iri(iri).unwrap()
    }

    #[test]
    fn full_scan_returns_everything() {
        let ds = dataset();
        let idx = PermutationIndexes::build(&ds);
        assert_eq!(idx.len(), 12);
        assert_eq!(idx.scan((None, None, None)).len(), 12);
        assert_eq!(idx.estimate((None, None, None)), 12);
    }

    #[test]
    fn bound_subject_scan() {
        let ds = dataset();
        let idx = PermutationIndexes::build(&ds);
        let s1 = id(&ds, "http://s1");
        let result = idx.scan((Some(s1), None, None));
        assert_eq!(result.len(), 3);
        assert!(result.iter().all(|t| t.s == s1));
        assert_eq!(idx.estimate((Some(s1), None, None)), 3);
    }

    #[test]
    fn bound_predicate_and_object_scan() {
        let ds = dataset();
        let idx = PermutationIndexes::build(&ds);
        let p0 = id(&ds, "http://p0");
        let o2 = id(&ds, "http://o2");
        let result = idx.scan((None, Some(p0), Some(o2)));
        assert!(result.iter().all(|t| t.p == p0 && t.o == o2));
        // p0 pairs subjects s0..s3 with objects o0..o3; only s2 yields o2.
        assert_eq!(result.len(), 1);
    }

    #[test]
    fn fully_bound_lookup() {
        let ds = dataset();
        let idx = PermutationIndexes::build(&ds);
        let s0 = id(&ds, "http://s0");
        let p0 = id(&ds, "http://p0");
        let o0 = id(&ds, "http://o0");
        assert_eq!(idx.scan((Some(s0), Some(p0), Some(o0))).len(), 1);
        let o4 = id(&ds, "http://o4");
        assert_eq!(idx.scan((Some(s0), Some(p0), Some(o4))).len(), 0);
    }

    #[test]
    fn subject_object_pattern_uses_sop_and_filters_nothing() {
        let ds = dataset();
        let idx = PermutationIndexes::build(&ds);
        let s2 = id(&ds, "http://s2");
        let o2 = id(&ds, "http://o2");
        let result = idx.scan((Some(s2), None, Some(o2)));
        assert!(result.iter().all(|t| t.s == s2 && t.o == o2));
        assert_eq!(result.len(), 1); // p0 with (2+0)%5 = 2
    }

    #[test]
    fn non_prefix_bound_position_is_post_filtered() {
        // Pattern (S bound, P bound, O bound) with the SPO ordering is fully
        // prefix-covered; craft a case where it is not: bound S and O but
        // choose the ordering by hand through the public API and verify
        // correctness regardless of ordering choice.
        let ds = dataset();
        let idx = PermutationIndexes::build(&ds);
        let s3 = id(&ds, "http://s3");
        for t in idx.scan((Some(s3), None, None)) {
            // All scans agree with a brute-force filter over the dataset.
            assert!(ds.triples.contains(&t));
        }
    }

    #[test]
    fn scans_agree_with_bruteforce_on_all_patterns() {
        let ds = dataset();
        let idx = PermutationIndexes::build(&ds);
        let subjects: Vec<Option<TermId>> = vec![None, Some(id(&ds, "http://s0"))];
        let predicates: Vec<Option<TermId>> = vec![None, Some(id(&ds, "http://p1"))];
        let objects: Vec<Option<TermId>> = vec![None, Some(id(&ds, "http://o1"))];
        for &s in &subjects {
            for &p in &predicates {
                for &o in &objects {
                    let scanned = idx.scan((s, p, o));
                    let brute: Vec<Triple> = ds
                        .triples
                        .iter()
                        .filter(|t| {
                            s.is_none_or(|x| t.s == x)
                                && p.is_none_or(|x| t.p == x)
                                && o.is_none_or(|x| t.o == x)
                        })
                        .copied()
                        .collect();
                    assert_eq!(scanned.len(), brute.len(), "pattern {s:?} {p:?} {o:?}");
                    assert!(idx.estimate((s, p, o)) >= scanned.len());
                }
            }
        }
    }

    #[test]
    fn empty_dataset() {
        let idx = PermutationIndexes::build(&Dataset::new());
        assert!(idx.is_empty());
        assert!(idx.scan((None, None, None)).is_empty());
    }
}
