//! Zero-dependency span tracing for the TurboHOM++ query pipeline.
//!
//! The paper's central claim is about *where* query time goes — type-aware
//! transform, candidate-region filtering, matching-order selection,
//! enumeration — so the service needs a way to attribute latency to those
//! stages per query. This crate provides exactly that and nothing more:
//!
//! - [`Trace`] — a cheap, cloneable handle. A disabled trace
//!   ([`Trace::disabled`]) makes every operation a no-op with no allocation,
//!   so the hot path of an untraced query pays a single `Option` check.
//! - [`Span`] — an RAII guard over a named region. Spans carry monotonic
//!   timings (offsets from the trace start, measured with [`Instant`]),
//!   optional integer counters, and a parent link, forming a tree.
//! - [`TraceReport`] — the finished tree plus per-stage roll-ups
//!   (root spans summed by name), renderable as JSON for the `profile=1`
//!   extension block in SPARQL-JSON responses.
//!
//! Two enablement levels keep overhead proportional to what is asked for:
//! a *coarse* trace ([`Trace::new`]) records only the spans the service
//! layer opens (a handful per request, feeding the always-on per-stage time
//! totals in `/metrics`), while a *detailed* trace ([`Trace::detailed`])
//! additionally makes the matching core time candidate-region exploration,
//! matching-order selection and per-worker enumeration.
//!
//! The crate depends only on `std` so every layer of the workspace —
//! `turbohom-core`, `turbohom-engine`, `turbohom-service` — can link it
//! without cycles.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Identifier of one span within its trace (dense, starting at 0).
pub type SpanId = u32;

/// One finished span: a named, timed region of the query pipeline.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Dense per-trace identifier.
    pub id: SpanId,
    /// Parent span, `None` for pipeline-stage roots.
    pub parent: Option<SpanId>,
    /// Static stage name (`"parse"`, `"enumeration"`, …).
    pub name: &'static str,
    /// Start offset from the trace start, in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, in nanoseconds.
    pub duration_ns: u64,
    /// Optional integer counters attached by the instrumented code
    /// (e.g. `("candidate_regions", 42)`).
    pub counters: Vec<(&'static str, u64)>,
}

struct TraceInner {
    trace_id: u64,
    started: Instant,
    detailed: bool,
    next_id: AtomicU32,
    spans: Mutex<Vec<SpanRecord>>,
}

/// A handle to one query's trace. Cloning is cheap (an `Arc` bump); all
/// clones record into the same span tree, so worker threads can each hold
/// one. A disabled handle turns every operation into a no-op.
#[derive(Clone)]
pub struct Trace {
    inner: Option<Arc<TraceInner>>,
}

impl Trace {
    /// A trace that records nothing. Every span it opens is a no-op and
    /// allocates nothing; this is what untraced hot paths pass around.
    pub fn disabled() -> Trace {
        Trace { inner: None }
    }

    /// A coarse trace: records the spans explicitly opened on it, but
    /// [`is_detailed`](Trace::is_detailed) stays false so the matching core
    /// skips its fine-grained (per-region, per-worker) instrumentation.
    pub fn new(trace_id: u64) -> Trace {
        Trace::build(trace_id, false)
    }

    /// A detailed trace: additionally asks the matching core to time
    /// candidate-region exploration, matching-order selection and
    /// per-worker enumeration. Used by `profile=1` and `execute_traced`.
    pub fn detailed(trace_id: u64) -> Trace {
        Trace::build(trace_id, true)
    }

    fn build(trace_id: u64, detailed: bool) -> Trace {
        Trace {
            inner: Some(Arc::new(TraceInner {
                trace_id,
                started: Instant::now(),
                detailed,
                next_id: AtomicU32::new(0),
                spans: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether spans opened on this trace are recorded at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether the matching core should emit fine-grained spans too.
    pub fn is_detailed(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.detailed)
    }

    /// The trace id, or 0 when disabled.
    pub fn trace_id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.trace_id)
    }

    /// Opens a root span (a pipeline stage). The span records itself when
    /// dropped or explicitly [`finish`](Span::finish)ed.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        self.span_under(name, None)
    }

    /// Opens a span under `parent` (pass a span's [`id`](Span::id), which
    /// is `None` on a disabled trace — the child is then a no-op root).
    pub fn span_under(&self, name: &'static str, parent: Option<SpanId>) -> Span<'_> {
        match &self.inner {
            None => Span {
                inner: None,
                id: 0,
                parent: None,
                name,
                start: None,
                counters: Vec::new(),
                recorded: true,
            },
            Some(inner) => Span {
                inner: Some(inner),
                id: inner.next_id.fetch_add(1, Ordering::Relaxed),
                parent,
                name,
                start: Some(Instant::now()),
                counters: Vec::new(),
                recorded: false,
            },
        }
    }

    /// Records a rolled-up span directly: a region whose duration was
    /// accumulated elsewhere (e.g. exploration time summed across candidate
    /// regions). Its start offset is back-dated by `duration` from now.
    /// Returns the new span's id, or `None` when the trace is disabled.
    pub fn record_rollup(
        &self,
        name: &'static str,
        parent: Option<SpanId>,
        duration: Duration,
        counters: &[(&'static str, u64)],
    ) -> Option<SpanId> {
        let inner = self.inner.as_ref()?;
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let duration_ns = saturating_ns(duration);
        let end_ns = saturating_ns(inner.started.elapsed());
        inner.spans.lock().unwrap().push(SpanRecord {
            id,
            parent,
            name,
            start_ns: end_ns.saturating_sub(duration_ns),
            duration_ns,
            counters: counters.to_vec(),
        });
        Some(id)
    }

    /// Snapshots the trace into a report. Safe to call while clones are
    /// still alive; spans recorded afterwards are simply not included.
    /// A disabled trace yields an empty report with `trace_id` 0.
    pub fn finish(&self) -> TraceReport {
        let Some(inner) = self.inner.as_ref() else {
            return TraceReport {
                trace_id: 0,
                total_ns: 0,
                spans: Vec::new(),
            };
        };
        let mut spans = inner.spans.lock().unwrap().clone();
        spans.sort_by_key(|s| s.id);
        TraceReport {
            trace_id: inner.trace_id,
            total_ns: saturating_ns(inner.started.elapsed()),
            spans,
        }
    }
}

fn saturating_ns(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// An open span: records itself into the trace when finished or dropped.
pub struct Span<'t> {
    inner: Option<&'t Arc<TraceInner>>,
    id: SpanId,
    parent: Option<SpanId>,
    name: &'static str,
    start: Option<Instant>,
    counters: Vec<(&'static str, u64)>,
    recorded: bool,
}

impl Span<'_> {
    /// This span's id, for parenting children — `None` when the trace is
    /// disabled, which makes `span_under(.., span.id())` compose safely.
    pub fn id(&self) -> Option<SpanId> {
        self.inner.map(|_| self.id)
    }

    /// Attaches an integer counter (no-op on a disabled trace).
    pub fn counter(&mut self, name: &'static str, value: u64) {
        if self.inner.is_some() {
            self.counters.push((name, value));
        }
    }

    /// Closes the span now. Equivalent to dropping it, but reads better at
    /// the end of a stage.
    pub fn finish(mut self) {
        self.record();
    }

    fn record(&mut self) {
        if self.recorded {
            return;
        }
        self.recorded = true;
        let (Some(inner), Some(start)) = (self.inner, self.start) else {
            return;
        };
        let start_ns = saturating_ns(start.duration_since(inner.started));
        inner.spans.lock().unwrap().push(SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name,
            start_ns,
            duration_ns: saturating_ns(start.elapsed()),
            counters: std::mem::take(&mut self.counters),
        });
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.record();
    }
}

/// A finished trace: the span tree plus stage roll-ups.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// The id the trace was created with (0 for a disabled trace).
    pub trace_id: u64,
    /// Wall-clock nanoseconds from trace creation to [`Trace::finish`].
    pub total_ns: u64,
    /// All recorded spans, ordered by id (creation order).
    pub spans: Vec<SpanRecord>,
}

impl TraceReport {
    /// Total traced time in microseconds.
    pub fn total_us(&self) -> f64 {
        self.total_ns as f64 / 1_000.0
    }

    /// Per-stage roll-up: root spans (no parent) summed by name, in first-
    /// seen order. Because the service opens one root span per pipeline
    /// stage, these sum to approximately the total request latency.
    pub fn stages(&self) -> Vec<(&'static str, u64)> {
        let mut stages: Vec<(&'static str, u64)> = Vec::new();
        for span in self.spans.iter().filter(|s| s.parent.is_none()) {
            match stages.iter_mut().find(|(name, _)| *name == span.name) {
                Some((_, ns)) => *ns += span.duration_ns,
                None => stages.push((span.name, span.duration_ns)),
            }
        }
        stages
    }

    /// Sum of all stage durations, in nanoseconds.
    pub fn stage_total_ns(&self) -> u64 {
        self.stages().iter().map(|(_, ns)| ns).sum()
    }

    /// Total duration of every span named `name` (across the whole tree,
    /// not just roots), in nanoseconds. Used by the bench recorder to pull
    /// out e.g. `candidate_regions` time.
    pub fn span_total_ns(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.duration_ns)
            .sum()
    }

    /// Renders the report as a JSON object:
    ///
    /// ```json
    /// {"trace_id":"000000000000002a","total_us":123.456,
    ///  "stages":{"parse":10.0,"execute":100.0},
    ///  "spans":[{"id":0,"parent":null,"name":"parse","start_us":0.1,
    ///            "dur_us":10.0,"counters":{"tokens":42}}]}
    /// ```
    ///
    /// Durations are microseconds with nanosecond precision; `stages` keys
    /// appear in pipeline order.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.spans.len() * 96);
        out.push_str("{\"trace_id\":\"");
        out.push_str(&format_trace_id(self.trace_id));
        out.push_str("\",\"total_us\":");
        push_us(&mut out, self.total_ns);
        out.push_str(",\"stages\":{");
        for (i, (name, ns)) in self.stages().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(name);
            out.push_str("\":");
            push_us(&mut out, *ns);
        }
        out.push_str("},\"spans\":[");
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"id\":");
            out.push_str(&span.id.to_string());
            out.push_str(",\"parent\":");
            match span.parent {
                Some(p) => out.push_str(&p.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(",\"name\":\"");
            out.push_str(span.name);
            out.push_str("\",\"start_us\":");
            push_us(&mut out, span.start_ns);
            out.push_str(",\"dur_us\":");
            push_us(&mut out, span.duration_ns);
            out.push_str(",\"counters\":{");
            for (j, (name, value)) in span.counters.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(name);
                out.push_str("\":");
                out.push_str(&value.to_string());
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

/// Formats a trace id the way the service exposes it everywhere
/// (`X-Trace-Id` header, access log, slow-query log): 16 hex digits.
pub fn format_trace_id(id: u64) -> String {
    format!("{id:016x}")
}

fn push_us(out: &mut String, ns: u64) {
    // Microseconds with 3 decimals (i.e. nanosecond precision) so that
    // sub-microsecond stages don't collapse to zero in profile output.
    let us = ns / 1_000;
    let frac = ns % 1_000;
    out.push_str(&us.to_string());
    out.push('.');
    out.push_str(&format!("{frac:03}"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn disabled_trace_is_a_noop() {
        let trace = Trace::disabled();
        assert!(!trace.is_enabled());
        assert!(!trace.is_detailed());
        assert_eq!(trace.trace_id(), 0);
        let mut span = trace.span("parse");
        span.counter("tokens", 9);
        assert_eq!(span.id(), None);
        let child = trace.span_under("inner", span.id());
        assert_eq!(child.id(), None);
        drop(child);
        span.finish();
        assert_eq!(
            trace.record_rollup("x", None, Duration::from_micros(5), &[]),
            None
        );
        let report = trace.finish();
        assert_eq!(report.trace_id, 0);
        assert!(report.spans.is_empty());
        assert!(report.stages().is_empty());
    }

    #[test]
    fn spans_record_parents_counters_and_timings() {
        let trace = Trace::new(42);
        assert!(trace.is_enabled());
        assert!(!trace.is_detailed());
        let mut root = trace.span("execute");
        root.counter("solutions", 7);
        let root_id = root.id();
        assert!(root_id.is_some());
        {
            let mut child = trace.span_under("enumeration", root_id);
            child.counter("recursions", 3);
            thread::sleep(Duration::from_millis(1));
        }
        root.finish();
        let report = trace.finish();
        assert_eq!(report.trace_id, 42);
        assert_eq!(report.spans.len(), 2);
        let root = report.spans.iter().find(|s| s.name == "execute").unwrap();
        let child = report
            .spans
            .iter()
            .find(|s| s.name == "enumeration")
            .unwrap();
        assert_eq!(root.parent, None);
        assert_eq!(child.parent, Some(root.id));
        assert_eq!(root.counters, vec![("solutions", 7)]);
        assert_eq!(child.counters, vec![("recursions", 3)]);
        // The child slept ≥ 1ms; the enclosing root must cover it.
        assert!(child.duration_ns >= 1_000_000);
        assert!(root.duration_ns >= child.duration_ns);
        assert!(child.start_ns >= root.start_ns);
        assert!(report.total_ns >= root.duration_ns);
    }

    #[test]
    fn stages_sum_roots_by_name_in_first_seen_order() {
        let trace = Trace::new(1);
        trace.record_rollup("parse", None, Duration::from_micros(10), &[]);
        trace.record_rollup("execute", None, Duration::from_micros(100), &[]);
        // A second root with a repeated name accumulates into the stage.
        trace.record_rollup("parse", None, Duration::from_micros(5), &[]);
        // Children never contribute to stage totals.
        trace.record_rollup("worker", Some(1), Duration::from_micros(90), &[]);
        let report = trace.finish();
        let stages = report.stages();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0], ("parse", 15_000));
        assert_eq!(stages[1], ("execute", 100_000));
        assert_eq!(report.stage_total_ns(), 115_000);
        assert_eq!(report.span_total_ns("worker"), 90_000);
    }

    #[test]
    fn rollup_backdates_start_and_attaches_counters() {
        let trace = Trace::detailed(7);
        assert!(trace.is_detailed());
        thread::sleep(Duration::from_millis(2));
        let id = trace
            .record_rollup(
                "candidate_regions",
                None,
                Duration::from_millis(1),
                &[("regions", 4)],
            )
            .unwrap();
        let report = trace.finish();
        let span = report.spans.iter().find(|s| s.id == id).unwrap();
        assert_eq!(span.duration_ns, 1_000_000);
        assert_eq!(span.counters, vec![("regions", 4)]);
        // Back-dated start: it slept ≥ 2ms before recording a 1ms rollup,
        // so the span starts strictly after the trace did and still ends
        // before the trace finished.
        assert!(span.start_ns > 0);
        assert!(span.start_ns + span.duration_ns <= report.total_ns);
    }

    #[test]
    fn clones_record_into_the_same_tree_across_threads() {
        let trace = Trace::new(3);
        let root = trace.span("enumeration");
        let root_id = root.id();
        thread::scope(|scope| {
            for w in 0..4u64 {
                let worker_trace = trace.clone();
                scope.spawn(move || {
                    let mut span = worker_trace.span_under("worker", root_id);
                    span.counter("worker", w);
                });
            }
        });
        root.finish();
        let report = trace.finish();
        assert_eq!(report.spans.len(), 5);
        assert!(report.span_total_ns("worker") > 0);
        let workers: Vec<_> = report.spans.iter().filter(|s| s.name == "worker").collect();
        assert_eq!(workers.len(), 4);
        assert!(workers.iter().all(|s| s.parent == root_id));
        // Ids are unique and the report is ordered by id.
        let ids: Vec<_> = report.spans.iter().map(|s| s.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn json_shape_is_stable() {
        let trace = Trace::new(0x2a);
        {
            let mut span = trace.span("parse");
            span.counter("tokens", 12);
        }
        let report = trace.finish();
        let json = report.to_json();
        assert!(json.starts_with("{\"trace_id\":\"000000000000002a\""));
        assert!(json.contains("\"total_us\":"));
        assert!(json.contains("\"stages\":{\"parse\":"));
        assert!(json.contains("\"name\":\"parse\""));
        assert!(json.contains("\"counters\":{\"tokens\":12}"));
        assert!(json.ends_with("]}"));
        assert_eq!(format_trace_id(0x2a), "000000000000002a");
    }

    /// Pins the exact member order of every span object. Consumers of
    /// `profile=1`, `/debug/slow` and the journal join on this shape — a
    /// reordered or renamed member is a breaking change, so spell it out.
    #[test]
    fn span_objects_keep_their_member_order_and_nesting() {
        let trace = Trace::detailed(0xbeef);
        {
            let parent = trace.span("execute");
            {
                let mut child = trace.span_under("shard_execute", parent.id());
                child.counter("shard", 3);
                child.counter("rows", 7);
            }
        }
        let report = trace.finish();
        let json = report.to_json();
        assert!(json.starts_with("{\"trace_id\":\"000000000000beef\",\"total_us\":"));

        // Exactly the documented members, in order, in every span object.
        let spans_at = json.find(",\"spans\":[").expect("spans array present");
        let spans = &json[spans_at + ",\"spans\":[".len()..];
        for obj in spans.trim_end_matches("]}").split("},{") {
            let mut pos = 0;
            for key in [
                "\"id\":",
                "\"parent\":",
                "\"name\":",
                "\"start_us\":",
                "\"dur_us\":",
                "\"counters\":",
            ] {
                match obj[pos..].find(key) {
                    Some(at) => pos += at + key.len(),
                    None => panic!("{key} missing or out of order in {obj}"),
                }
            }
        }

        // The child points at its parent and keeps insertion-ordered
        // counters.
        let parent_span = &report.spans[0];
        let child_span = &report.spans[1];
        assert_eq!(parent_span.name, "execute");
        assert_eq!(child_span.parent, Some(parent_span.id));
        assert!(json.contains("\"counters\":{\"shard\":3,\"rows\":7}"));
    }

    #[test]
    fn microsecond_formatting_keeps_nanosecond_precision() {
        let mut out = String::new();
        push_us(&mut out, 1_234_567);
        assert_eq!(out, "1234.567");
        let mut out = String::new();
        push_us(&mut out, 42);
        assert_eq!(out, "0.042");
    }
}
