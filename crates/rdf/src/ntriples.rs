//! A line-oriented N-Triples parser and serializer.
//!
//! N-Triples is the simplest W3C RDF serialization: one triple per line,
//! terms in full (no prefixes), terminated by a dot. It is what the examples
//! and test fixtures use and what [`Dataset`]s round-trip through.
//!
//! The parser is hand written (no external dependency), tolerant of blank
//! lines and `#` comments, and reports precise line numbers on error.

use crate::error::RdfError;
use crate::term::Term;
use crate::triple::Dataset;

/// Parses a complete N-Triples document into a [`Dataset`].
///
/// Duplicate triples are silently deduplicated (set semantics, as RDF
/// prescribes).
pub fn parse_ntriples(input: &str) -> Result<Dataset, RdfError> {
    let mut dataset = Dataset::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (s, p, o) = parse_ntriples_line(line).map_err(|message| RdfError::Parse {
            line: lineno + 1,
            message,
        })?;
        dataset.insert_owned(s, p, o);
    }
    Ok(dataset)
}

/// Parses a single N-Triples statement (without surrounding whitespace)
/// into its three terms. Returns a plain error message; the caller attaches
/// the line number.
pub fn parse_ntriples_line(line: &str) -> Result<(Term, Term, Term), String> {
    let mut cursor = Cursor::new(line);
    let s = cursor.parse_term()?;
    cursor.skip_ws();
    let p = cursor.parse_term()?;
    cursor.skip_ws();
    let o = cursor.parse_term()?;
    cursor.skip_ws();
    cursor.expect('.')?;
    cursor.skip_ws();
    if !cursor.at_end() {
        return Err(format!(
            "unexpected trailing characters: {:?}",
            cursor.rest()
        ));
    }
    if p.is_literal() || p.is_blank() {
        return Err("predicate must be an IRI".to_string());
    }
    if s.is_literal() {
        return Err("subject must not be a literal".to_string());
    }
    Ok((s, p, o))
}

/// Serializes a [`Dataset`] as an N-Triples document (one line per triple,
/// insertion order).
pub fn serialize_ntriples(dataset: &Dataset) -> String {
    let mut out = String::new();
    for triple in dataset.triples.iter() {
        let (s, p, o) = dataset.decode(triple);
        out.push_str(&format!("{s} {p} {o} .\n"));
    }
    out
}

/// A tiny character cursor over one line.
struct Cursor<'a> {
    input: &'a str,
    chars: Vec<char>,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(input: &'a str) -> Self {
        Cursor {
            input,
            chars: input.chars().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn rest(&self) -> String {
        self.chars[self.pos.min(self.chars.len())..]
            .iter()
            .collect()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, expected: char) -> Result<(), String> {
        match self.bump() {
            Some(c) if c == expected => Ok(()),
            Some(c) => Err(format!("expected {expected:?}, found {c:?}")),
            None => Err(format!("expected {expected:?}, found end of line")),
        }
    }

    fn parse_term(&mut self) -> Result<Term, String> {
        self.skip_ws();
        match self.peek() {
            Some('<') => self.parse_iri(),
            Some('_') => self.parse_blank(),
            Some('"') => self.parse_literal(),
            Some(c) => Err(format!("unexpected character {c:?} in {:?}", self.input)),
            None => Err("unexpected end of line while expecting a term".to_string()),
        }
    }

    fn parse_iri(&mut self) -> Result<Term, String> {
        self.expect('<')?;
        let mut iri = String::new();
        loop {
            match self.bump() {
                Some('>') => break,
                Some(c) if c.is_whitespace() => {
                    return Err("whitespace inside IRI".to_string());
                }
                Some(c) => iri.push(c),
                None => return Err("unterminated IRI".to_string()),
            }
        }
        if iri.is_empty() {
            return Err("empty IRI".to_string());
        }
        Ok(Term::Iri(iri))
    }

    fn parse_blank(&mut self) -> Result<Term, String> {
        self.expect('_')?;
        self.expect(':')?;
        let mut label = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '-' || c == '_' || c == '.' {
                label.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        // A trailing '.' belongs to the statement terminator, not the label.
        while label.ends_with('.') {
            label.pop();
            self.pos -= 1;
        }
        if label.is_empty() {
            return Err("empty blank node label".to_string());
        }
        Ok(Term::BlankNode(label))
    }

    fn parse_literal(&mut self) -> Result<Term, String> {
        self.expect('"')?;
        let mut lexical = String::new();
        loop {
            match self.bump() {
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some('n') => lexical.push('\n'),
                    Some('r') => lexical.push('\r'),
                    Some('t') => lexical.push('\t'),
                    Some('"') => lexical.push('"'),
                    Some('\\') => lexical.push('\\'),
                    Some('u') => {
                        let mut hex = String::new();
                        for _ in 0..4 {
                            hex.push(self.bump().ok_or("truncated \\u escape")?);
                        }
                        let cp = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad \\u escape: {hex}"))?;
                        lexical.push(char::from_u32(cp).ok_or("invalid unicode code point")?);
                    }
                    Some(c) => return Err(format!("unknown escape \\{c}")),
                    None => return Err("unterminated escape".to_string()),
                },
                Some(c) => lexical.push(c),
                None => return Err("unterminated literal".to_string()),
            }
        }
        // Optional language tag or datatype.
        match self.peek() {
            Some('@') => {
                self.pos += 1;
                let mut lang = String::new();
                while let Some(c) = self.peek() {
                    if c.is_alphanumeric() || c == '-' {
                        lang.push(c);
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                if lang.is_empty() {
                    return Err("empty language tag".to_string());
                }
                Ok(Term::Literal {
                    lexical,
                    datatype: None,
                    language: Some(lang),
                })
            }
            Some('^') => {
                self.pos += 1;
                self.expect('^')?;
                let dt = self.parse_iri()?;
                match dt {
                    Term::Iri(iri) => Ok(Term::Literal {
                        lexical,
                        datatype: Some(iri),
                        language: None,
                    }),
                    _ => unreachable!("parse_iri only returns IRIs"),
                }
            }
            _ => Ok(Term::Literal {
                lexical,
                datatype: None,
                language: None,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab;

    #[test]
    fn parses_simple_document() {
        let doc = r#"
# a comment
<http://ex.org/alice> <http://ex.org/knows> <http://ex.org/bob> .
<http://ex.org/alice> <http://ex.org/name> "Alice" .

<http://ex.org/bob> <http://ex.org/age> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
"#;
        let ds = parse_ntriples(doc).unwrap();
        assert_eq!(ds.len(), 3);
        // alice, knows, bob, name, "Alice", age, "42"^^xsd:integer
        assert_eq!(ds.dictionary.len(), 7);
    }

    #[test]
    fn parses_blank_nodes_and_lang_literals() {
        let doc = "_:b0 <http://ex.org/says> \"bonjour\"@fr .\n";
        let ds = parse_ntriples(doc).unwrap();
        assert_eq!(ds.len(), 1);
        let t = *ds.triples.iter().next().unwrap();
        let (s, _p, o) = ds.decode(&t);
        assert_eq!(s, Term::blank("b0"));
        assert_eq!(o, Term::lang_literal("bonjour", "fr"));
    }

    #[test]
    fn parses_escapes_in_literals() {
        let doc = r#"<http://s> <http://p> "line1\nline2 \"quoted\" \\ tab\t" ."#;
        let ds = parse_ntriples(doc).unwrap();
        let t = *ds.triples.iter().next().unwrap();
        let (_, _, o) = ds.decode(&t);
        assert_eq!(o.as_literal().unwrap(), "line1\nline2 \"quoted\" \\ tab\t");
    }

    #[test]
    fn parses_unicode_escape() {
        let doc = r#"<http://s> <http://p> "été" ."#;
        let ds = parse_ntriples(doc).unwrap();
        let t = *ds.triples.iter().next().unwrap();
        let (_, _, o) = ds.decode(&t);
        assert_eq!(o.as_literal().unwrap(), "été");
    }

    #[test]
    fn rejects_missing_dot() {
        let doc = "<http://s> <http://p> <http://o>";
        let err = parse_ntriples(doc).unwrap_err();
        assert!(matches!(err, RdfError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_literal_subject_and_predicate() {
        assert!(parse_ntriples("\"lit\" <http://p> <http://o> .").is_err());
        assert!(parse_ntriples("<http://s> \"lit\" <http://o> .").is_err());
        assert!(parse_ntriples("<http://s> _:b <http://o> .").is_err());
    }

    #[test]
    fn rejects_garbage_and_reports_line_number() {
        let doc = "<http://s> <http://p> <http://o> .\nthis is not a triple\n";
        match parse_ntriples(doc) {
            Err(RdfError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unterminated_iri_and_literal() {
        assert!(parse_ntriples("<http://s <http://p> <http://o> .").is_err());
        assert!(parse_ntriples("<http://s> <http://p> \"oops .").is_err());
    }

    #[test]
    fn serialization_round_trips() {
        let mut ds = Dataset::new();
        ds.insert_iris("http://ex.org/a", vocab::RDF_TYPE, "http://ex.org/T");
        ds.insert(
            &Term::iri("http://ex.org/a"),
            &Term::iri("http://ex.org/name"),
            &Term::literal("Ann \"the\" admin\n"),
        );
        ds.insert(
            &Term::iri("http://ex.org/a"),
            &Term::iri("http://ex.org/age"),
            &Term::typed_literal("39", vocab::XSD_INTEGER),
        );
        let text = serialize_ntriples(&ds);
        let back = parse_ntriples(&text).unwrap();
        assert_eq!(back.len(), ds.len());
        // Every original triple must exist in the re-parsed dataset (compare decoded).
        let decoded_back: std::collections::HashSet<_> =
            back.triples.iter().map(|t| back.decode(t)).collect();
        for t in ds.triples.iter() {
            assert!(decoded_back.contains(&ds.decode(t)));
        }
    }

    #[test]
    fn whitespace_variations_are_tolerated() {
        let doc = "   <http://s>\t\t<http://p>   \"x\"   .   ";
        let ds = parse_ntriples(doc).unwrap();
        assert_eq!(ds.len(), 1);
    }
}
