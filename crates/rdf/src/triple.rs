//! Encoded triples and the in-memory triple store.
//!
//! A [`TripleStore`] holds dictionary-encoded triples with duplicate
//! elimination. Together with its [`Dictionary`] it forms a [`Dataset`],
//! which is the unit every downstream component consumes: the graph builder,
//! the transformations, the baseline engines and the dataset generators all
//! exchange `Dataset`s.

use crate::dictionary::{Dictionary, TermId};
use crate::term::Term;
use crate::vocab;
use std::collections::HashSet;
use turbohom_storage::{FlatVec, Pod, SectionCursor, SnapshotError, SnapshotWriter};

/// Snapshot section tag (component 0x02).
const TAG_TRIPLES: u64 = 0x0201;

/// A dictionary-encoded RDF triple `(subject, predicate, object)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(C)]
pub struct Triple {
    /// Subject id.
    pub s: TermId,
    /// Predicate id.
    pub p: TermId,
    /// Object id.
    pub o: TermId,
}

// Safety: repr(C) of three repr(transparent) u64 ids — no padding, no niches.
unsafe impl Pod for Triple {}

impl Triple {
    /// Creates a new triple.
    pub fn new(s: TermId, p: TermId, o: TermId) -> Self {
        Triple { s, p, o }
    }
}

/// An append-only, deduplicated collection of encoded triples.
///
/// The triples live in a [`FlatVec`], so a store loaded from a snapshot
/// reads them in place. The dedup set exists only while the store is being
/// populated; a snapshot-backed store materializes it lazily on the first
/// mutation (snapshots are written deduplicated).
#[derive(Debug, Default, Clone)]
pub struct TripleStore {
    triples: FlatVec<Triple>,
    seen: HashSet<Triple>,
}

impl TripleStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store with capacity for `capacity` triples.
    pub fn with_capacity(capacity: usize) -> Self {
        TripleStore {
            triples: Vec::with_capacity(capacity).into(),
            seen: HashSet::with_capacity(capacity),
        }
    }

    /// Inserts a triple. Returns `true` if it was not already present.
    pub fn insert(&mut self, triple: Triple) -> bool {
        if self.seen.len() != self.triples.len() {
            // Snapshot-backed store: build the dedup set on first mutation.
            self.seen = self.triples.iter().copied().collect();
        }
        if self.seen.insert(triple) {
            self.triples.to_mut().push(triple);
            true
        } else {
            false
        }
    }

    /// Returns `true` if the exact triple is present.
    pub fn contains(&self, triple: &Triple) -> bool {
        if self.seen.len() == self.triples.len() {
            self.seen.contains(triple)
        } else {
            // Snapshot-backed store before any mutation: no hash set yet.
            self.triples.iter().any(|t| t == triple)
        }
    }

    /// Number of distinct triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Returns `true` if the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Iterates over the triples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Triple> {
        self.triples.iter()
    }

    /// Returns the triples as a slice (insertion order).
    pub fn as_slice(&self) -> &[Triple] {
        &self.triples
    }

    /// Serializes the store as a snapshot section.
    pub fn write_sections(&self, w: &mut SnapshotWriter) {
        w.section(TAG_TRIPLES, self.as_slice());
    }

    /// Reconstructs a store reading its triples in place from a snapshot.
    pub fn read_sections(cur: &mut SectionCursor<'_>) -> Result<Self, SnapshotError> {
        Ok(TripleStore {
            triples: cur.next_section(TAG_TRIPLES)?,
            seen: HashSet::new(),
        })
    }
}

impl<'a> IntoIterator for &'a TripleStore {
    type Item = &'a Triple;
    type IntoIter = std::slice::Iter<'a, Triple>;

    fn into_iter(self) -> Self::IntoIter {
        self.triples.iter()
    }
}

impl FromIterator<Triple> for TripleStore {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        let mut store = TripleStore::new();
        for t in iter {
            store.insert(t);
        }
        store
    }
}

/// A dictionary plus the triples encoded against it.
///
/// This is the decoded↔encoded boundary of the system: generators and parsers
/// produce `Dataset`s, everything downstream consumes them.
#[derive(Debug, Default, Clone)]
pub struct Dataset {
    /// The term dictionary.
    pub dictionary: Dictionary,
    /// The encoded triples.
    pub triples: TripleStore,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a decoded `(s, p, o)` triple, encoding the terms as needed.
    /// Returns `true` if the triple was new.
    pub fn insert(&mut self, s: &Term, p: &Term, o: &Term) -> bool {
        let s = self.dictionary.encode(s);
        let p = self.dictionary.encode(p);
        let o = self.dictionary.encode(o);
        self.triples.insert(Triple::new(s, p, o))
    }

    /// Inserts a decoded triple by value.
    pub fn insert_owned(&mut self, s: Term, p: Term, o: Term) -> bool {
        let s = self.dictionary.encode_owned(s);
        let p = self.dictionary.encode_owned(p);
        let o = self.dictionary.encode_owned(o);
        self.triples.insert(Triple::new(s, p, o))
    }

    /// Convenience for tests and generators: inserts a triple of IRIs.
    pub fn insert_iris(&mut self, s: &str, p: &str, o: &str) -> bool {
        self.insert_owned(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    /// Number of distinct triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Returns `true` if the dataset holds no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Returns the id of `rdf:type` if it appears in the data.
    pub fn rdf_type_id(&self) -> Option<TermId> {
        self.dictionary.id_of_iri(vocab::RDF_TYPE)
    }

    /// Returns the id of `rdfs:subClassOf` if it appears in the data.
    pub fn subclassof_id(&self) -> Option<TermId> {
        self.dictionary.id_of_iri(vocab::RDFS_SUBCLASSOF)
    }

    /// Counts the triples whose predicate is `pred`.
    pub fn count_predicate(&self, pred: TermId) -> usize {
        self.triples.iter().filter(|t| t.p == pred).count()
    }

    /// Returns the set of distinct subjects and objects (entity ids), i.e.
    /// the vertices of the direct transformation.
    pub fn entity_ids(&self) -> HashSet<TermId> {
        let mut ids = HashSet::new();
        for t in self.triples.iter() {
            ids.insert(t.s);
            ids.insert(t.o);
        }
        ids
    }

    /// Returns the set of distinct predicates.
    pub fn predicate_ids(&self) -> HashSet<TermId> {
        self.triples.iter().map(|t| t.p).collect()
    }

    /// Decodes a triple back into terms. Panics if the ids are foreign to
    /// this dataset's dictionary (which would be a logic error).
    pub fn decode(&self, triple: &Triple) -> (Term, Term, Term) {
        (
            self.dictionary
                .term(triple.s)
                .expect("subject id not in dictionary"),
            self.dictionary
                .term(triple.p)
                .expect("predicate id not in dictionary"),
            self.dictionary
                .term(triple.o)
                .expect("object id not in dictionary"),
        )
    }

    /// Serializes dictionary and triples as snapshot sections.
    pub fn write_sections(&self, w: &mut SnapshotWriter) {
        self.dictionary.write_sections(w);
        self.triples.write_sections(w);
    }

    /// Reconstructs a dataset from snapshot sections, validating that every
    /// triple's ids resolve against the dictionary.
    pub fn read_sections(cur: &mut SectionCursor<'_>) -> Result<Self, SnapshotError> {
        let dictionary = Dictionary::read_sections(cur)?;
        let triples = TripleStore::read_sections(cur)?;
        let num_terms = dictionary.len() as u64;
        for t in triples.iter() {
            if t.s.0 >= num_terms || t.p.0 >= num_terms || t.o.0 >= num_terms {
                return Err(SnapshotError::Malformed(
                    "triple references a term id outside the dictionary".into(),
                ));
            }
        }
        Ok(Dataset {
            dictionary,
            triples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> TermId {
        TermId(n)
    }

    #[test]
    fn store_deduplicates() {
        let mut s = TripleStore::new();
        assert!(s.insert(Triple::new(id(0), id(1), id(2))));
        assert!(!s.insert(Triple::new(id(0), id(1), id(2))));
        assert!(s.insert(Triple::new(id(0), id(1), id(3))));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn store_preserves_insertion_order() {
        let mut s = TripleStore::new();
        s.insert(Triple::new(id(2), id(0), id(1)));
        s.insert(Triple::new(id(0), id(0), id(1)));
        s.insert(Triple::new(id(1), id(0), id(1)));
        let subjects: Vec<u64> = s.iter().map(|t| t.s.0).collect();
        assert_eq!(subjects, vec![2, 0, 1]);
    }

    #[test]
    fn store_from_iterator() {
        let s: TripleStore = (0..5)
            .map(|i| Triple::new(id(i), id(100), id(i + 1)))
            .collect();
        assert_eq!(s.len(), 5);
        assert!(s.contains(&Triple::new(id(3), id(100), id(4))));
    }

    #[test]
    fn dataset_insert_encodes_terms_consistently() {
        let mut d = Dataset::new();
        assert!(d.insert_iris("http://a", "http://p", "http://b"));
        assert!(d.insert_iris("http://b", "http://p", "http://a"));
        assert!(!d.insert_iris("http://a", "http://p", "http://b"));
        assert_eq!(d.len(), 2);
        // a, p, b → three distinct terms only.
        assert_eq!(d.dictionary.len(), 3);
    }

    #[test]
    fn dataset_entity_and_predicate_sets() {
        let mut d = Dataset::new();
        d.insert_iris("http://a", "http://p", "http://b");
        d.insert_iris("http://a", "http://q", "http://c");
        let entities = d.entity_ids();
        let predicates = d.predicate_ids();
        assert_eq!(entities.len(), 3);
        assert_eq!(predicates.len(), 2);
        // Predicates are not entities here.
        for p in &predicates {
            assert!(!entities.contains(p));
        }
    }

    #[test]
    fn dataset_decode_round_trips() {
        let mut d = Dataset::new();
        d.insert(
            &Term::iri("http://s"),
            &Term::iri("http://p"),
            &Term::literal("o"),
        );
        let t = *d.triples.iter().next().unwrap();
        let (s, p, o) = d.decode(&t);
        assert_eq!(s, Term::iri("http://s"));
        assert_eq!(p, Term::iri("http://p"));
        assert_eq!(o, Term::literal("o"));
    }

    #[test]
    fn dataset_snapshot_round_trip_and_mutation_after_load() {
        let mut d = Dataset::new();
        d.insert_iris("http://a", "http://p", "http://b");
        d.insert_iris("http://b", "http://p", "http://c");
        d.insert(
            &Term::iri("http://a"),
            &Term::iri("http://q"),
            &Term::literal("x"),
        );
        let mut w = turbohom_storage::SnapshotWriter::new();
        d.write_sections(&mut w);
        let path =
            std::env::temp_dir().join(format!("turbohom-dataset-{}.snap", std::process::id()));
        w.write_to(&path).unwrap();
        let snap = turbohom_storage::Snapshot::open(&path).unwrap();
        let mut loaded = Dataset::read_sections(&mut snap.cursor()).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(loaded.len(), d.len());
        assert_eq!(loaded.triples.as_slice(), d.triples.as_slice());
        for t in d.triples.iter() {
            assert!(loaded.triples.contains(t));
            assert_eq!(loaded.decode(t), d.decode(t));
        }
        // Duplicate insert after load is still rejected; a new one lands.
        assert!(!loaded.insert_iris("http://a", "http://p", "http://b"));
        assert!(loaded.insert_iris("http://c", "http://p", "http://a"));
        assert_eq!(loaded.len(), d.len() + 1);
    }

    #[test]
    fn rdf_type_id_present_only_when_used() {
        let mut d = Dataset::new();
        assert!(d.rdf_type_id().is_none());
        d.insert_iris("http://x", vocab::RDF_TYPE, "http://C");
        assert!(d.rdf_type_id().is_some());
        assert_eq!(d.count_predicate(d.rdf_type_id().unwrap()), 1);
    }
}
