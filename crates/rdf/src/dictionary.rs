//! Dictionary encoding between [`Term`]s and dense integer [`TermId`]s.
//!
//! All engines in this repository (TurboHOM++, the merge-join baseline, the
//! hash-join baseline) operate exclusively over `TermId`s, which is the same
//! design decision RDF-3X and the paper's system make: the dictionary is
//! populated once at load time and query execution never touches strings.
//! This also lets the benchmark harness exclude "dictionary look-up time"
//! from elapsed times, as Section 7.1 of the paper prescribes.
//!
//! The dictionary has two physical representations behind one API:
//!
//! * **Owned** — a `HashMap` + `Vec<Term>` pair, used while loading and
//!   encoding new terms.
//! * **View** — three flat arrays read in place from a snapshot: a UTF-8
//!   string arena, fixed-width [`TermRecord`]s pointing into it, and a
//!   key-sorted id permutation for binary-search lookups. Nothing is copied
//!   at load time; `encode` on a view transparently converts to owned first
//!   (copy-on-write).

use crate::error::RdfError;
use crate::term::Term;
use std::borrow::Cow;
use std::collections::HashMap;
use turbohom_storage::{FlatVec, Pod, SectionCursor, SnapshotError, SnapshotWriter};

/// A dense identifier for a dictionary-encoded [`Term`].
///
/// Ids are assigned sequentially starting from 0 in insertion order, so they
/// double as indices into side arrays (the labeled graph uses them to index
/// vertex metadata directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct TermId(pub u64);

// Safety: repr(transparent) over u64 — no padding, no niches.
unsafe impl Pod for TermId {}

impl TermId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TermId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Snapshot section tags (component 0x01).
const TAG_DICT_ARENA: u64 = 0x0101;
const TAG_DICT_RECORDS: u64 = 0x0102;
const TAG_DICT_SORTED: u64 = 0x0103;

/// Term kind codes stored in [`TermRecord::kind`].
const KIND_IRI: u32 = 0;
const KIND_BLANK: u32 = 1;
const KIND_PLAIN: u32 = 2;
const KIND_TYPED: u32 = 3;
const KIND_LANG: u32 = 4;
/// Literal carrying both a datatype and a language tag (publicly
/// constructible even though `validate` rejects it, so the snapshot must
/// round-trip it); `extra` stores `datatype \0 language`.
const KIND_TYPED_LANG: u32 = 5;

/// Fixed-width description of one term: a kind code plus two `(offset, len)`
/// ranges into the string arena (lexical form and the kind-dependent extra
/// string — datatype IRI and/or language tag).
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TermRecord {
    kind: u32,
    reserved: u32,
    lex_off: u64,
    lex_len: u64,
    extra_off: u64,
    extra_len: u64,
}

// Safety: repr(C), all fields u32/u64 with no padding (4+4 then 8-aligned).
unsafe impl Pod for TermRecord {}

/// Decomposes a term into its snapshot key: `(kind, lexical, extra)`.
fn term_key(term: &Term) -> (u32, &str, Cow<'_, str>) {
    match term {
        Term::Iri(s) => (KIND_IRI, s, Cow::Borrowed("")),
        Term::BlankNode(s) => (KIND_BLANK, s, Cow::Borrowed("")),
        Term::Literal {
            lexical,
            datatype,
            language,
        } => match (datatype, language) {
            (None, None) => (KIND_PLAIN, lexical, Cow::Borrowed("")),
            (Some(dt), None) => (KIND_TYPED, lexical, Cow::Borrowed(dt.as_str())),
            (None, Some(l)) => (KIND_LANG, lexical, Cow::Borrowed(l.as_str())),
            (Some(dt), Some(l)) => (KIND_TYPED_LANG, lexical, Cow::Owned(format!("{dt}\0{l}"))),
        },
    }
}

/// Rebuilds a term from its stored key parts.
fn term_from_parts(kind: u32, lex: &[u8], extra: &[u8]) -> Term {
    let lex = String::from_utf8_lossy(lex).into_owned();
    let extra_str = String::from_utf8_lossy(extra);
    match kind {
        KIND_IRI => Term::Iri(lex),
        KIND_BLANK => Term::BlankNode(lex),
        KIND_PLAIN => Term::Literal {
            lexical: lex,
            datatype: None,
            language: None,
        },
        KIND_TYPED => Term::Literal {
            lexical: lex,
            datatype: Some(extra_str.into_owned()),
            language: None,
        },
        KIND_LANG => Term::Literal {
            lexical: lex,
            datatype: None,
            language: Some(extra_str.into_owned()),
        },
        _ => {
            let (dt, lang) = match extra_str.split_once('\0') {
                Some((d, l)) => (d.to_owned(), l.to_owned()),
                None => (extra_str.into_owned(), String::new()),
            };
            Term::Literal {
                lexical: lex,
                datatype: Some(dt),
                language: Some(lang),
            }
        }
    }
}

fn record_key<'a>(arena: &'a [u8], r: &TermRecord) -> (u32, &'a [u8], &'a [u8]) {
    (
        r.kind,
        &arena[r.lex_off as usize..(r.lex_off + r.lex_len) as usize],
        &arena[r.extra_off as usize..(r.extra_off + r.extra_len) as usize],
    )
}

/// The zero-copy snapshot-backed representation.
#[derive(Debug, Clone)]
struct ViewRepr {
    arena: FlatVec<u8>,
    records: FlatVec<TermRecord>,
    /// Term ids sorted by `(kind, lexical, extra)` for binary-search lookup.
    sorted: FlatVec<u64>,
}

impl ViewRepr {
    fn lookup_key(&self, kind: u32, lex: &[u8], extra: &[u8]) -> Option<TermId> {
        let target = (kind, lex, extra);
        self.sorted
            .binary_search_by(|&id| {
                record_key(&self.arena, &self.records[id as usize]).cmp(&target)
            })
            .ok()
            .map(|pos| TermId(self.sorted[pos]))
    }

    fn lookup(&self, term: &Term) -> Option<TermId> {
        let (kind, lex, extra) = term_key(term);
        self.lookup_key(kind, lex.as_bytes(), extra.as_bytes())
    }

    fn term(&self, index: usize) -> Term {
        let (kind, lex, extra) = record_key(&self.arena, &self.records[index]);
        term_from_parts(kind, lex, extra)
    }
}

#[derive(Debug, Clone)]
enum Repr {
    Owned {
        term_to_id: HashMap<Term, TermId>,
        id_to_term: Vec<Term>,
    },
    View(ViewRepr),
}

/// A bidirectional mapping between [`Term`]s and [`TermId`]s.
///
/// Encoding is insert-or-get: encoding the same term twice yields the same
/// id. Decoding is O(1) via a dense array in both representations; `id_of`
/// is O(1) on the owned representation and O(log n) (zero-copy binary
/// search) on a snapshot view.
#[derive(Debug, Clone)]
pub struct Dictionary {
    repr: Repr,
}

impl Default for Dictionary {
    fn default() -> Self {
        Dictionary {
            repr: Repr::Owned {
                term_to_id: HashMap::new(),
                id_to_term: Vec::new(),
            },
        }
    }
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty dictionary with capacity for `capacity` terms.
    pub fn with_capacity(capacity: usize) -> Self {
        Dictionary {
            repr: Repr::Owned {
                term_to_id: HashMap::with_capacity(capacity),
                id_to_term: Vec::with_capacity(capacity),
            },
        }
    }

    /// Returns `true` if this dictionary reads from a snapshot view (its
    /// strings live in the snapshot's arena, not on the heap).
    pub fn is_view(&self) -> bool {
        matches!(self.repr, Repr::View(_))
    }

    /// Converts a view into the owned representation (copy-on-write step
    /// before any mutation).
    fn make_owned(&mut self) {
        if let Repr::View(v) = &self.repr {
            let n = v.records.len();
            let mut id_to_term = Vec::with_capacity(n);
            let mut term_to_id = HashMap::with_capacity(n);
            for i in 0..n {
                let t = v.term(i);
                term_to_id.insert(t.clone(), TermId(i as u64));
                id_to_term.push(t);
            }
            self.repr = Repr::Owned {
                term_to_id,
                id_to_term,
            };
        }
    }

    /// Returns the id for `term`, inserting it if it is not yet present.
    pub fn encode(&mut self, term: &Term) -> TermId {
        self.make_owned();
        let Repr::Owned {
            term_to_id,
            id_to_term,
        } = &mut self.repr
        else {
            unreachable!("make_owned converted the representation");
        };
        if let Some(&id) = term_to_id.get(term) {
            return id;
        }
        let id = TermId(id_to_term.len() as u64);
        id_to_term.push(term.clone());
        term_to_id.insert(term.clone(), id);
        id
    }

    /// Returns the id for `term`, inserting it if it is not yet present
    /// (by-value variant that avoids a clone when the term is newly inserted).
    pub fn encode_owned(&mut self, term: Term) -> TermId {
        self.make_owned();
        let Repr::Owned {
            term_to_id,
            id_to_term,
        } = &mut self.repr
        else {
            unreachable!("make_owned converted the representation");
        };
        if let Some(&id) = term_to_id.get(&term) {
            return id;
        }
        let id = TermId(id_to_term.len() as u64);
        id_to_term.push(term.clone());
        term_to_id.insert(term, id);
        id
    }

    /// Convenience: encodes an IRI string.
    pub fn encode_iri(&mut self, iri: impl Into<String>) -> TermId {
        self.encode_owned(Term::Iri(iri.into()))
    }

    /// Returns the id of `term` if it has been encoded before.
    pub fn id_of(&self, term: &Term) -> Option<TermId> {
        match &self.repr {
            Repr::Owned { term_to_id, .. } => term_to_id.get(term).copied(),
            Repr::View(v) => v.lookup(term),
        }
    }

    /// Returns the id of the IRI `iri` if it has been encoded before.
    pub fn id_of_iri(&self, iri: &str) -> Option<TermId> {
        match &self.repr {
            Repr::Owned { term_to_id, .. } => term_to_id.get(&Term::Iri(iri.to_owned())).copied(),
            // Zero-allocation lookup straight against the arena bytes.
            Repr::View(v) => v.lookup_key(KIND_IRI, iri.as_bytes(), b""),
        }
    }

    /// Returns the term for `id`, if `id` is valid.
    pub fn term(&self, id: TermId) -> Option<Term> {
        match &self.repr {
            Repr::Owned { id_to_term, .. } => id_to_term.get(id.index()).cloned(),
            Repr::View(v) => (id.index() < v.records.len()).then(|| v.term(id.index())),
        }
    }

    /// Returns the term for `id` or an [`RdfError::UnknownTermId`].
    pub fn term_checked(&self, id: TermId) -> Result<Term, RdfError> {
        self.term(id).ok_or(RdfError::UnknownTermId(id.0))
    }

    /// The number of distinct terms encoded.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Owned { id_to_term, .. } => id_to_term.len(),
            Repr::View(v) => v.records.len(),
        }
    }

    /// Returns `true` if no terms have been encoded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, Term)> + '_ {
        (0..self.len() as u64).map(move |i| {
            let id = TermId(i);
            (id, self.term(id).expect("ids below len are valid"))
        })
    }

    /// Returns a human-readable rendering of `id` (falls back to the raw id
    /// when unknown); handy for diagnostics and result printing.
    pub fn render(&self, id: TermId) -> String {
        match self.term(id) {
            Some(t) => t.to_string(),
            None => format!("{id}"),
        }
    }

    /// Serializes the dictionary as snapshot sections (arena, records,
    /// sorted permutation) — see `docs/STORAGE.md`.
    pub fn write_sections(&self, w: &mut SnapshotWriter) {
        let n = self.len();
        let mut arena: Vec<u8> = Vec::new();
        let mut records: Vec<TermRecord> = Vec::with_capacity(n);
        for i in 0..n as u64 {
            let term = self.term(TermId(i)).expect("ids below len are valid");
            let (kind, lex, extra) = term_key(&term);
            let lex_off = arena.len() as u64;
            arena.extend_from_slice(lex.as_bytes());
            let extra_off = arena.len() as u64;
            arena.extend_from_slice(extra.as_bytes());
            records.push(TermRecord {
                kind,
                reserved: 0,
                lex_off,
                lex_len: lex.len() as u64,
                extra_off,
                extra_len: extra.len() as u64,
            });
        }
        let mut sorted: Vec<u64> = (0..n as u64).collect();
        sorted.sort_unstable_by(|&a, &b| {
            record_key(&arena, &records[a as usize]).cmp(&record_key(&arena, &records[b as usize]))
        });
        w.section(TAG_DICT_ARENA, &arena);
        w.section(TAG_DICT_RECORDS, &records);
        w.section(TAG_DICT_SORTED, &sorted);
    }

    /// Reconstructs a zero-copy dictionary view from its snapshot sections,
    /// validating every record's arena ranges so later reads cannot panic.
    pub fn read_sections(cur: &mut SectionCursor<'_>) -> Result<Self, SnapshotError> {
        let arena: FlatVec<u8> = cur.next_section(TAG_DICT_ARENA)?;
        let records: FlatVec<TermRecord> = cur.next_section(TAG_DICT_RECORDS)?;
        let sorted: FlatVec<u64> = cur.next_section(TAG_DICT_SORTED)?;
        if sorted.len() != records.len() {
            return Err(SnapshotError::Malformed(
                "dictionary sort permutation length mismatch".into(),
            ));
        }
        let arena_len = arena.len() as u64;
        for (i, r) in records.iter().enumerate() {
            let lex_ok = r
                .lex_off
                .checked_add(r.lex_len)
                .is_some_and(|end| end <= arena_len);
            let extra_ok = r
                .extra_off
                .checked_add(r.extra_len)
                .is_some_and(|end| end <= arena_len);
            if !lex_ok || !extra_ok || r.kind > KIND_TYPED_LANG {
                return Err(SnapshotError::Malformed(format!(
                    "dictionary record {i} is out of bounds or has a bad kind"
                )));
            }
        }
        let n = records.len() as u64;
        if sorted.iter().any(|&id| id >= n) {
            return Err(SnapshotError::Malformed(
                "dictionary sort permutation references an invalid id".into(),
            ));
        }
        Ok(Dictionary {
            repr: Repr::View(ViewRepr {
                arena,
                records,
                sorted,
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbohom_storage::Snapshot;

    #[test]
    fn encode_is_idempotent() {
        let mut d = Dictionary::new();
        let a1 = d.encode(&Term::iri("http://ex.org/a"));
        let a2 = d.encode(&Term::iri("http://ex.org/a"));
        assert_eq!(a1, a2);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_sequential() {
        let mut d = Dictionary::new();
        let ids: Vec<TermId> = (0..10)
            .map(|i| d.encode(&Term::iri(format!("http://ex.org/{i}"))))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.0, i as u64);
        }
        assert_eq!(d.len(), 10);
    }

    #[test]
    fn decode_round_trips() {
        let mut d = Dictionary::new();
        let terms = [
            Term::iri("http://ex.org/a"),
            Term::literal("hello"),
            Term::typed_literal("3", crate::vocab::XSD_INTEGER),
            Term::blank("b0"),
            Term::lang_literal("chat", "fr"),
        ];
        let ids: Vec<TermId> = terms.iter().map(|t| d.encode(t)).collect();
        for (t, id) in terms.iter().zip(&ids) {
            assert_eq!(d.term(*id).as_ref(), Some(t));
            assert_eq!(d.id_of(t), Some(*id));
        }
    }

    #[test]
    fn distinct_literal_shapes_get_distinct_ids() {
        let mut d = Dictionary::new();
        let plain = d.encode(&Term::literal("42"));
        let typed = d.encode(&Term::typed_literal("42", crate::vocab::XSD_INTEGER));
        let iri = d.encode(&Term::iri("42"));
        assert_ne!(plain, typed);
        assert_ne!(plain, iri);
        assert_ne!(typed, iri);
    }

    #[test]
    fn unknown_lookups_fail_gracefully() {
        let d = Dictionary::new();
        assert!(d.term(TermId(0)).is_none());
        assert!(d.id_of(&Term::iri("http://nope")).is_none());
        assert!(matches!(
            d.term_checked(TermId(9)),
            Err(RdfError::UnknownTermId(9))
        ));
        assert_eq!(d.render(TermId(3)), "#3");
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut d = Dictionary::new();
        d.encode_iri("http://a");
        d.encode_iri("http://b");
        d.encode_iri("http://c");
        let collected: Vec<u64> = d.iter().map(|(id, _)| id.0).collect();
        assert_eq!(collected, vec![0, 1, 2]);
    }

    #[test]
    fn id_of_iri_matches_encode_iri() {
        let mut d = Dictionary::new();
        let id = d.encode_iri("http://ex.org/x");
        assert_eq!(d.id_of_iri("http://ex.org/x"), Some(id));
        assert_eq!(d.id_of_iri("http://ex.org/y"), None);
    }

    fn sample_terms() -> Vec<Term> {
        vec![
            Term::iri("http://ex.org/a"),
            Term::iri("http://ex.org/b"),
            Term::blank("b0"),
            Term::literal("plain"),
            Term::typed_literal("3", crate::vocab::XSD_INTEGER),
            Term::lang_literal("chat", "fr"),
            // Datatype + language together: rejected by validate() but
            // publicly constructible, so the snapshot must round-trip it.
            Term::Literal {
                lexical: "both".to_owned(),
                datatype: Some("http://ex.org/dt".to_owned()),
                language: Some("en".to_owned()),
            },
            Term::literal(""),
        ]
    }

    fn snapshot_view(d: &Dictionary, name: &str) -> Dictionary {
        let mut w = SnapshotWriter::new();
        d.write_sections(&mut w);
        let path =
            std::env::temp_dir().join(format!("turbohom-dict-{}-{name}.snap", std::process::id()));
        w.write_to(&path).unwrap();
        let snap = Snapshot::open(&path).unwrap();
        let view = Dictionary::read_sections(&mut snap.cursor()).unwrap();
        std::fs::remove_file(&path).unwrap();
        // The file is unlinked but the mapping stays valid until dropped.
        view
    }

    #[test]
    fn snapshot_round_trip_preserves_ids_and_lookups() {
        let mut d = Dictionary::new();
        let terms = sample_terms();
        let ids: Vec<TermId> = terms.iter().map(|t| d.encode(t)).collect();
        let view = snapshot_view(&d, "roundtrip");
        assert!(view.is_view());
        assert_eq!(view.len(), d.len());
        for (t, id) in terms.iter().zip(&ids) {
            assert_eq!(view.term(*id).as_ref(), Some(t), "term {t}");
            assert_eq!(view.id_of(t), Some(*id), "id_of {t}");
        }
        assert_eq!(view.id_of_iri("http://ex.org/a"), Some(ids[0]));
        assert_eq!(view.id_of_iri("http://ex.org/zzz"), None);
        assert!(view.id_of(&Term::literal("missing")).is_none());
        assert!(view.term(TermId(terms.len() as u64)).is_none());
        let collected: Vec<Term> = view.iter().map(|(_, t)| t).collect();
        assert_eq!(collected, terms);
    }

    #[test]
    fn encode_on_a_view_copies_on_write() {
        let mut d = Dictionary::new();
        for t in sample_terms() {
            d.encode_owned(t);
        }
        let mut view = snapshot_view(&d, "cow");
        let before = view.len();
        // Re-encoding an existing term must not change anything.
        assert!(view.encode(&Term::literal("plain")).index() < before);
        let new_id = view.encode_iri("http://ex.org/new");
        assert_eq!(new_id.index(), before);
        assert!(!view.is_view());
        assert_eq!(view.term(new_id), Some(Term::iri("http://ex.org/new")));
    }
}
