//! Dictionary encoding between [`Term`]s and dense integer [`TermId`]s.
//!
//! All engines in this repository (TurboHOM++, the merge-join baseline, the
//! hash-join baseline) operate exclusively over `TermId`s, which is the same
//! design decision RDF-3X and the paper's system make: the dictionary is
//! populated once at load time and query execution never touches strings.
//! This also lets the benchmark harness exclude "dictionary look-up time"
//! from elapsed times, as Section 7.1 of the paper prescribes.

use crate::error::RdfError;
use crate::term::Term;
use std::collections::HashMap;

/// A dense identifier for a dictionary-encoded [`Term`].
///
/// Ids are assigned sequentially starting from 0 in insertion order, so they
/// double as indices into side arrays (the labeled graph uses them to index
/// vertex metadata directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u64);

impl TermId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TermId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A bidirectional mapping between [`Term`]s and [`TermId`]s.
///
/// Encoding is insert-or-get: encoding the same term twice yields the same
/// id. Decoding is O(1) via a dense vector.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    term_to_id: HashMap<Term, TermId>,
    id_to_term: Vec<Term>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty dictionary with capacity for `capacity` terms.
    pub fn with_capacity(capacity: usize) -> Self {
        Dictionary {
            term_to_id: HashMap::with_capacity(capacity),
            id_to_term: Vec::with_capacity(capacity),
        }
    }

    /// Returns the id for `term`, inserting it if it is not yet present.
    pub fn encode(&mut self, term: &Term) -> TermId {
        if let Some(&id) = self.term_to_id.get(term) {
            return id;
        }
        let id = TermId(self.id_to_term.len() as u64);
        self.id_to_term.push(term.clone());
        self.term_to_id.insert(term.clone(), id);
        id
    }

    /// Returns the id for `term`, inserting it if it is not yet present
    /// (by-value variant that avoids a clone when the term is newly inserted).
    pub fn encode_owned(&mut self, term: Term) -> TermId {
        if let Some(&id) = self.term_to_id.get(&term) {
            return id;
        }
        let id = TermId(self.id_to_term.len() as u64);
        self.id_to_term.push(term.clone());
        self.term_to_id.insert(term, id);
        id
    }

    /// Convenience: encodes an IRI string.
    pub fn encode_iri(&mut self, iri: impl Into<String>) -> TermId {
        self.encode_owned(Term::Iri(iri.into()))
    }

    /// Returns the id of `term` if it has been encoded before.
    pub fn id_of(&self, term: &Term) -> Option<TermId> {
        self.term_to_id.get(term).copied()
    }

    /// Returns the id of the IRI `iri` if it has been encoded before.
    pub fn id_of_iri(&self, iri: &str) -> Option<TermId> {
        // Avoid allocating a Term for the common lookup path.
        self.term_to_id.get(&Term::Iri(iri.to_owned())).copied()
    }

    /// Returns the term for `id`, if `id` is valid.
    pub fn term(&self, id: TermId) -> Option<&Term> {
        self.id_to_term.get(id.index())
    }

    /// Returns the term for `id` or an [`RdfError::UnknownTermId`].
    pub fn term_checked(&self, id: TermId) -> Result<&Term, RdfError> {
        self.term(id).ok_or(RdfError::UnknownTermId(id.0))
    }

    /// The number of distinct terms encoded.
    pub fn len(&self) -> usize {
        self.id_to_term.len()
    }

    /// Returns `true` if no terms have been encoded.
    pub fn is_empty(&self) -> bool {
        self.id_to_term.is_empty()
    }

    /// Iterates over `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.id_to_term
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u64), t))
    }

    /// Returns a human-readable rendering of `id` (falls back to the raw id
    /// when unknown); handy for diagnostics and result printing.
    pub fn render(&self, id: TermId) -> String {
        match self.term(id) {
            Some(t) => t.to_string(),
            None => format!("{id}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_idempotent() {
        let mut d = Dictionary::new();
        let a1 = d.encode(&Term::iri("http://ex.org/a"));
        let a2 = d.encode(&Term::iri("http://ex.org/a"));
        assert_eq!(a1, a2);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_sequential() {
        let mut d = Dictionary::new();
        let ids: Vec<TermId> = (0..10)
            .map(|i| d.encode(&Term::iri(format!("http://ex.org/{i}"))))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.0, i as u64);
        }
        assert_eq!(d.len(), 10);
    }

    #[test]
    fn decode_round_trips() {
        let mut d = Dictionary::new();
        let terms = [
            Term::iri("http://ex.org/a"),
            Term::literal("hello"),
            Term::typed_literal("3", crate::vocab::XSD_INTEGER),
            Term::blank("b0"),
            Term::lang_literal("chat", "fr"),
        ];
        let ids: Vec<TermId> = terms.iter().map(|t| d.encode(t)).collect();
        for (t, id) in terms.iter().zip(&ids) {
            assert_eq!(d.term(*id), Some(t));
            assert_eq!(d.id_of(t), Some(*id));
        }
    }

    #[test]
    fn distinct_literal_shapes_get_distinct_ids() {
        let mut d = Dictionary::new();
        let plain = d.encode(&Term::literal("42"));
        let typed = d.encode(&Term::typed_literal("42", crate::vocab::XSD_INTEGER));
        let iri = d.encode(&Term::iri("42"));
        assert_ne!(plain, typed);
        assert_ne!(plain, iri);
        assert_ne!(typed, iri);
    }

    #[test]
    fn unknown_lookups_fail_gracefully() {
        let d = Dictionary::new();
        assert!(d.term(TermId(0)).is_none());
        assert!(d.id_of(&Term::iri("http://nope")).is_none());
        assert!(matches!(
            d.term_checked(TermId(9)),
            Err(RdfError::UnknownTermId(9))
        ));
        assert_eq!(d.render(TermId(3)), "#3");
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut d = Dictionary::new();
        d.encode_iri("http://a");
        d.encode_iri("http://b");
        d.encode_iri("http://c");
        let collected: Vec<u64> = d.iter().map(|(id, _)| id.0).collect();
        assert_eq!(collected, vec![0, 1, 2]);
    }

    #[test]
    fn id_of_iri_matches_encode_iri() {
        let mut d = Dictionary::new();
        let id = d.encode_iri("http://ex.org/x");
        assert_eq!(d.id_of_iri("http://ex.org/x"), Some(id));
        assert_eq!(d.id_of_iri("http://ex.org/y"), None);
    }
}
