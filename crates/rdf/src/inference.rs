//! RDFS-subset forward-chaining inference.
//!
//! The LUBM benchmark (paper Section 7.1) is executed over "the original
//! triples as well as inferred triples": without inference, queries such as
//! LUBM Q4–Q6 return empty results because e.g. a `FullProfessor` is never
//! explicitly asserted to be a `Professor`, and `headOf` is never explicitly
//! asserted to imply `worksFor`/`memberOf`. The paper uses "the
//! state-of-the-art RDF inference engine"; we implement the RDFS entailment
//! rules the benchmark schemas actually exercise:
//!
//! | Rule | Pattern | Conclusion |
//! |------|---------|------------|
//! | `rdfs11` | `(A subClassOf B), (B subClassOf C)` | `(A subClassOf C)` |
//! | `rdfs9`  | `(x type A), (A subClassOf B)` | `(x type B)` |
//! | `rdfs5`  | `(p subPropertyOf q), (q subPropertyOf r)` | `(p subPropertyOf r)` |
//! | `rdfs7`  | `(x p y), (p subPropertyOf q)` | `(x q y)` |
//! | `rdfs2`  | `(x p y), (p domain C)` | `(x type C)` |
//! | `rdfs3`  | `(x p y), (p range C)` | `(y type C)` |
//!
//! The engine works on an encoded [`Dataset`] and appends the inferred
//! triples in place, reporting per-rule statistics.

use crate::dictionary::TermId;
use crate::term::Term;
use crate::triple::{Dataset, Triple};
use crate::vocab;
use std::collections::{HashMap, HashSet};

/// Which RDFS rules to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InferenceConfig {
    /// Transitive closure of `rdfs:subClassOf` (rdfs11) and type inheritance (rdfs9).
    pub class_hierarchy: bool,
    /// Transitive closure of `rdfs:subPropertyOf` (rdfs5) and property propagation (rdfs7).
    pub property_hierarchy: bool,
    /// `rdfs:domain` entailment (rdfs2).
    pub domain: bool,
    /// `rdfs:range` entailment (rdfs3).
    pub range: bool,
}

impl Default for InferenceConfig {
    fn default() -> Self {
        InferenceConfig {
            class_hierarchy: true,
            property_hierarchy: true,
            domain: true,
            range: true,
        }
    }
}

impl InferenceConfig {
    /// All rules enabled (the LUBM loading setup).
    pub fn full() -> Self {
        Self::default()
    }

    /// Only the class hierarchy rules — the minimum the type-aware
    /// transformation relies on.
    pub fn class_only() -> Self {
        InferenceConfig {
            class_hierarchy: true,
            property_hierarchy: false,
            domain: false,
            range: false,
        }
    }

    /// No rules at all (loading "original triples only", as the paper does
    /// for BTC2012).
    pub fn none() -> Self {
        InferenceConfig {
            class_hierarchy: false,
            property_hierarchy: false,
            domain: false,
            range: false,
        }
    }
}

/// Counts of triples added by each rule family.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct InferenceStats {
    /// Triples added by subClassOf transitivity (rdfs11).
    pub subclass_closure: usize,
    /// Triples added by type inheritance (rdfs9).
    pub type_inheritance: usize,
    /// Triples added by subPropertyOf transitivity (rdfs5).
    pub subproperty_closure: usize,
    /// Triples added by property propagation (rdfs7).
    pub property_propagation: usize,
    /// Triples added by domain entailment (rdfs2).
    pub domain: usize,
    /// Triples added by range entailment (rdfs3).
    pub range: usize,
}

impl InferenceStats {
    /// Total number of inferred triples.
    pub fn total(&self) -> usize {
        self.subclass_closure
            + self.type_inheritance
            + self.subproperty_closure
            + self.property_propagation
            + self.domain
            + self.range
    }
}

/// The forward-chaining engine.
#[derive(Debug, Clone)]
pub struct InferenceEngine {
    config: InferenceConfig,
}

impl Default for InferenceEngine {
    fn default() -> Self {
        InferenceEngine::new(InferenceConfig::default())
    }
}

impl InferenceEngine {
    /// Creates an engine with the given rule configuration.
    pub fn new(config: InferenceConfig) -> Self {
        InferenceEngine { config }
    }

    /// Materializes the entailed triples into `dataset`, returning statistics.
    pub fn materialize(&self, dataset: &mut Dataset) -> InferenceStats {
        let mut stats = InferenceStats::default();

        let rdf_type = dataset.dictionary.encode_owned(Term::iri(vocab::RDF_TYPE));
        let subclassof = dataset
            .dictionary
            .encode_owned(Term::iri(vocab::RDFS_SUBCLASSOF));
        let subpropertyof = dataset
            .dictionary
            .encode_owned(Term::iri(vocab::RDFS_SUBPROPERTYOF));
        let domain = dataset
            .dictionary
            .encode_owned(Term::iri(vocab::RDFS_DOMAIN));
        let range = dataset
            .dictionary
            .encode_owned(Term::iri(vocab::RDFS_RANGE));

        // ---- 1. Hierarchy closures (rdfs11 / rdfs5) --------------------
        let subclass_closure = if self.config.class_hierarchy {
            let edges = collect_pairs(dataset, subclassof);
            transitive_closure(&edges)
        } else {
            HashMap::new()
        };
        let subproperty_closure = if self.config.property_hierarchy {
            let edges = collect_pairs(dataset, subpropertyof);
            transitive_closure(&edges)
        } else {
            HashMap::new()
        };

        if self.config.class_hierarchy {
            for (&sub, supers) in &subclass_closure {
                for &sup in supers {
                    if dataset.triples.insert(Triple::new(sub, subclassof, sup)) {
                        stats.subclass_closure += 1;
                    }
                }
            }
        }
        if self.config.property_hierarchy {
            for (&sub, supers) in &subproperty_closure {
                for &sup in supers {
                    if dataset.triples.insert(Triple::new(sub, subpropertyof, sup)) {
                        stats.subproperty_closure += 1;
                    }
                }
            }
        }

        // ---- 2. Property propagation (rdfs7) ---------------------------
        if self.config.property_hierarchy && !subproperty_closure.is_empty() {
            let originals: Vec<Triple> = dataset.triples.iter().copied().collect();
            for t in originals {
                if t.p == rdf_type || t.p == subclassof || t.p == subpropertyof {
                    continue;
                }
                if let Some(supers) = subproperty_closure.get(&t.p) {
                    for &q in supers {
                        if dataset.triples.insert(Triple::new(t.s, q, t.o)) {
                            stats.property_propagation += 1;
                        }
                    }
                }
            }
        }

        // ---- 3. Domain / range (rdfs2 / rdfs3) -------------------------
        if self.config.domain || self.config.range {
            let domains = collect_pairs(dataset, domain);
            let ranges = collect_pairs(dataset, range);
            if !domains.is_empty() || !ranges.is_empty() {
                let snapshot: Vec<Triple> = dataset.triples.iter().copied().collect();
                for t in snapshot {
                    if t.p == rdf_type
                        || t.p == subclassof
                        || t.p == subpropertyof
                        || t.p == domain
                        || t.p == range
                    {
                        continue;
                    }
                    if self.config.domain {
                        if let Some(classes) = domains.get(&t.p) {
                            for &c in classes {
                                if dataset.triples.insert(Triple::new(t.s, rdf_type, c)) {
                                    stats.domain += 1;
                                }
                            }
                        }
                    }
                    if self.config.range {
                        if let Some(classes) = ranges.get(&t.p) {
                            for &c in classes {
                                if dataset.triples.insert(Triple::new(t.o, rdf_type, c)) {
                                    stats.range += 1;
                                }
                            }
                        }
                    }
                }
            }
        }

        // ---- 4. Type inheritance (rdfs9) -------------------------------
        // Runs last so that domain/range-derived types are also lifted to
        // their superclasses.
        if self.config.class_hierarchy && !subclass_closure.is_empty() {
            let typed: Vec<Triple> = dataset
                .triples
                .iter()
                .filter(|t| t.p == rdf_type)
                .copied()
                .collect();
            for t in typed {
                if let Some(supers) = subclass_closure.get(&t.o) {
                    for &sup in supers {
                        if dataset.triples.insert(Triple::new(t.s, rdf_type, sup)) {
                            stats.type_inheritance += 1;
                        }
                    }
                }
            }
        }

        stats
    }
}

/// Collects `subject → {objects}` pairs for all triples with predicate `pred`.
fn collect_pairs(dataset: &Dataset, pred: TermId) -> HashMap<TermId, HashSet<TermId>> {
    let mut map: HashMap<TermId, HashSet<TermId>> = HashMap::new();
    for t in dataset.triples.iter() {
        if t.p == pred {
            map.entry(t.s).or_default().insert(t.o);
        }
    }
    map
}

/// Computes, for every node, the set of nodes reachable in one or more hops
/// through the given edge map (classic DFS-based transitive closure; the
/// hierarchies involved are tiny schema graphs).
fn transitive_closure(
    edges: &HashMap<TermId, HashSet<TermId>>,
) -> HashMap<TermId, HashSet<TermId>> {
    let mut closure: HashMap<TermId, HashSet<TermId>> = HashMap::new();
    for &start in edges.keys() {
        let mut reached: HashSet<TermId> = HashSet::new();
        let mut stack: Vec<TermId> = edges
            .get(&start)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        while let Some(node) = stack.pop() {
            if node != start && reached.insert(node) {
                if let Some(next) = edges.get(&node) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        closure.insert(start, reached);
    }
    closure
}

#[cfg(test)]
mod tests {
    use super::*;

    const EX: &str = "http://example.org/";

    fn iri(local: &str) -> String {
        format!("{EX}{local}")
    }

    fn has_type(ds: &Dataset, entity: &str, class: &str) -> bool {
        let e = ds.dictionary.id_of_iri(&iri(entity));
        let c = ds.dictionary.id_of_iri(&iri(class));
        let t = ds.rdf_type_id();
        match (e, c, t) {
            (Some(e), Some(c), Some(t)) => ds.triples.contains(&Triple::new(e, t, c)),
            _ => false,
        }
    }

    fn schema_dataset() -> Dataset {
        let mut ds = Dataset::new();
        // Class hierarchy: FullProfessor ⊑ Professor ⊑ Faculty ⊑ Person
        ds.insert_iris(
            &iri("FullProfessor"),
            vocab::RDFS_SUBCLASSOF,
            &iri("Professor"),
        );
        ds.insert_iris(&iri("Professor"), vocab::RDFS_SUBCLASSOF, &iri("Faculty"));
        ds.insert_iris(&iri("Faculty"), vocab::RDFS_SUBCLASSOF, &iri("Person"));
        // Property hierarchy: headOf ⊑ worksFor ⊑ memberOf
        ds.insert_iris(&iri("headOf"), vocab::RDFS_SUBPROPERTYOF, &iri("worksFor"));
        ds.insert_iris(
            &iri("worksFor"),
            vocab::RDFS_SUBPROPERTYOF,
            &iri("memberOf"),
        );
        // Domain and range of teacherOf.
        ds.insert_iris(&iri("teacherOf"), vocab::RDFS_DOMAIN, &iri("Faculty"));
        ds.insert_iris(&iri("teacherOf"), vocab::RDFS_RANGE, &iri("Course"));
        // Instance data.
        ds.insert_iris(&iri("prof1"), vocab::RDF_TYPE, &iri("FullProfessor"));
        ds.insert_iris(&iri("prof1"), &iri("headOf"), &iri("dept1"));
        ds.insert_iris(&iri("prof1"), &iri("teacherOf"), &iri("course1"));
        ds
    }

    #[test]
    fn subclass_transitive_closure_is_materialized() {
        let mut ds = schema_dataset();
        let stats = InferenceEngine::default().materialize(&mut ds);
        let fp = ds.dictionary.id_of_iri(&iri("FullProfessor")).unwrap();
        let person = ds.dictionary.id_of_iri(&iri("Person")).unwrap();
        let sc = ds.subclassof_id().unwrap();
        assert!(ds.triples.contains(&Triple::new(fp, sc, person)));
        // FullProfessor→{Faculty, Person}, Professor→{Person}: three new subClassOf edges.
        assert_eq!(stats.subclass_closure, 3);
    }

    #[test]
    fn type_inheritance_reaches_all_ancestors() {
        let mut ds = schema_dataset();
        InferenceEngine::default().materialize(&mut ds);
        for class in ["Professor", "Faculty", "Person"] {
            assert!(has_type(&ds, "prof1", class), "missing type {class}");
        }
    }

    #[test]
    fn property_propagation_follows_hierarchy() {
        let mut ds = schema_dataset();
        let stats = InferenceEngine::default().materialize(&mut ds);
        let prof = ds.dictionary.id_of_iri(&iri("prof1")).unwrap();
        let dept = ds.dictionary.id_of_iri(&iri("dept1")).unwrap();
        let works_for = ds.dictionary.id_of_iri(&iri("worksFor")).unwrap();
        let member_of = ds.dictionary.id_of_iri(&iri("memberOf")).unwrap();
        assert!(ds.triples.contains(&Triple::new(prof, works_for, dept)));
        assert!(ds.triples.contains(&Triple::new(prof, member_of, dept)));
        assert_eq!(stats.property_propagation, 2);
    }

    #[test]
    fn domain_and_range_add_types() {
        let mut ds = schema_dataset();
        InferenceEngine::default().materialize(&mut ds);
        assert!(has_type(&ds, "prof1", "Faculty"));
        assert!(has_type(&ds, "course1", "Course"));
    }

    #[test]
    fn domain_derived_types_are_also_inherited() {
        let mut ds = Dataset::new();
        ds.insert_iris(
            &iri("GraduateCourse"),
            vocab::RDFS_SUBCLASSOF,
            &iri("Course"),
        );
        ds.insert_iris(
            &iri("takesGradCourse"),
            vocab::RDFS_RANGE,
            &iri("GraduateCourse"),
        );
        ds.insert_iris(&iri("s1"), &iri("takesGradCourse"), &iri("c1"));
        InferenceEngine::default().materialize(&mut ds);
        assert!(has_type(&ds, "c1", "GraduateCourse"));
        assert!(has_type(&ds, "c1", "Course"));
    }

    #[test]
    fn materialize_is_idempotent() {
        let mut ds = schema_dataset();
        let first = InferenceEngine::default().materialize(&mut ds);
        assert!(first.total() > 0);
        let size_after_first = ds.len();
        let second = InferenceEngine::default().materialize(&mut ds);
        assert_eq!(second.total(), 0);
        assert_eq!(ds.len(), size_after_first);
    }

    #[test]
    fn disabled_rules_do_nothing() {
        let mut ds = schema_dataset();
        let before = ds.len();
        let stats = InferenceEngine::new(InferenceConfig::none()).materialize(&mut ds);
        assert_eq!(stats.total(), 0);
        assert_eq!(ds.len(), before);
    }

    #[test]
    fn class_only_config_skips_properties() {
        let mut ds = schema_dataset();
        let stats = InferenceEngine::new(InferenceConfig::class_only()).materialize(&mut ds);
        assert!(stats.subclass_closure > 0);
        assert!(stats.type_inheritance > 0);
        assert_eq!(stats.property_propagation, 0);
        assert_eq!(stats.domain, 0);
        assert_eq!(stats.range, 0);
    }

    #[test]
    fn cyclic_hierarchy_terminates() {
        // A ⊑ B ⊑ A must not loop forever and must not add self-loops.
        let mut ds = Dataset::new();
        ds.insert_iris(&iri("A"), vocab::RDFS_SUBCLASSOF, &iri("B"));
        ds.insert_iris(&iri("B"), vocab::RDFS_SUBCLASSOF, &iri("A"));
        ds.insert_iris(&iri("x"), vocab::RDF_TYPE, &iri("A"));
        InferenceEngine::default().materialize(&mut ds);
        assert!(has_type(&ds, "x", "B"));
        let a = ds.dictionary.id_of_iri(&iri("A")).unwrap();
        let sc = ds.subclassof_id().unwrap();
        assert!(!ds.triples.contains(&Triple::new(a, sc, a)));
    }

    #[test]
    fn stats_total_adds_up() {
        let mut ds = schema_dataset();
        let stats = InferenceEngine::default().materialize(&mut ds);
        assert_eq!(
            stats.total(),
            stats.subclass_closure
                + stats.type_inheritance
                + stats.subproperty_closure
                + stats.property_propagation
                + stats.domain
                + stats.range
        );
    }
}
