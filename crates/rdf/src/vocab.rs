//! Well-known RDF, RDFS and XSD vocabulary IRIs.
//!
//! The type-aware transformation (paper Section 4.1) is driven by
//! [`RDF_TYPE`] and [`RDFS_SUBCLASSOF`]; the inference engine additionally
//! uses [`RDFS_SUBPROPERTYOF`], [`RDFS_DOMAIN`] and [`RDFS_RANGE`].

/// `rdf:type` — "is an instance of".
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// `rdfs:subClassOf` — class specialization, folded transitively into vertex
/// label sets by the type-aware transformation.
pub const RDFS_SUBCLASSOF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";

/// `rdfs:subPropertyOf` — property specialization (used by LUBM inference,
/// e.g. `headOf ⊑ worksFor ⊑ memberOf`).
pub const RDFS_SUBPROPERTYOF: &str = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";

/// `rdfs:domain` — the class of the subject implied by a predicate.
pub const RDFS_DOMAIN: &str = "http://www.w3.org/2000/01/rdf-schema#domain";

/// `rdfs:range` — the class of the object implied by a predicate.
pub const RDFS_RANGE: &str = "http://www.w3.org/2000/01/rdf-schema#range";

/// `rdfs:Class`.
pub const RDFS_CLASS: &str = "http://www.w3.org/2000/01/rdf-schema#Class";

/// `rdfs:label`.
pub const RDFS_LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";

/// `xsd:integer`.
pub const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";

/// `xsd:double`.
pub const XSD_DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";

/// `xsd:string`.
pub const XSD_STRING: &str = "http://www.w3.org/2001/XMLSchema#string";

/// `xsd:dateTime`.
pub const XSD_DATETIME: &str = "http://www.w3.org/2001/XMLSchema#dateTime";

/// `xsd:boolean`.
pub const XSD_BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";

/// Returns `true` if `iri` is one of the schema predicates that the
/// type-aware transformation removes from the data graph
/// (`rdf:type`, `rdfs:subClassOf`).
pub fn is_type_predicate(iri: &str) -> bool {
    iri == RDF_TYPE || iri == RDFS_SUBCLASSOF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_predicates_detected() {
        assert!(is_type_predicate(RDF_TYPE));
        assert!(is_type_predicate(RDFS_SUBCLASSOF));
        assert!(!is_type_predicate(RDFS_SUBPROPERTYOF));
        assert!(!is_type_predicate("http://example.org/memberOf"));
    }

    #[test]
    fn vocab_iris_are_well_formed() {
        for iri in [
            RDF_TYPE,
            RDFS_SUBCLASSOF,
            RDFS_SUBPROPERTYOF,
            RDFS_DOMAIN,
            RDFS_RANGE,
            RDFS_CLASS,
            RDFS_LABEL,
            XSD_INTEGER,
            XSD_DOUBLE,
            XSD_STRING,
            XSD_DATETIME,
            XSD_BOOLEAN,
        ] {
            assert!(crate::term::Term::iri(iri).validate().is_ok(), "{iri}");
        }
    }
}
